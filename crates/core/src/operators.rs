//! Physical query operators.
//!
//! PIER's local dataflow (§3.3.5) pushes tuples from children to parents
//! through simple function calls; operators either pass a (possibly
//! transformed) tuple on, absorb it into state (joins, group-by), or drop it
//! (selection, duplicate elimination).  Stateful operators emit their
//! buffered results when the dataflow is *flushed* — at a probe boundary for
//! snapshot queries or periodically for continuous ones.
//!
//! The [`LocalOperator`] trait captures that contract.  The distributed
//! operators of the paper — Put/Exchange (rehashing through the DHT),
//! Fetch Matches index joins, hierarchical aggregation — are coordinated by
//! the [`executor`](crate::executor) because they need the overlay; the
//! building blocks they use (Bloom filters, symmetric-hash join state,
//! partial group-by) live here so they can be tested exhaustively in
//! isolation.

use crate::aggregate::{AggFunc, AggState};
use crate::column::Column;
use crate::expr::{CompiledPredicate, Expr};
use crate::tuple::{
    ColumnChunk, ColumnRef, ColumnResolver, Schema, SchemaRegistry, Tuple, TupleBatch,
};
use crate::value::Value;
use pier_telemetry::Telemetry;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A push-based local operator.
pub trait LocalOperator: std::fmt::Debug {
    /// Push one tuple in; returns zero or more output tuples that flow to the
    /// parent immediately.
    fn push(&mut self, tuple: Tuple) -> Vec<Tuple>;

    /// Push a whole [`TupleBatch`] in; the survivors come back as a
    /// **re-chunked batch** (same-schema runs preserved), so a stack of
    /// stages passes columnar chunks from one to the next without ever
    /// exploding into per-tuple dispatch.  The default materialises each row
    /// and calls [`LocalOperator::push`]; operators on the batched hot path
    /// (selection, projection, group-by, distinct, the eddy) override it to
    /// resolve columns once per [`ColumnChunk`] and scan — or mask-filter —
    /// the chunk's columns directly.  Overrides must produce exactly the
    /// rows the per-row default would, in the same order (the
    /// batching-equivalence and property tests pin this).
    fn push_batch(&mut self, batch: &TupleBatch) -> TupleBatch {
        let mut out = TupleBatch::default();
        for t in batch.iter() {
            for produced in self.push(t) {
                out.push_tuple(produced);
            }
        }
        out
    }

    /// Emit whatever the operator has been buffering (group-by results,
    /// top-k heaps, …).  Pass-through operators return nothing.
    fn flush(&mut self) -> Vec<Tuple> {
        Vec::new()
    }

    /// Short stable tag naming the operator kind; keys the per-operator
    /// telemetry counters (`op.<name>.rows_in` / `rows_out` / `chunks_in`).
    fn name(&self) -> &'static str {
        "op"
    }
}

/// Selection: drop tuples that do not satisfy the predicate.  Tuples the
/// predicate cannot be evaluated against (missing column, type mismatch) are
/// dropped too — the best-effort policy of §3.3.4.
///
/// The predicate is compiled against each input schema once
/// ([`CompiledPredicate`]), so the per-tuple cost is positional evaluation;
/// the batch path evaluates straight over a chunk's columns and only
/// materialises the surviving rows.
#[derive(Debug)]
pub struct Selection {
    predicate: CompiledPredicate,
}

impl Selection {
    /// Create a selection with the given predicate.
    pub fn new(predicate: Expr) -> Self {
        Selection {
            predicate: CompiledPredicate::new(predicate),
        }
    }
}

impl LocalOperator for Selection {
    fn name(&self) -> &'static str {
        "selection"
    }

    fn push(&mut self, tuple: Tuple) -> Vec<Tuple> {
        if self.predicate.matches_tuple(&tuple) {
            vec![tuple]
        } else {
            Vec::new()
        }
    }

    fn push_batch(&mut self, batch: &TupleBatch) -> TupleBatch {
        // Mask-and-filter: the predicate evaluates **column-at-a-time**
        // ([`CompiledExpr::eval_column`] — type-specialised loops over each
        // referenced column, masks combined bitwise) and the survivors are
        // copied out as one whole chunk per input chunk — zero per-row
        // `Tuple` materialisations and no per-row expression-tree walk.
        let mut out = TupleBatch::default();
        for chunk in batch.chunks() {
            let compiled = self.predicate.for_schema(chunk.schema());
            let mask = compiled.eval_column(chunk);
            out.push_chunk(chunk.filter(&mask));
        }
        out
    }
}

/// `(input schema, projected schema, per-output-column source index)`.
type ProjectionCache = (Arc<Schema>, Arc<Schema>, Vec<Option<usize>>);

/// Projection onto a fixed list of columns.  The projected schema and the
/// per-column source indices are resolved once per input schema, not once
/// per tuple.
#[derive(Debug)]
pub struct Projection {
    columns: Vec<String>,
    cache: Option<ProjectionCache>,
}

impl Projection {
    /// Create a projection.
    pub fn new(columns: Vec<String>) -> Self {
        Projection {
            columns,
            cache: None,
        }
    }

    /// Resolve the projected schema and source indices for `schema`
    /// (single-entry cache keyed by schema pointer).
    fn ensure(&mut self, schema: &Arc<Schema>) -> &ProjectionCache {
        let hit = self
            .cache
            .as_ref()
            .is_some_and(|(input, _, _)| Arc::ptr_eq(input, schema));
        if !hit {
            let names: Vec<&str> = self.columns.iter().map(String::as_str).collect();
            let out = SchemaRegistry::global().intern(schema.table(), &names);
            let srcs = self.columns.iter().map(|c| schema.position(c)).collect();
            self.cache = Some((Arc::clone(schema), out, srcs));
        }
        self.cache.as_ref().expect("cache populated above")
    }
}

impl LocalOperator for Projection {
    fn name(&self) -> &'static str {
        "projection"
    }

    fn push(&mut self, tuple: Tuple) -> Vec<Tuple> {
        let (_, out, srcs) = self.ensure(tuple.schema());
        let values = srcs
            .iter()
            .map(|src| match src {
                Some(i) => tuple.values()[*i].clone(),
                None => Value::Null,
            })
            .collect();
        vec![Tuple::from_schema(Arc::clone(out), values)]
    }

    fn push_batch(&mut self, batch: &TupleBatch) -> TupleBatch {
        // Column gather: each projected output column is the source column's
        // typed buffer cloned whole (or a NULL run) — the output chunk is
        // assembled without materialising a single row or value.
        let mut outputs = TupleBatch::default();
        for chunk in batch.chunks() {
            let (_, out, srcs) = self.ensure(chunk.schema());
            let out = Arc::clone(out);
            let columns: Vec<Column> = srcs
                .iter()
                .map(|src| match src {
                    Some(i) => chunk.col(*i).clone(),
                    None => Column::from_values(vec![Value::Null; chunk.rows()]),
                })
                .collect();
            outputs.push_chunk(ColumnChunk::from_columns(out, columns, chunk.rows()));
        }
        outputs
    }
}

/// Duplicate elimination on a set of key columns (all columns when empty).
#[derive(Debug)]
pub struct Distinct {
    key: ColumnResolver,
    seen: HashSet<String>,
}

impl Distinct {
    /// Create a duplicate-elimination operator.
    pub fn new(key: Vec<String>) -> Self {
        Distinct {
            key: ColumnResolver::new(key),
            seen: HashSet::new(),
        }
    }

    fn key_of(&mut self, tuple: &Tuple) -> String {
        if self.key.columns().is_empty() {
            let mut out = String::with_capacity(12 * tuple.arity());
            for (i, v) in tuple.values().iter().enumerate() {
                if i > 0 {
                    out.push('|');
                }
                v.write_key(&mut out);
            }
            out
        } else {
            self.key.key(tuple).unwrap_or_else(|| "∅".into())
        }
    }
}

impl LocalOperator for Distinct {
    fn name(&self) -> &'static str {
        "distinct"
    }

    fn push(&mut self, tuple: Tuple) -> Vec<Tuple> {
        let key = self.key_of(&tuple);
        if self.seen.insert(key) {
            vec![tuple]
        } else {
            Vec::new()
        }
    }

    fn push_batch(&mut self, batch: &TupleBatch) -> TupleBatch {
        // Key columns resolve once per chunk; first-seen rows survive as a
        // whole filtered chunk.
        let mut out = TupleBatch::default();
        for chunk in batch.chunks() {
            let mask: Vec<bool> = if self.key.columns().is_empty() {
                // Full-row dedup: the key spans every column, in order.
                let all: Vec<usize> = (0..chunk.schema().arity()).collect();
                (0..chunk.rows())
                    .map(|r| self.seen.insert(chunk.key_at(&all, r)))
                    .collect()
            } else {
                match self.key.indices_for(chunk.schema()) {
                    Some(idxs) => {
                        let idxs = idxs.to_vec();
                        (0..chunk.rows())
                            .map(|r| self.seen.insert(chunk.key_at(&idxs, r)))
                            .collect()
                    }
                    // Chunks missing a key column all key as "∅", exactly
                    // like the per-tuple path: only the first ever survives.
                    None => (0..chunk.rows())
                        .map(|_| self.seen.insert("∅".into()))
                        .collect(),
                }
            };
            out.push_chunk(chunk.filter(&mask));
        }
        out
    }
}

/// Pass at most `n` tuples, then drop the rest.
#[derive(Debug)]
pub struct Limit {
    remaining: usize,
}

impl Limit {
    /// Create a limit operator.
    pub fn new(n: usize) -> Self {
        Limit { remaining: n }
    }
}

impl LocalOperator for Limit {
    fn name(&self) -> &'static str {
        "limit"
    }

    fn push(&mut self, tuple: Tuple) -> Vec<Tuple> {
        if self.remaining == 0 {
            return Vec::new();
        }
        self.remaining -= 1;
        vec![tuple]
    }

    fn push_batch(&mut self, batch: &TupleBatch) -> TupleBatch {
        let mut out = TupleBatch::default();
        for chunk in batch.chunks() {
            if self.remaining == 0 {
                break;
            }
            let take = chunk.rows().min(self.remaining);
            self.remaining -= take;
            if take == chunk.rows() {
                out.push_chunk(chunk.clone());
            } else {
                let mask: Vec<bool> = (0..chunk.rows()).map(|r| r < take).collect();
                out.push_chunk(chunk.filter(&mask));
            }
        }
        out
    }
}

/// A queue: in the real engine this is where the dataflow "comes up for air"
/// and yields back to the main scheduler (§3.3.5).  In this push model it is
/// a pass-through that counts yield points, preserving plan shape.
#[derive(Debug, Default)]
pub struct Queue {
    /// Number of tuples that crossed this yield point.
    pub yields: u64,
}

impl LocalOperator for Queue {
    fn name(&self) -> &'static str {
        "queue"
    }

    fn push(&mut self, tuple: Tuple) -> Vec<Tuple> {
        self.yields += 1;
        vec![tuple]
    }

    fn push_batch(&mut self, batch: &TupleBatch) -> TupleBatch {
        // One yield point per tuple, exactly as per-row dispatch counts.
        self.yields += batch.len() as u64;
        batch.clone()
    }
}

/// Grouped (partial) aggregation.  Emits one tuple per group on flush with
/// the group columns plus one output column per aggregate.
///
/// The group columns and every aggregate's input column are resolved to
/// schema indices once per input schema, and the output shape is interned
/// once at construction, so the per-tuple path is index lookups only.
#[derive(Debug)]
pub struct GroupBy {
    group_cols: ColumnResolver,
    aggs: Vec<AggFunc>,
    /// Per-aggregate input column resolver (`None` for `COUNT(*)`).
    agg_inputs: Vec<Option<ColumnRef>>,
    groups: HashMap<String, (Vec<Value>, Vec<AggState>)>,
    out_schema: Arc<Schema>,
}

impl GroupBy {
    /// Create a group-by with the given grouping columns and aggregates.
    pub fn new(
        group_cols: Vec<String>,
        aggs: Vec<AggFunc>,
        output_table: impl Into<String>,
    ) -> Self {
        GroupBy {
            out_schema: Self::output_schema(&group_cols, &aggs, &output_table.into()),
            agg_inputs: aggs
                .iter()
                .map(|a| a.input_column().map(ColumnRef::new))
                .collect(),
            group_cols: ColumnResolver::new(group_cols),
            aggs,
            groups: HashMap::new(),
        }
    }

    /// The fixed shape of this operator's output tuples: the group columns,
    /// then one column per aggregate (AVG additionally exposes its mergeable
    /// `_sum`/`_count` components so hierarchical aggregation stays exact).
    fn output_schema(group_cols: &[String], aggs: &[AggFunc], output_table: &str) -> Arc<Schema> {
        let mut columns: Vec<String> = group_cols.to_vec();
        for agg in aggs {
            let col = agg.output_column();
            if matches!(agg, AggFunc::Avg(_)) {
                columns.push(col.clone());
                columns.push(format!("{col}_sum"));
                columns.push(format!("{col}_count"));
            } else {
                columns.push(col);
            }
        }
        SchemaRegistry::global().intern_owned(output_table.to_string(), columns)
    }

    /// Number of groups currently buffered.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Merge a partial-aggregate tuple previously produced by another
    /// `GroupBy` with the same shape (hierarchical aggregation's combine
    /// step).  Returns `false` when the tuple does not look like a partial
    /// for this operator and was ignored.
    pub fn merge_partial(&mut self, tuple: &Tuple) -> bool {
        let Some(key) = self.group_cols.key(tuple) else {
            return false;
        };
        let entry = match self.groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let vals = self
                    .group_cols
                    .values(tuple)
                    .expect("key resolved above implies values resolve");
                e.insert((vals, self.aggs.iter().map(AggFunc::init).collect()))
            }
        };
        let mut merged_any = false;
        for (agg, state) in self.aggs.iter().zip(entry.1.iter_mut()) {
            if let Some(other) = AggState::from_partial_tuple(agg, tuple) {
                state.merge(&other);
                merged_any = true;
            }
        }
        merged_any
    }

    fn group_tuple(&self, values: &[Value], states: &[AggState]) -> Tuple {
        let mut out = Vec::with_capacity(self.out_schema.arity());
        out.extend(values.iter().cloned());
        for state in states {
            out.push(state.finish());
            if let AggState::Avg { sum, count } = state {
                out.push(Value::Float(*sum));
                out.push(Value::Int(*count as i64));
            }
        }
        Tuple::from_schema(Arc::clone(&self.out_schema), out)
    }
}

impl LocalOperator for GroupBy {
    fn name(&self) -> &'static str {
        "groupby"
    }

    fn push(&mut self, tuple: Tuple) -> Vec<Tuple> {
        let Some(key) = self.group_cols.key(&tuple) else {
            return Vec::new(); // malformed tuple: discard
        };
        let entry = match self.groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let vals = self
                    .group_cols
                    .values(&tuple)
                    .expect("key resolved above implies values resolve");
                e.insert((vals, self.aggs.iter().map(AggFunc::init).collect()))
            }
        };
        for ((agg, input), state) in self
            .aggs
            .iter()
            .zip(self.agg_inputs.iter_mut())
            .zip(entry.1.iter_mut())
        {
            let value = input.as_mut().and_then(|c| c.get(&tuple));
            state.update_with(agg, value);
        }
        Vec::new()
    }

    fn push_batch(&mut self, batch: &TupleBatch) -> TupleBatch {
        // Absorb chunk-at-a-time: group columns and aggregate inputs resolve
        // once per chunk, the inner loop is column indexing only.
        for chunk in batch.chunks() {
            let schema = chunk.schema();
            let Some(group_idxs) = self.group_cols.indices_for(schema) else {
                continue; // malformed chunk for this operator: discard
            };
            let group_idxs = group_idxs.to_vec();
            let agg_idxs: Vec<Option<usize>> = self
                .agg_inputs
                .iter_mut()
                .map(|input| input.as_mut().and_then(|c| c.index_for(schema)))
                .collect();
            for r in 0..chunk.rows() {
                let key = chunk.key_at(&group_idxs, r);
                let entry = match self.groups.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let vals = group_idxs.iter().map(|&i| chunk.col(i).value(r)).collect();
                        e.insert((vals, self.aggs.iter().map(AggFunc::init).collect()))
                    }
                };
                for ((agg, idx), state) in self.aggs.iter().zip(&agg_idxs).zip(entry.1.iter_mut()) {
                    let value = idx.map(|i| chunk.col(i).value_ref(r));
                    state.update_ref(agg, value);
                }
            }
        }
        TupleBatch::default()
    }

    fn flush(&mut self) -> Vec<Tuple> {
        // Flush drains the accumulated groups: a subsequent flush only emits
        // data that arrived in between (important for the periodic partial
        // flushes of hierarchical aggregation, which must not re-send what
        // has already travelled up the tree).
        let groups = std::mem::take(&mut self.groups);
        let mut out: Vec<Tuple> = groups
            .values()
            .map(|(vals, states)| self.group_tuple(vals, states))
            .collect();
        // Deterministic output order helps tests and clients (cached keys:
        // one render per row, not two per comparison).
        out.sort_by_cached_key(std::string::ToString::to_string);
        out
    }
}

/// Keep the `k` tuples with the largest value in `order_col` (used for the
/// firewall-monitoring "top ten sources" query of Figure 2).
#[derive(Debug)]
pub struct TopK {
    k: usize,
    order_col: ColumnRef,
    buffer: Vec<Tuple>,
}

impl TopK {
    /// Create a top-k operator ordered descending by `order_col`.
    pub fn new(k: usize, order_col: impl Into<String>) -> Self {
        TopK {
            k,
            order_col: ColumnRef::new(order_col.into()),
            buffer: Vec::new(),
        }
    }
}

impl LocalOperator for TopK {
    fn name(&self) -> &'static str {
        "topk"
    }

    fn push(&mut self, tuple: Tuple) -> Vec<Tuple> {
        if self.order_col.get(&tuple).and_then(Value::as_f64).is_some() {
            self.buffer.push(tuple);
        }
        Vec::new()
    }

    fn push_batch(&mut self, batch: &TupleBatch) -> TupleBatch {
        // The order column resolves once per chunk; only rows that must be
        // buffered (numeric order value) are materialised — buffering needs
        // owned tuples by design.
        for chunk in batch.chunks() {
            let Some(idx) = self.order_col.index_for(chunk.schema()) else {
                continue; // chunk lacks the order column: discard
            };
            for r in 0..chunk.rows() {
                if chunk.col(idx).value_ref(r).as_f64().is_some() {
                    self.buffer.push(chunk.row(r));
                }
            }
        }
        TupleBatch::default()
    }

    fn flush(&mut self) -> Vec<Tuple> {
        let order_col = self.order_col.column().to_string();
        self.buffer.sort_by(|a, b| {
            let av = a
                .get(&order_col)
                .and_then(Value::as_f64)
                .unwrap_or(f64::MIN);
            let bv = b
                .get(&order_col)
                .and_then(Value::as_f64)
                .unwrap_or(f64::MIN);
            bv.partial_cmp(&av).unwrap_or(std::cmp::Ordering::Equal)
        });
        self.buffer.drain(..).take(self.k).collect()
    }
}

fn hash_key(key: &str, seed: u64) -> u64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    key.hash(&mut h);
    h.finish()
}

/// A Bloom filter over join-key values, used to construct Bloom-join
/// rewrites (§2.1.1): the filter for one relation is shipped to the other
/// side, which forwards only the tuples whose key might match.
#[derive(Debug, Clone, PartialEq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    hashes: u32,
}

impl BloomFilter {
    /// Create a filter with `bits` bits (rounded up to a multiple of 64) and
    /// `hashes` hash functions.
    pub fn new(bits: usize, hashes: u32) -> Self {
        BloomFilter {
            bits: vec![0; bits.div_ceil(64).max(1)],
            hashes,
        }
    }

    /// Number of bits in the filter.
    pub fn bit_len(&self) -> usize {
        self.bits.len() * 64
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &str) {
        for i in 0..self.hashes {
            let h = hash_key(key, i as u64) as usize % self.bit_len();
            self.bits[h / 64] |= 1 << (h % 64);
        }
    }

    /// Test a key; false positives are possible, false negatives are not.
    pub fn contains(&self, key: &str) -> bool {
        (0..self.hashes).all(|i| {
            let h = hash_key(key, i as u64) as usize % self.bit_len();
            self.bits[h / 64] & (1 << (h % 64)) != 0
        })
    }

    /// Wire size in bytes (the filter is shipped across the network).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// One side's state in the chunk-native Symmetric Hash join: arrived rows
/// stay inside their typed [`ColumnChunk`]s and the hash table maps join
/// keys to `(chunk, row)` locations instead of owned tuples.
#[derive(Debug, Default)]
struct JoinSideState {
    /// Every chunk pushed on this side, in arrival order.  Single-tuple
    /// pushes land as one-row chunks so both ingest paths share one state
    /// shape (and one equivalence argument).
    chunks: Vec<ColumnChunk>,
    /// `join key → stored (chunk, row) locations`, in arrival order (which
    /// is ascending `(chunk, row)` — chunks are appended, rows scanned in
    /// order).
    table: HashMap<String, Vec<(u32, u32)>>,
    /// Total stored rows (sum of the table's bucket lengths).
    rows: usize,
}

/// Symmetric Hash join [Wilschut & Apers]: rows are inserted into their
/// side's hash table and probe the opposite side's table as they arrive, so
/// results stream out without blocking.
///
/// The state is **chunk-native**: each side keeps its arrived
/// [`ColumnChunk`]s intact (typed buffers and all) plus a hash table of
/// `key → (chunk, row)` match locations.  A probing chunk collects its match
/// indices per stored chunk and emits joined output via
/// [`ColumnChunk::gather`] — whole typed chunks, no per-row `Tuple`
/// materialisation on the batch path.  Key columns resolve to schema indices
/// once per side schema, and the joined output schema is interned once per
/// (left, right) schema pair.
/// Parallel (probe row, stored row) gather index lists for one stored chunk.
type GatherPair = (Vec<u32>, Vec<u32>);

#[derive(Debug)]
pub struct SymmetricHashJoin {
    left_key: ColumnResolver,
    right_key: ColumnResolver,
    left: JoinSideState,
    right: JoinSideState,
    output_table: String,
    /// `(left schema, right schema) → joined schema` single-entry cache.
    out_schema: Option<(Arc<Schema>, Arc<Schema>, Arc<Schema>)>,
}

/// Which side of a symmetric hash join a tuple belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// The left (build/probe) side.
    Left,
    /// The right (build/probe) side.
    Right,
}

impl SymmetricHashJoin {
    /// Create a symmetric hash join on `left_key = right_key`.
    pub fn new(
        left_key: Vec<String>,
        right_key: Vec<String>,
        output_table: impl Into<String>,
    ) -> Self {
        SymmetricHashJoin {
            left_key: ColumnResolver::new(left_key),
            right_key: ColumnResolver::new(right_key),
            left: JoinSideState::default(),
            right: JoinSideState::default(),
            output_table: output_table.into(),
            out_schema: None,
        }
    }

    /// Number of rows currently held on each side.
    pub fn state_size(&self) -> (usize, usize) {
        (self.left.rows, self.right.rows)
    }

    /// Insert a tuple arriving on `side`; returns the join results it
    /// produces immediately.  The tuple lands in the shared chunk-native
    /// state as a one-row chunk.
    pub fn push_side(&mut self, side: JoinSide, tuple: Tuple) -> Vec<Tuple> {
        let chunk = ColumnChunk::from_tuple(&tuple);
        self.push_chunk_batch(side, &chunk).into_tuples()
    }

    /// Insert a whole columnar chunk arriving on `side`, materialising the
    /// joined output as owned tuples — a compatibility wrapper over
    /// [`SymmetricHashJoin::push_chunk_batch`] for per-tuple consumers.
    pub fn push_chunk(&mut self, side: JoinSide, chunk: &ColumnChunk) -> Vec<Tuple> {
        self.push_chunk_batch(side, chunk).into_tuples()
    }

    /// Insert a whole columnar chunk arriving on `side` and emit the joined
    /// rows as typed chunks.
    ///
    /// The key columns resolve against the chunk's schema once; every row is
    /// keyed by direct column indexing, records its `(chunk, row)` location
    /// in this side's table, and collects the opposite side's match
    /// locations.  Matches are grouped per stored chunk and both sides are
    /// emitted via [`ColumnChunk::gather`] — one joined typed chunk per
    /// (probe chunk, stored chunk) pair, never a per-row tuple build.
    ///
    /// Produces exactly the rows the per-tuple path would, as a multiset:
    /// output is grouped stored-chunk-major (then probe-row order within a
    /// group) rather than probe-row-major.
    pub fn push_chunk_batch(&mut self, side: JoinSide, chunk: &ColumnChunk) -> TupleBatch {
        if chunk.rows() == 0 {
            return TupleBatch::default();
        }
        let key_cols = match side {
            JoinSide::Left => &mut self.left_key,
            JoinSide::Right => &mut self.right_key,
        };
        let Some(idxs) = key_cols.indices_for(chunk.schema()) else {
            return TupleBatch::default(); // malformed chunk: discard
        };
        let idxs = idxs.to_vec();
        let (own, other) = match side {
            JoinSide::Left => (&mut self.left, &self.right),
            JoinSide::Right => (&mut self.right, &self.left),
        };
        let chunk_id = own.chunks.len() as u32;
        // Per stored opposite-side chunk: parallel (probe row, stored row)
        // gather indices, accumulated while this chunk's rows are keyed.
        let mut matched: HashMap<u32, GatherPair> = HashMap::new();
        let mut key = String::new();
        for r in 0..chunk.rows() as u32 {
            key.clear();
            chunk.write_key_at(&idxs, r as usize, &mut key);
            if let Some(hits) = other.table.get(key.as_str()) {
                for &(c, sr) in hits {
                    let (probe, stored) = matched.entry(c).or_default();
                    probe.push(r);
                    stored.push(sr);
                }
            }
            match own.table.get_mut(key.as_str()) {
                Some(bucket) => bucket.push((chunk_id, r)),
                None => {
                    own.table.insert(key.clone(), vec![(chunk_id, r)]);
                }
            }
            own.rows += 1;
        }
        own.chunks.push(chunk.clone());

        let mut out = TupleBatch::default();
        if matched.is_empty() {
            return out;
        }
        // Deterministic emission order: stored chunks in arrival order.
        let mut groups: Vec<(u32, GatherPair)> = matched.into_iter().collect();
        groups.sort_unstable_by_key(|(c, _)| *c);
        for (c, (probe_rows, stored_rows)) in groups {
            let stored = &other.chunks[c as usize];
            let (left_chunk, left_rows, right_chunk, right_rows) = match side {
                JoinSide::Left => (chunk, &probe_rows, stored, &stored_rows),
                JoinSide::Right => (stored, &stored_rows, chunk, &probe_rows),
            };
            let joined = Self::joined_schema(
                &mut self.out_schema,
                &self.output_table,
                left_chunk.schema(),
                right_chunk.schema(),
            );
            let rows = probe_rows.len();
            let mut columns: Vec<Column> = Vec::with_capacity(joined.arity());
            for i in 0..left_chunk.schema().arity() {
                columns.push(left_chunk.col(i).gather(left_rows));
            }
            for i in 0..right_chunk.schema().arity() {
                columns.push(right_chunk.col(i).gather(right_rows));
            }
            out.push_chunk(ColumnChunk::from_columns(joined, columns, rows));
        }
        out
    }

    /// `(left schema, right schema) → joined schema` through the
    /// single-entry cache (an associated fn so callers holding side borrows
    /// can still reach it).
    fn joined_schema(
        cache: &mut Option<(Arc<Schema>, Arc<Schema>, Arc<Schema>)>,
        output_table: &str,
        left: &Arc<Schema>,
        right: &Arc<Schema>,
    ) -> Arc<Schema> {
        let hit = cache
            .as_ref()
            .is_some_and(|(l, r, _)| Arc::ptr_eq(l, left) && Arc::ptr_eq(r, right));
        if !hit {
            let joined = Tuple::join_schema(left, right, output_table);
            *cache = Some((Arc::clone(left), Arc::clone(right), joined));
        }
        Arc::clone(&cache.as_ref().expect("cache populated above").2)
    }
}

/// Reference nested-loop join used to validate the hash join in tests.
pub fn nested_loop_join(
    left: &[Tuple],
    right: &[Tuple],
    left_key: &[String],
    right_key: &[String],
    output_table: &str,
) -> Vec<Tuple> {
    let mut out = Vec::new();
    for l in left {
        for r in right {
            match (l.partition_key(left_key), r.partition_key(right_key)) {
                (Some(a), Some(b)) if a == b => out.push(l.join_with(r, output_table)),
                _ => {}
            }
        }
    }
    out
}

/// Pre-composed counter keys for one instrumented pipeline stage, so the
/// hot path increments by string lookup without formatting.
#[derive(Debug)]
struct StageMeter {
    rows_in: String,
    rows_out: String,
    chunks_in: String,
}

/// A pipeline of local operators: tuples pushed in flow through every stage;
/// flush drains stateful stages in order.
///
/// With a telemetry hub attached ([`Pipeline::set_telemetry`]) every stage
/// accumulates `op.<name>.rows_in`, `op.<name>.rows_out` and (on the batch
/// path) `op.<name>.chunks_in` counters — for a [`Selection`] the
/// rows-out/rows-in ratio is exactly the compiled predicate's observed
/// selectivity.  Counters are keyed by operator kind, so pipelines of many
/// queries aggregate into one per-node view.
#[derive(Debug, Default)]
pub struct Pipeline {
    stages: Vec<Box<dyn LocalOperator + Send>>,
    meters: Option<(Telemetry, Vec<StageMeter>)>,
}

impl Pipeline {
    /// Create an empty (pass-through) pipeline.
    pub fn new(stages: Vec<Box<dyn LocalOperator + Send>>) -> Self {
        Pipeline {
            stages,
            meters: None,
        }
    }

    /// Attach (or, with a disabled handle, detach) per-stage telemetry.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        if !tel.is_enabled() {
            self.meters = None;
            return;
        }
        let meters = self
            .stages
            .iter()
            .map(|s| {
                let name = s.name();
                StageMeter {
                    rows_in: format!("op.{name}.rows_in"),
                    rows_out: format!("op.{name}.rows_out"),
                    chunks_in: format!("op.{name}.chunks_in"),
                }
            })
            .collect();
        self.meters = Some((tel.clone(), meters));
    }

    /// Push one tuple through every stage.
    pub fn push(&mut self, tuple: Tuple) -> Vec<Tuple> {
        let mut current = vec![tuple];
        for (i, stage) in self.stages.iter_mut().enumerate() {
            let rows_in = current.len();
            let mut next = Vec::new();
            for t in current {
                next.extend(stage.push(t));
            }
            current = next;
            if let Some((tel, meters)) = &self.meters {
                let m = &meters[i];
                tel.add(&m.rows_in, rows_in as u64);
                tel.add(&m.rows_out, current.len() as u64);
            }
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// Push a whole batch through the pipeline **chunk-to-chunk**: every
    /// stage consumes the previous stage's re-chunked survivor batch via
    /// [`LocalOperator::push_batch`], so a selection→projection→group-by
    /// stack stays columnar end to end — a single-schema batch travels as
    /// one chunk per stage and no stage boundary materialises per-row
    /// tuples.  Produces exactly the rows [`Pipeline::push`] would, in the
    /// same order.
    pub fn push_batch(&mut self, batch: &TupleBatch) -> TupleBatch {
        let Some((first, rest)) = self.stages.split_first_mut() else {
            return batch.clone(); // pass-through pipeline
        };
        let mut current = first.push_batch(batch);
        if let Some((tel, meters)) = &self.meters {
            let m = &meters[0];
            tel.add(&m.rows_in, batch.len() as u64);
            tel.add(&m.chunks_in, batch.chunks().len() as u64);
            tel.add(&m.rows_out, current.len() as u64);
        }
        for (i, stage) in rest.iter_mut().enumerate() {
            if current.is_empty() {
                break;
            }
            let rows_in = current.len();
            let chunks_in = current.chunks().len();
            let next = stage.push_batch(&current);
            if let Some((tel, meters)) = &self.meters {
                let m = &meters[i + 1];
                tel.add(&m.rows_in, rows_in as u64);
                tel.add(&m.chunks_in, chunks_in as u64);
                tel.add(&m.rows_out, next.len() as u64);
            }
            current = next;
        }
        current
    }

    /// Flush every stage, cascading buffered tuples downstream through the
    /// batch path (a stateful stage's emissions form same-schema runs, so
    /// downstream stages consume them as chunks).
    pub fn flush(&mut self) -> Vec<Tuple> {
        let mut carried = TupleBatch::default();
        for i in 0..self.stages.len() {
            let rows_in = carried.len();
            let chunks_in = carried.chunks().len();
            // Tuples released by upstream flushes still have to traverse the
            // remaining stages.
            let mut released = if carried.is_empty() {
                TupleBatch::default()
            } else {
                self.stages[i].push_batch(&carried)
            };
            for t in self.stages[i].flush() {
                released.push_tuple(t);
            }
            if let Some((tel, meters)) = &self.meters {
                let m = &meters[i];
                tel.add(&m.rows_in, rows_in as u64);
                tel.add(&m.chunks_in, chunks_in as u64);
                tel.add(&m.rows_out, released.len() as u64);
            }
            carried = released;
        }
        carried.into_tuples()
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn row(table: &str, id: i64, category: &str, amount: i64) -> Tuple {
        Tuple::new(
            table,
            vec![
                ("id", Value::Int(id)),
                ("category", Value::Str(category.into())),
                ("amount", Value::Int(amount)),
            ],
        )
    }

    #[test]
    fn selection_filters_and_discards_malformed() {
        let mut sel = Selection::new(Expr::cmp(CmpOp::Gt, Expr::col("amount"), Expr::lit(10i64)));
        assert_eq!(sel.push(row("t", 1, "a", 50)).len(), 1);
        assert_eq!(sel.push(row("t", 2, "a", 5)).len(), 0);
        // Malformed: no amount column.
        let malformed = Tuple::new("t", vec![("id", Value::Int(3))]);
        assert_eq!(sel.push(malformed).len(), 0);
    }

    #[test]
    fn projection_and_limit() {
        let mut proj = Projection::new(vec!["id".into()]);
        let out = proj.push(row("t", 7, "x", 1));
        assert_eq!(out[0].columns(), &["id".to_string()]);
        let mut lim = Limit::new(2);
        assert_eq!(lim.push(row("t", 1, "a", 1)).len(), 1);
        assert_eq!(lim.push(row("t", 2, "a", 1)).len(), 1);
        assert_eq!(lim.push(row("t", 3, "a", 1)).len(), 0);
    }

    #[test]
    fn distinct_deduplicates_on_key() {
        let mut d = Distinct::new(vec!["category".into()]);
        assert_eq!(d.push(row("t", 1, "a", 1)).len(), 1);
        assert_eq!(d.push(row("t", 2, "a", 2)).len(), 0);
        assert_eq!(d.push(row("t", 3, "b", 3)).len(), 1);
        // Full-tuple dedup when no key given.
        let mut d = Distinct::new(vec![]);
        assert_eq!(d.push(row("t", 1, "a", 1)).len(), 1);
        assert_eq!(d.push(row("t", 1, "a", 1)).len(), 0);
        assert_eq!(d.push(row("t", 1, "a", 2)).len(), 1);
    }

    #[test]
    fn group_by_counts_and_sums() {
        let mut g = GroupBy::new(
            vec!["category".into()],
            vec![AggFunc::Count, AggFunc::Sum("amount".into())],
            "out",
        );
        for (cat, amount) in [("a", 10), ("b", 5), ("a", 20), ("a", 30), ("b", 5)] {
            assert!(g.push(row("t", 0, cat, amount)).is_empty());
        }
        let out = g.flush();
        assert_eq!(out.len(), 2);
        let a = out
            .iter()
            .find(|t| t.get("category") == Some(&Value::Str("a".into())))
            .unwrap();
        assert_eq!(a.get("count"), Some(&Value::Int(3)));
        assert_eq!(a.get("sum_amount"), Some(&Value::Float(60.0)));
    }

    #[test]
    fn group_by_merge_partial_matches_direct_computation() {
        // Two "nodes" each aggregate locally; the root merges their partials.
        let mk = || {
            GroupBy::new(
                vec!["category".into()],
                vec![AggFunc::Count, AggFunc::Avg("amount".into())],
                "out",
            )
        };
        let mut node1 = mk();
        let mut node2 = mk();
        let mut reference = mk();
        for (i, (cat, amount)) in [("a", 10), ("b", 4), ("a", 20), ("b", 8), ("a", 30)]
            .iter()
            .enumerate()
        {
            let t = row("t", i as i64, cat, *amount);
            if i % 2 == 0 {
                node1.push(t.clone());
            } else {
                node2.push(t.clone());
            }
            reference.push(t);
        }
        let mut root = mk();
        for partial in node1.flush().into_iter().chain(node2.flush()) {
            assert!(root.merge_partial(&partial));
        }
        let mut root_out = root.flush();
        let mut ref_out = reference.flush();
        let key = |t: &Tuple| t.get("category").unwrap().key_string();
        root_out.sort_by_key(key);
        ref_out.sort_by_key(key);
        for (a, b) in root_out.iter().zip(&ref_out) {
            assert_eq!(a.get("count"), b.get("count"));
            assert_eq!(a.get("avg_amount"), b.get("avg_amount"));
        }
    }

    #[test]
    fn top_k_orders_descending() {
        let mut t = TopK::new(2, "count");
        for (src, n) in [("a", 5), ("b", 50), ("c", 20)] {
            t.push(Tuple::new(
                "g",
                vec![("src", Value::Str(src.into())), ("count", Value::Int(n))],
            ));
        }
        let out = t.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("src"), Some(&Value::Str("b".into())));
        assert_eq!(out[1].get("src"), Some(&Value::Str("c".into())));
    }

    #[test]
    fn bloom_filter_has_no_false_negatives() {
        let mut f = BloomFilter::new(1024, 3);
        let present: Vec<String> = (0..100).map(|i| format!("key-{i}")).collect();
        for k in &present {
            f.insert(k);
        }
        for k in &present {
            assert!(f.contains(k));
        }
        // False-positive rate should be modest at this load factor.
        let fp = (0..1000)
            .filter(|i| f.contains(&format!("absent-{i}")))
            .count();
        assert!(fp < 200, "false positives {fp}");
        assert_eq!(f.size_bytes() * 8, f.bit_len());
    }

    #[test]
    fn symmetric_hash_join_equals_nested_loop() {
        let left: Vec<Tuple> = (0..20)
            .map(|i| row("r", i, ["a", "b", "c"][(i % 3) as usize], i))
            .collect();
        let right: Vec<Tuple> = (0..15)
            .map(|i| {
                Tuple::new(
                    "s",
                    vec![
                        (
                            "category",
                            Value::Str(["a", "b", "c", "d"][(i % 4) as usize].into()),
                        ),
                        ("weight", Value::Int(i * 10)),
                    ],
                )
            })
            .collect();
        let key = vec!["category".to_string()];
        let mut shj = SymmetricHashJoin::new(key.clone(), key.clone(), "rs");
        let mut streamed = Vec::new();
        // Interleave arrivals, as the network would.
        let mut l = left.iter();
        let mut r = right.iter();
        loop {
            match (l.next(), r.next()) {
                (None, None) => break,
                (lt, rt) => {
                    if let Some(t) = lt {
                        streamed.extend(shj.push_side(JoinSide::Left, t.clone()));
                    }
                    if let Some(t) = rt {
                        streamed.extend(shj.push_side(JoinSide::Right, t.clone()));
                    }
                }
            }
        }
        let reference = nested_loop_join(&left, &right, &key, &key, "rs");
        assert_eq!(streamed.len(), reference.len());
        assert!(!streamed.is_empty());
        let (ls, rs) = shj.state_size();
        assert_eq!(ls, 20);
        assert_eq!(rs, 15);
    }

    #[test]
    fn pipeline_composes_and_flushes() {
        let mut p = Pipeline::new(vec![
            Box::new(Selection::new(Expr::cmp(
                CmpOp::Ge,
                Expr::col("amount"),
                Expr::lit(10i64),
            ))),
            Box::new(Queue::default()),
            Box::new(GroupBy::new(
                vec!["category".into()],
                vec![AggFunc::Count],
                "out",
            )),
            Box::new(TopK::new(1, "count")),
        ]);
        for (cat, amount) in [("a", 10), ("a", 20), ("b", 100), ("b", 1), ("c", 3)] {
            assert!(p.push(row("t", 0, cat, amount)).is_empty());
        }
        let out = p.flush();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("category"), Some(&Value::Str("a".into())));
        assert_eq!(out[0].get("count"), Some(&Value::Int(2)));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn empty_pipeline_is_pass_through() {
        let mut p = Pipeline::new(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.push(row("t", 1, "a", 1)).len(), 1);
        assert!(p.flush().is_empty());
    }

    fn netmon_rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(
                    "events",
                    vec![
                        ("src", Value::Str(format!("10.0.0.{}", i % 7).into())),
                        ("port", Value::Int(i % 1024)),
                        ("len", Value::Int(40 + i % 1400)),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn selection_batch_path_equals_per_tuple_path() {
        use crate::tuple::TupleBatch;
        let rows = netmon_rows(200);
        let pred = || Expr::cmp(CmpOp::Ge, Expr::col("port"), Expr::lit(100i64));
        let mut per_tuple = Selection::new(pred());
        let mut batched = Selection::new(pred());
        let expected: Vec<Tuple> = rows
            .iter()
            .cloned()
            .flat_map(|t| per_tuple.push(t))
            .collect();
        let got = batched.push_batch(&TupleBatch::new(rows));
        assert_eq!(
            got.chunks().len(),
            1,
            "single-schema survivors stay one chunk"
        );
        let got = got.into_tuples();
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    fn projection_batch_path_equals_per_tuple_path() {
        use crate::tuple::TupleBatch;
        let rows = netmon_rows(50);
        let cols = vec!["src".to_string(), "missing".to_string()];
        let mut per_tuple = Projection::new(cols.clone());
        let mut batched = Projection::new(cols);
        let expected: Vec<Tuple> = rows
            .iter()
            .cloned()
            .flat_map(|t| per_tuple.push(t))
            .collect();
        assert_eq!(
            batched.push_batch(&TupleBatch::new(rows)).into_tuples(),
            expected
        );
    }

    #[test]
    fn group_by_batch_absorb_equals_per_tuple_absorb() {
        use crate::tuple::TupleBatch;
        let rows = netmon_rows(300);
        let mk = || {
            GroupBy::new(
                vec!["src".into()],
                vec![AggFunc::Count, AggFunc::Sum("len".into())],
                "out",
            )
        };
        let mut per_tuple = mk();
        let mut batched = mk();
        for t in rows.iter().cloned() {
            per_tuple.push(t);
        }
        assert!(batched.push_batch(&TupleBatch::new(rows)).is_empty());
        assert_eq!(batched.flush(), per_tuple.flush());
    }

    #[test]
    fn join_chunk_path_equals_per_tuple_path() {
        use crate::tuple::TupleBatch;
        let left: Vec<Tuple> = (0..30)
            .map(|i| row("r", i, ["a", "b", "c"][(i % 3) as usize], i))
            .collect();
        let right: Vec<Tuple> = (0..20)
            .map(|i| {
                Tuple::new(
                    "s",
                    vec![
                        (
                            "category",
                            Value::Str(["a", "b", "c", "d"][(i % 4) as usize].into()),
                        ),
                        ("weight", Value::Int(i * 10)),
                    ],
                )
            })
            .collect();
        let key = vec!["category".to_string()];
        let mut per_tuple = SymmetricHashJoin::new(key.clone(), key.clone(), "rs");
        let mut chunked = SymmetricHashJoin::new(key.clone(), key, "rs");
        let mut expected = Vec::new();
        for t in left.iter().cloned() {
            expected.extend(per_tuple.push_side(JoinSide::Left, t));
        }
        for t in right.iter().cloned() {
            expected.extend(per_tuple.push_side(JoinSide::Right, t));
        }
        let mut got = Vec::new();
        for chunk in TupleBatch::new(left).chunks() {
            got.extend(chunked.push_chunk(JoinSide::Left, chunk));
        }
        for chunk in TupleBatch::new(right).chunks() {
            got.extend(chunked.push_chunk(JoinSide::Right, chunk));
        }
        assert_eq!(got.len(), expected.len());
        let canon = |v: &[Tuple]| {
            let mut s: Vec<String> = v.iter().map(std::string::ToString::to_string).collect();
            s.sort();
            s
        };
        assert_eq!(canon(&got), canon(&expected));
        assert_eq!(chunked.state_size(), per_tuple.state_size());
    }

    #[test]
    fn pipeline_batch_path_equals_per_tuple_path() {
        use crate::tuple::TupleBatch;
        let rows = netmon_rows(400);
        let mk = || {
            Pipeline::new(vec![
                Box::new(Selection::new(Expr::cmp(
                    CmpOp::Lt,
                    Expr::col("port"),
                    Expr::lit(900i64),
                ))) as Box<dyn LocalOperator + Send>,
                Box::new(Projection::new(vec!["src".into(), "len".into()])),
                Box::new(GroupBy::new(
                    vec!["src".into()],
                    vec![AggFunc::Count, AggFunc::Avg("len".into())],
                    "out",
                )),
            ])
        };
        let mut per_tuple = mk();
        let mut batched = mk();
        let mut expected = Vec::new();
        for t in rows.iter().cloned() {
            expected.extend(per_tuple.push(t));
        }
        let got = batched.push_batch(&TupleBatch::new(rows));
        assert_eq!(got.into_tuples(), expected);
        assert_eq!(batched.flush(), per_tuple.flush());
    }

    #[test]
    fn chunked_pipeline_stays_columnar_between_stages() {
        use crate::tuple::TupleBatch;
        // selection → projection → distinct over a single-schema batch: the
        // survivors leave every stage as one chunk (no per-tuple explosion).
        let rows = netmon_rows(100);
        let mut p = Pipeline::new(vec![
            Box::new(Selection::new(Expr::cmp(
                CmpOp::Lt,
                Expr::col("port"),
                Expr::lit(512i64),
            ))) as Box<dyn LocalOperator + Send>,
            Box::new(Projection::new(vec!["src".into()])),
            Box::new(Distinct::new(vec!["src".into()])),
        ]);
        let out = p.push_batch(&TupleBatch::new(rows));
        assert_eq!(out.chunks().len(), 1, "one chunk through the whole stack");
        assert_eq!(out.len(), 7, "seven distinct sources");
        for chunk in out.chunks() {
            assert_eq!(chunk.schema().columns(), &["src".to_string()]);
        }
    }

    #[test]
    fn limit_and_queue_batch_paths_match_per_tuple() {
        use crate::tuple::TupleBatch;
        let rows = netmon_rows(50);
        let mut lim_ref = Limit::new(17);
        let mut lim_batch = Limit::new(17);
        let expected: Vec<Tuple> = rows.iter().cloned().flat_map(|t| lim_ref.push(t)).collect();
        let mut got = Vec::new();
        for window in rows.chunks(20) {
            got.extend(
                lim_batch
                    .push_batch(&TupleBatch::new(window.to_vec()))
                    .into_tuples(),
            );
        }
        assert_eq!(got, expected);
        let mut q = Queue::default();
        let echoed = q.push_batch(&TupleBatch::new(rows.clone()));
        assert_eq!(echoed.into_tuples(), rows);
        assert_eq!(q.yields, 50);
    }
}
