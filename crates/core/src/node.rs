//! The PIER node program: query executor over the overlay.
//!
//! A [`PierNode`] is the "Program" box of Figures 3 and 4 with the query
//! processor included: it embeds an [`Overlay`] (the DHT wrapper), installs
//! opgraphs that arrive via query dissemination, runs their local dataflow
//! over locally stored and DHT-partitioned data, and uses the overlay for
//! the distributed parts of query execution exactly as §3.3.6 enumerates —
//! query dissemination, hash indexes, partitioned parallelism (rehash),
//! operator state, and hierarchical operators.
//!
//! Life of a query (§3.3.2): a client hands a [`QueryPlan`] to any node
//! (its *proxy*) through [`PierNode::submit_query`]; the proxy disseminates
//! the plan (broadcast tree, equality index, or locally), every receiving
//! node instantiates the opgraphs and starts feeding them; answer tuples are
//! forwarded to the proxy, which delivers them to the client; execution
//! stops when the query's timeout expires.

use crate::admission::{AdmissionControl, AdmissionFactory, AdmissionVerdict, SloPolicy};
use crate::aggregate::{AggFunc, AggState, PartialDecoder};
use crate::operators::{GroupBy, JoinSide, LocalOperator, Pipeline, SymmetricHashJoin};
use crate::plan::{CqSpec, Dissemination, OpGraph, OperatorSpec, QpObject, QueryPlan, SinkSpec};
use crate::sharing::{
    is_share_scoped_table, InstallOutcome, MultiQuerySharing, SharingFactory, SharingStats,
};
use crate::tuple::{
    ColumnChunk, ColumnRef, ColumnResolver, Schema, SchemaRegistry, Tuple, TupleBatch,
};
use crate::value::Value;
use pier_cq::{
    Delta, DeltaTracker, DurableStore, Lease, LeaseStatus, RehydrateReport, RenewalBackoff,
    SegmentCodec, SegmentLog, WindowAccumulator, WindowId, WindowSpec, WindowStats, WindowStore,
};
use pier_dht::{
    routing_id, DhtMessage, Id, NodeRef, ObjectName, Overlay, OverlayConfig, OverlayEffect,
    OverlayEvent, OverlayTimer,
};
use pier_runtime::{Duration, NodeAddr, Program, ProgramContext, Rng64, SimTime, WireSize};
use pier_telemetry::{SpanRecord, Telemetry, TelemetryConfig};
use pier_trace::{trace_id_for, TraceConfig, TraceContext};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Tuning knobs for a PIER node.
#[derive(Debug, Clone)]
pub struct PierConfig {
    /// Overlay configuration.
    pub overlay: OverlayConfig,
    /// Soft-state lifetime used when publishing tuples and partial results.
    pub publish_lifetime: Duration,
    /// Coalesce same-destination tuples into [`TupleBatch`] transfers on the
    /// rehash/exchange and partial-aggregate paths (one overlay operation
    /// per destination per flush instead of one per tuple).  Disable to get
    /// the paper's original per-tuple `put` behaviour (the baseline of the
    /// batching-equivalence tests).
    pub batching: bool,
    /// Rehash tuples buffered per node before an early flush.
    pub batch_max_tuples: usize,
    /// Upper bound on how long a rehash tuple may sit in the batch buffer
    /// before the periodic flush tick ships it, microseconds.
    pub batch_flush_interval: Duration,
    /// Optional multi-query sharing layer constructor (`pier_mqo::layer`):
    /// when set, disseminated plans are offered to the layer first and
    /// constant-varied continuous queries execute as share-group members
    /// instead of independent dataflows.  `None` (the default) preserves
    /// per-query execution exactly.
    pub sharing: Option<SharingFactory>,
    /// Self-monitoring telemetry: disabled by default (zero overhead beyond
    /// one discriminant check per instrumentation point).  When enabled the
    /// node keeps a [`pier_telemetry::TelemetryHub`] of counters, gauges,
    /// histograms and a bounded trace ring; when
    /// [`TelemetryConfig::publish_interval`] is also set the node
    /// periodically materialises its hub as tuples into the
    /// `system.metrics` DHT namespace so standing queries can monitor the
    /// cluster through PIER itself.
    pub telemetry: TelemetryConfig,
    /// Durable window segments: when set, every window tick snapshots the
    /// node's continuous-query window state into this [`DurableStore`]
    /// (keys `q{id}.local` / `q{id}.root`), and a node restarted with the
    /// *same* store handle rehydrates warm windows when the query's next
    /// re-dissemination re-installs it, instead of recomputing retained
    /// panes from scratch.  `None` (the default) keeps all state soft.
    pub durable: Option<DurableStore>,
    /// Optional admission-control layer constructor (`pier_analyze`): when
    /// set, every plan submitted at this node is statically costed *before
    /// dissemination* and admitted, degraded to a sampled plan, or rejected
    /// with a machine-readable report ([`PierOut::Admission`]).  `None`
    /// (the default) admits everything unconditionally.
    pub admission: Option<AdmissionFactory>,
    /// Per-tenant SLO budgets and the deployment assumptions the admission
    /// layer's cost model scales by.  Ignored without
    /// [`PierConfig::admission`].
    pub slo: SloPolicy,
    /// Distributed tracing (`pier-trace`): off by default.  When
    /// [`TraceConfig::sample_every`] is nonzero the proxy samples one in N
    /// submitted queries with a seeded-RNG draw (an `EXPLAIN ANALYZE` plan
    /// arrives pre-marked and skips the roll); sampled queries record
    /// virtual-time spans through the telemetry hub and their trace context
    /// travels on the wire.  With tracing off the RNG is never drawn and no
    /// context is attached, so runs stay byte-identical — results *and*
    /// message sizes — to a build without tracing.  Spans are inert unless
    /// [`PierConfig::telemetry`] is also enabled.
    pub trace: TraceConfig,
}

impl Default for PierConfig {
    fn default() -> Self {
        PierConfig {
            overlay: OverlayConfig::default(),
            publish_lifetime: 600_000_000,
            batching: true,
            batch_max_tuples: 64,
            batch_flush_interval: 100_000,
            sharing: None,
            telemetry: TelemetryConfig::default(),
            durable: None,
            admission: None,
            slo: SloPolicy::default(),
            trace: TraceConfig::off(),
        }
    }
}

/// Messages exchanged between PIER nodes.
#[derive(Debug, Clone)]
pub enum PierMsg {
    /// Overlay traffic (routing, get/put/send/renew, broadcast).
    Dht(DhtMessage<QpObject>),
    /// Answer tuples flowing back to the query's proxy node.
    Results {
        /// Query the tuples belong to.
        query_id: u64,
        /// The answer tuples (possibly a batch).
        tuples: Vec<Tuple>,
    },
    /// Per-window results of a continuous query streamed from the query's
    /// window root to the proxy: retractions of superseded rows (delta mode
    /// only) followed by the window's current rows.
    WindowResults {
        /// Query the window belongs to.
        query_id: u64,
        /// Window start (virtual-time microseconds, inclusive).
        window_start: SimTime,
        /// Window end (exclusive).
        window_end: SimTime,
        /// Rows retracted by this emission.
        retracts: Vec<Tuple>,
        /// Rows inserted by this emission.
        inserts: Vec<Tuple>,
        /// Trace context when the emitting query is sampled: the proxy's
        /// `result.emit` span parents to the root's `window.emit` span.
        trace: Option<TraceContext>,
    },
}

impl WireSize for PierMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            PierMsg::Dht(m) => m.wire_size(),
            PierMsg::Results { tuples, .. } => {
                8 + tuples.iter().map(WireSize::wire_size).sum::<usize>()
            }
            PierMsg::WindowResults {
                retracts,
                inserts,
                trace,
                ..
            } => {
                24 + retracts.iter().map(WireSize::wire_size).sum::<usize>()
                    + inserts.iter().map(WireSize::wire_size).sum::<usize>()
                    + trace.map_or(0, |t| t.wire_size())
            }
        }
    }
}

/// Timers used by a PIER node.
#[derive(Debug, Clone)]
pub enum PierTimer {
    /// Overlay maintenance.
    Overlay(OverlayTimer),
    /// Periodic flush of buffered partial aggregates up the aggregation tree.
    AggFlush {
        /// Query being flushed.
        query_id: u64,
    },
    /// Final aggregation flush at the aggregation-tree root.
    AggFinal {
        /// Query being finalized.
        query_id: u64,
    },
    /// The query's lifetime expired at this node: uninstall it.
    QueryEnd {
        /// Query being uninstalled.
        query_id: u64,
    },
    /// The proxy's view of the query lifetime expired: notify the client.
    ProxyDone {
        /// Query being completed.
        query_id: u64,
    },
    /// Periodic window maintenance for a continuous query: close due
    /// windows, forward partials toward the window root, emit per-window
    /// results at the root.  Fires every window slide.
    WindowTick {
        /// Query being ticked.
        query_id: u64,
    },
    /// Proxy-side soft-state renewal: re-disseminate the standing plan so
    /// leases extend and churned-in nodes join the computation.
    CqRenew {
        /// Query being renewed.
        query_id: u64,
    },
    /// Node-side lease check: uninstall the continuous query if its lease
    /// lapsed (the owner stopped renewing or we are partitioned away).
    CqLease {
        /// Query being checked.
        query_id: u64,
    },
    /// Ship every buffered rehash batch that the size threshold has not
    /// already flushed (the "flush on tick" half of batched transfer).
    BatchFlush,
    /// Periodic window maintenance for one **share group** of the sharing
    /// layer: one tick chain per group *incarnation*, however many member
    /// queries it serves (the shared counterpart of
    /// [`PierTimer::WindowTick`]).
    ShareTick {
        /// The share group (plan fingerprint) being ticked.
        group: u64,
        /// The group incarnation this chain was armed for; the chain stops
        /// when the live group's epoch differs (retired and re-created).
        epoch: u64,
    },
    /// Periodic self-monitoring publish: materialise the telemetry hub as a
    /// `system.metrics` tuple into the DHT (the dogfood loop — armed only
    /// when [`TelemetryConfig::publish_interval`] is set).
    MetricsPublish,
}

/// Values delivered to the client application attached to a node.
#[derive(Debug, Clone)]
pub enum PierOut {
    /// An answer tuple for a query this node proxies.
    Result {
        /// Query the tuple answers.
        query_id: u64,
        /// The answer tuple.
        tuple: Tuple,
    },
    /// The query's timeout expired; no more results will be delivered.
    Done {
        /// The completed query.
        query_id: u64,
    },
    /// One row of a per-window result of a continuous query.
    WindowResult {
        /// Query the row answers.
        query_id: u64,
        /// Window start (inclusive).
        window_start: SimTime,
        /// Window end (exclusive).
        window_end: SimTime,
        /// True when this row retracts a previously delivered row
        /// (delta-mode refinement); false for inserts/snapshots.
        retract: bool,
        /// The result row.
        tuple: Tuple,
    },
    /// The proxy's admission decision for a submitted query (emitted only
    /// when the node is built with an admission layer,
    /// [`crate::node::PierConfig::admission`]).  A rejected query also
    /// receives a terminating [`PierOut::Done`]; a shed query runs with
    /// `sample_every > 1`.
    Admission {
        /// The assessed query.
        query_id: u64,
        /// The tenant billed ([`QueryPlan::tenant`]).
        tenant: u64,
        /// False when the query was rejected and will not run.
        accepted: bool,
        /// Sampling modulus the plan was disseminated with (1 = full
        /// fidelity, >1 = shed-to-sampling degraded mode).
        sample_every: u32,
        /// The machine-readable static cost report (JSON; schema in
        /// `docs/ANALYSIS.md`).
        report: String,
    },
}

/// True for table names of the query-scoped form `q{digits}.{suffix}` — the
/// namespaces queries intern per installation (`q{id}.agg`, `q{id}.wp`,
/// `q{id}.win`, `q{id}.partials`, …) and the shapes the teardown sweep is
/// allowed to evict.  User tables that merely start with `q` do not match.
pub(crate) fn is_query_scoped_table(table: &str) -> bool {
    let Some(rest) = table.strip_prefix('q') else {
        return false;
    };
    let Some(dot) = rest.find('.') else {
        return false;
    };
    !rest[..dot].is_empty() && rest.as_bytes()[..dot].iter().all(u8::is_ascii_digit)
}

#[derive(Debug)]
struct GraphState {
    spec: OpGraph,
    pipeline: Pipeline,
    join: Option<SymmetricHashJoin>,
    /// Local + relayed partial aggregates waiting to travel up the tree.
    uplink: Option<GroupBy>,
    /// Partials merged at the aggregation-tree root.
    root_merge: Option<GroupBy>,
}

/// One group's mergeable window accumulator: the grouping values plus one
/// partial [`AggState`] per aggregate — the window engine of `pier-cq`
/// parameterised with `pier-core`'s aggregate machinery.
#[derive(Debug, Clone)]
struct GroupAgg {
    vals: Vec<Value>,
    states: Vec<AggState>,
}

impl WindowAccumulator for GroupAgg {
    fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.states.iter_mut().zip(&other.states) {
            mine.merge(theirs);
        }
    }
}

// Lossless little-endian byte codec for the durable window segments of
// `pier-cq`: floats are persisted as raw IEEE-754 bits, so a rehydrated
// accumulator is *exactly* the one that was snapshotted and re-encoding it
// reproduces identical bytes (the round-trip contract of [`SegmentCodec`]).
// Scalars serialise through the shared wire codec ([`Value::encode`]) — one
// tagged-LE value format for DHT messages and durable segments alike.

fn seg_put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn seg_put_opt_value(buf: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None => buf.push(0),
        Some(v) => {
            buf.push(1);
            v.encode(buf);
        }
    }
}

fn seg_put_state(buf: &mut Vec<u8>, state: &AggState) {
    match state {
        AggState::Count(n) => {
            buf.push(0);
            seg_put_u64(buf, *n);
        }
        AggState::Sum(s) => {
            buf.push(1);
            seg_put_u64(buf, s.to_bits());
        }
        AggState::Min(v) => {
            buf.push(2);
            seg_put_opt_value(buf, v);
        }
        AggState::Max(v) => {
            buf.push(3);
            seg_put_opt_value(buf, v);
        }
        AggState::Avg { sum, count } => {
            buf.push(4);
            seg_put_u64(buf, sum.to_bits());
            seg_put_u64(buf, *count);
        }
    }
}

struct SegReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SegReader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let raw: [u8; 8] = self.bytes.get(self.pos..end)?.try_into().ok()?;
        self.pos = end;
        Some(u64::from_le_bytes(raw))
    }

    fn value(&mut self) -> Option<Value> {
        let (v, used) = Value::decode(self.bytes.get(self.pos..)?)?;
        self.pos += used;
        Some(v)
    }

    fn opt_value(&mut self) -> Option<Option<Value>> {
        Some(match self.u8()? {
            0 => None,
            1 => Some(self.value()?),
            _ => return None,
        })
    }

    fn state(&mut self) -> Option<AggState> {
        Some(match self.u8()? {
            0 => AggState::Count(self.u64()?),
            1 => AggState::Sum(f64::from_bits(self.u64()?)),
            2 => AggState::Min(self.opt_value()?),
            3 => AggState::Max(self.opt_value()?),
            4 => AggState::Avg {
                sum: f64::from_bits(self.u64()?),
                count: self.u64()?,
            },
            _ => return None,
        })
    }
}

impl SegmentCodec for GroupAgg {
    fn encode_state(&self, buf: &mut Vec<u8>) {
        seg_put_u64(buf, self.vals.len() as u64);
        for v in &self.vals {
            v.encode(buf);
        }
        seg_put_u64(buf, self.states.len() as u64);
        for s in &self.states {
            seg_put_state(buf, s);
        }
    }

    fn decode_state(bytes: &[u8]) -> Option<Self> {
        let mut r = SegReader { bytes, pos: 0 };
        let nv = usize::try_from(r.u64()?).ok()?;
        if nv > bytes.len() {
            return None; // length prefix cannot exceed the payload
        }
        let mut vals = Vec::with_capacity(nv);
        for _ in 0..nv {
            vals.push(r.value()?);
        }
        let ns = usize::try_from(r.u64()?).ok()?;
        if ns > bytes.len() {
            return None;
        }
        let mut states = Vec::with_capacity(ns);
        for _ in 0..ns {
            states.push(r.state()?);
        }
        if r.pos != bytes.len() {
            return None; // trailing garbage: not a clean snapshot
        }
        Some(GroupAgg { vals, states })
    }
}

/// Runtime state of one continuous (windowed) query at one node.
#[derive(Debug)]
struct CqState {
    spec: CqSpec,
    window: WindowSpec,
    group_cols: Vec<String>,
    aggs: Vec<AggFunc>,
    final_ops: Vec<OperatorSpec>,
    /// Group columns resolved to schema indices once per input schema.
    group_resolver: ColumnResolver,
    /// Per-aggregate input column (`None` for `COUNT(*)`), resolved once
    /// per input schema.
    agg_inputs: Vec<Option<ColumnRef>>,
    /// Event-time column, resolved once per input schema.
    time_ref: Option<ColumnRef>,
    /// Window-scoped dedup columns (a missing column keys as "∅").
    dedup_refs: Vec<ColumnRef>,
    /// Interned shape of the closed-window partials shipped to the root.
    partial_schema: Arc<Schema>,
    /// Compiled positional decode of arriving partials, cached per schema
    /// (single entry, pointer-keyed — see [`PartialDecodeCache`]).
    partial_decode: Option<PartialDecodeCache>,
    /// Interned shape of the per-window result rows emitted at the root.
    result_schema: Arc<Schema>,
    /// Index of the opgraph feeding the windows.
    graph_idx: usize,
    /// Node-local window accumulation over this node's share of the stream.
    store: WindowStore<GroupAgg>,
    /// Partials absorbed while travelling toward (or arriving at) the
    /// query's window root; closes one slide after `store` so relayed
    /// partials have time to arrive.
    root_store: WindowStore<GroupAgg>,
    /// Root-side emission tracker implementing snapshot/delta output.
    tracker: DeltaTracker<Tuple>,
    /// Soft-state lease granted by (re)dissemination.
    lease: Lease,
    /// Windows this node emitted to the proxy as root.
    windows_emitted: u64,
    /// Shed tuples+groups already reported to telemetry (delta baseline for
    /// the `window_shed` trace event).
    tel_shed: u64,
    /// Evicted windows already reported to telemetry (delta baseline for
    /// the `window_evict` trace event).
    tel_evicted: u64,
    /// Windows restored from durable segments when this installation
    /// rehydrated (0 for a cold install) — the warm-restart diagnostic.
    rehydrated_windows: u64,
}

impl CqState {
    /// Per-window result rows are retired from the delta tracker once they
    /// are this many windows old (late refinements beyond that are dropped).
    fn retention_windows(&self) -> u64 {
        self.window.windows_per_event() + 4
    }
}

#[derive(Debug)]
struct QueryState {
    plan: QueryPlan,
    graphs: Vec<GraphState>,
    agg_root_id: Id,
    /// Continuous-query runtime, present when the plan has a windowed sink.
    cq: Option<CqState>,
    /// Source rows seen by a shed plan (`sample_every > 1`): the
    /// deterministic per-query per-node sampling counter.
    ingest_seen: u64,
}

#[derive(Debug, Default)]
struct ProxyState {
    results: u64,
    done: bool,
    /// The standing plan, kept proxy-side for periodic re-dissemination.
    renew_plan: Option<QueryPlan>,
    /// Jittered exponential backoff driving the re-dissemination clock
    /// (created on the first renewal round from the plan's lifecycle).
    backoff: Option<RenewalBackoff>,
    /// `results` at the previous renewal round: a stalled stream (no new
    /// results since the last round) escalates the backoff, progress
    /// resets it.
    renew_results: u64,
}

/// Rehash tuples buffered per rendezvous namespace, grouped by partition
/// key so each flush performs one overlay `put` per key instead of one per
/// tuple.
#[derive(Debug, Default)]
struct RehashBuffer {
    by_key: HashMap<String, Vec<Tuple>>,
    tuples: usize,
}

/// A PIER node: overlay + query processor, runnable under the simulator or
/// the physical runtime.
#[derive(Debug)]
pub struct PierNode {
    overlay: Overlay<QpObject>,
    bootstrap: Option<NodeAddr>,
    config: PierConfig,
    rng: Rng64,
    local_tables: HashMap<String, Vec<Tuple>>,
    queries: HashMap<u64, QueryState>,
    proxied: HashMap<u64, ProxyState>,
    pending_fetches: HashMap<u64, (u64, usize, Tuple)>,
    next_query_seq: u64,
    rehash_buf: HashMap<String, RehashBuffer>,
    batch_timer_armed: bool,
    /// The multi-query sharing layer (`pier-mqo`), when configured.
    sharing: Option<Box<dyn MultiQuerySharing + Send>>,
    /// The admission-control layer (`pier-analyze`), when configured.
    /// Consulted at the proxy before dissemination; absent = admit all.
    admission: Option<Box<dyn AdmissionControl + Send>>,
    /// Self-monitoring telemetry handle (shared with the overlay, the
    /// sharing layer and every installed pipeline; inert when disabled).
    tel: Telemetry,
    /// Per-node span-id sequence (`pier-trace`): ids are
    /// `(addr + 1) << 32 | seq`, cluster-unique and purely counter-derived
    /// so equal seeds allocate equal ids.
    next_span_seq: u64,
    /// Most recent span at this node that absorbed upstream work of a
    /// sampled query (`window.combine` / `window.upcall`): the parent the
    /// root's `window.emit` span links to.
    last_combine_span: HashMap<u64, u64>,
    /// Span ordinals at or above this watermark have not yet been published
    /// into `system.spans` (the dogfood loop, [`TraceConfig::publish`]).
    span_publish_cursor: u64,
}

impl PierNode {
    /// A node whose overlay routing state is precomputed from the full ring.
    pub fn with_static_ring(me: NodeRef, all: &[NodeRef], config: PierConfig) -> Self {
        let tel = Telemetry::from_config(&config.telemetry);
        let mut overlay = Overlay::with_static_ring(me, all, config.overlay);
        overlay.set_telemetry(tel.clone());
        let mut sharing = config.sharing.map(|factory| factory());
        if let Some(layer) = sharing.as_mut() {
            layer.set_telemetry(tel.clone());
        }
        let mut admission = config.admission.map(|factory| factory());
        if let Some(layer) = admission.as_mut() {
            layer.configure(&config.slo);
            layer.set_telemetry(&tel);
        }
        PierNode {
            overlay,
            bootstrap: None,
            rng: Rng64::new(me.id.0 ^ 0x9D5F),
            sharing,
            admission,
            tel,
            config,
            local_tables: HashMap::new(),
            queries: HashMap::new(),
            proxied: HashMap::new(),
            pending_fetches: HashMap::new(),
            next_query_seq: 0,
            rehash_buf: HashMap::new(),
            batch_timer_armed: false,
            next_span_seq: 0,
            last_combine_span: HashMap::new(),
            span_publish_cursor: 0,
        }
    }

    /// A node that joins an existing overlay through `bootstrap` when started.
    pub fn joining(me: NodeRef, bootstrap: Option<NodeAddr>, config: PierConfig) -> Self {
        let tel = Telemetry::from_config(&config.telemetry);
        let mut overlay = Overlay::new(me, config.overlay);
        overlay.set_telemetry(tel.clone());
        let mut sharing = config.sharing.map(|factory| factory());
        if let Some(layer) = sharing.as_mut() {
            layer.set_telemetry(tel.clone());
        }
        let mut admission = config.admission.map(|factory| factory());
        if let Some(layer) = admission.as_mut() {
            layer.configure(&config.slo);
            layer.set_telemetry(&tel);
        }
        PierNode {
            overlay,
            bootstrap,
            rng: Rng64::new(me.id.0 ^ 0x9D5F),
            sharing,
            admission,
            tel,
            config,
            local_tables: HashMap::new(),
            queries: HashMap::new(),
            proxied: HashMap::new(),
            pending_fetches: HashMap::new(),
            next_query_seq: 0,
            rehash_buf: HashMap::new(),
            batch_timer_armed: false,
            next_span_seq: 0,
            last_combine_span: HashMap::new(),
            span_publish_cursor: 0,
        }
    }

    /// Read access to the overlay (diagnostics, experiments).
    pub fn overlay(&self) -> &Overlay<QpObject> {
        &self.overlay
    }

    /// The node's telemetry handle (inert unless
    /// [`PierConfig::telemetry`] enables it).  Harnesses use this to read
    /// counters, sync host-level stats in as gauges, or export the trace.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Number of queries currently installed at this node, counting both
    /// independent dataflows and share-group members.
    pub fn installed_queries(&self) -> usize {
        self.queries.len() + self.sharing.as_ref().map_or(0, |l| l.stats().members)
    }

    /// Diagnostics of the multi-query sharing layer (`None` when the node
    /// was built without one).
    pub fn sharing_stats(&self) -> Option<SharingStats> {
        self.sharing.as_ref().map(|l| l.stats())
    }

    /// Queries currently holding admission budget at this proxy (`None`
    /// when the node was built without an admission layer).
    pub fn admitted_queries(&self) -> Option<usize> {
        self.admission.as_ref().map(|l| l.admitted())
    }

    // ----- distributed tracing (pier-trace) ---------------------------------

    /// Allocate the next cluster-unique span id: node address in the high
    /// half, a per-node sequence in the low half.  Counter-derived, never
    /// random, so equal-seed runs allocate identical ids.
    fn next_span_id(&mut self, me: NodeAddr) -> u64 {
        self.next_span_seq += 1;
        ((u64::from(me.0) + 1) << 32) | self.next_span_seq
    }

    /// The trace id of `query_id` when the query is installed at this node,
    /// was sampled at its proxy, and telemetry can record the span.
    fn traced(&self, query_id: u64) -> Option<u64> {
        if !self.tel.is_enabled() {
            return None;
        }
        self.queries
            .get(&query_id)
            .filter(|q| q.plan.trace)
            .map(|_| trace_id_for(query_id))
    }

    /// Rows of a node-local table (the decoupled-storage access method over
    /// data that lives only on this node, e.g. its own firewall log).
    pub fn local_table_len(&self, table: &str) -> usize {
        self.local_tables.get(table).map_or(0, Vec::len)
    }

    /// Append a row to a node-local table.  Rows become visible to queries
    /// over that table that are installed later; rows added while a
    /// continuous query is running are fed to it on arrival only if they are
    /// also published into the DHT.
    pub fn add_local_row(&mut self, table: &str, tuple: Tuple) {
        self.local_tables
            .entry(table.to_string())
            .or_default()
            .push(tuple);
    }

    /// Publish a tuple into the DHT-partitioned primary index of `table`,
    /// hashed on `key_cols` (§3.3.3 "a primary index in PIER is achieved by
    /// publishing a table into the DHT").
    pub fn publish(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        table: &str,
        key_cols: &[String],
        tuple: Tuple,
    ) {
        let Some(key) = tuple.partition_key(key_cols) else {
            return; // malformed tuple: nothing to hash on
        };
        self.publish_keyed(ctx, table, key, tuple);
    }

    /// Publish a tuple under an explicit partition key instead of one derived
    /// from its columns.  Used by the range index (the key is the PHT bucket
    /// label) and by any access method that wants custom placement.
    pub fn publish_keyed(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        table: &str,
        key: String,
        tuple: Tuple,
    ) {
        let name = ObjectName::new(table, key, self.rng.next_u64());
        let lifetime = self.config.publish_lifetime;
        let effects = self
            .overlay
            .put(name, QpObject::Tuple(tuple), lifetime, ctx.now());
        self.drive(ctx, effects);
    }

    /// Publish a tuple together with secondary-index entries on `index_cols`
    /// (§3.3.3): the base tuple goes into the primary index hashed on
    /// `key_cols`, and one `(index-key, tupleID)` entry per indexed column
    /// goes into the corresponding index table hashed on the indexed value.
    /// Consistency between the base tuple and its entries remains the
    /// publisher's responsibility, exactly as in the paper.
    pub fn publish_with_secondary_indexes(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        table: &str,
        key_cols: &[String],
        index_cols: &[String],
        tuple: Tuple,
    ) {
        let entries = crate::secondary_index::index_entries(table, key_cols, index_cols, &tuple);
        self.publish(ctx, table, key_cols, tuple);
        let index_key_cols = crate::secondary_index::index_partition_cols();
        for entry in entries {
            let index_table = entry.table().to_string();
            self.publish(ctx, &index_table, &index_key_cols, entry);
        }
    }

    /// Publish a tuple into the range index of `table` on `column` using the
    /// PHT-style bucket addressing of [`crate::range_index`] (§3.3.3 "Range
    /// Index Substrate").  Malformed tuples (missing or non-integer column)
    /// are silently skipped.
    pub fn publish_range_indexed(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        table: &str,
        column: &str,
        config: crate::range_index::RangeIndexConfig,
        tuple: Tuple,
    ) {
        let Some(key) = crate::range_index::publish_key(column, config, &tuple) else {
            return;
        };
        self.publish_keyed(ctx, table, key, tuple);
    }

    /// Submit a query at this node, which becomes its proxy.  Returns the
    /// assigned query id; results arrive as [`PierOut::Result`] outputs and
    /// the stream is terminated by [`PierOut::Done`].
    pub fn submit_query(&mut self, ctx: &mut ProgramContext<Self>, mut plan: QueryPlan) -> u64 {
        if plan.query_id == 0 {
            self.next_query_seq += 1;
            plan.query_id = ((ctx.me().0 as u64) << 32) | self.next_query_seq;
        }
        plan.proxy = ctx.me();
        // A windowed sink is a standing query: without a lifecycle nobody
        // would renew the nodes' leases and the query would silently die
        // when the default lease lapses, so one is always attached.
        if plan.cq.is_none() && plan.windowed_sink().is_some() {
            plan.cq = Some(CqSpec::default());
        }
        let query_id = plan.query_id;
        // Admission: the proxy consults the static analyzer before any of
        // the network sees the plan.  Rejected plans never disseminate —
        // the submitter gets the machine-readable report plus a
        // terminating `Done`; shed plans disseminate with the derived
        // sampling modulus stamped in.
        if let Some(layer) = self.admission.as_mut() {
            let decision = layer.assess(&plan);
            match decision.verdict {
                AdmissionVerdict::Admit => {
                    self.tel.inc("admission.admit");
                    self.tel.event("admission.admit", || {
                        vec![
                            ("query", query_id.to_string()),
                            ("tenant", plan.tenant.to_string()),
                        ]
                    });
                    ctx.output(PierOut::Admission {
                        query_id,
                        tenant: plan.tenant,
                        accepted: true,
                        sample_every: plan.sample_every,
                        report: decision.report,
                    });
                }
                AdmissionVerdict::Shed { sample_every } => {
                    plan.sample_every = sample_every.max(2);
                    let every = plan.sample_every;
                    self.tel.inc("admission.shed");
                    self.tel.event("admission.shed", || {
                        vec![
                            ("query", query_id.to_string()),
                            ("tenant", plan.tenant.to_string()),
                            ("sample_every", every.to_string()),
                        ]
                    });
                    ctx.output(PierOut::Admission {
                        query_id,
                        tenant: plan.tenant,
                        accepted: true,
                        sample_every: plan.sample_every,
                        report: decision.report,
                    });
                }
                AdmissionVerdict::Reject { reason } => {
                    self.tel.inc("admission.reject");
                    self.tel.event("admission.reject", || {
                        vec![
                            ("query", query_id.to_string()),
                            ("tenant", plan.tenant.to_string()),
                            ("reason", reason.clone()),
                        ]
                    });
                    ctx.output(PierOut::Admission {
                        query_id,
                        tenant: plan.tenant,
                        accepted: false,
                        sample_every: plan.sample_every,
                        report: decision.report,
                    });
                    ctx.output(PierOut::Done { query_id });
                    return query_id;
                }
            }
        }
        // Tracing: sampled once, here at the proxy — one seeded-RNG draw
        // per submission *only while tracing is enabled*, so untraced runs
        // consume the exact RNG stream of a pre-tracing build.  An
        // `EXPLAIN ANALYZE` plan arrives pre-marked and skips the roll; the
        // decision rides the disseminated plan so every node agrees.
        if self.config.trace.enabled() && !plan.trace {
            let roll = self.rng.next_u64();
            plan.trace = self.config.trace.keeps(roll);
        }
        if plan.trace && self.tel.is_enabled() {
            let trace_id = trace_id_for(query_id);
            let now = ctx.now();
            self.tel.record_span(
                now,
                now,
                trace_id,
                trace_id, // the trace's root span IS the trace id
                0,
                query_id,
                "query.disseminate",
                0,
                0,
                u64::from(plan.sample_every),
            );
        }
        let mut proxy_state = ProxyState::default();
        if let Some(cq) = &plan.cq {
            // Standing query: keep the plan for periodic re-dissemination
            // (lease renewal + churn repair) and start the renewal clock.
            proxy_state.renew_plan = Some(plan.clone());
            ctx.set_timer(cq.renew_every, PierTimer::CqRenew { query_id });
        }
        self.proxied.insert(query_id, proxy_state);
        ctx.set_timer(plan.timeout, PierTimer::ProxyDone { query_id });
        self.disseminate(ctx, plan);
        query_id
    }

    fn disseminate(&mut self, ctx: &mut ProgramContext<Self>, plan: QueryPlan) {
        let now = ctx.now();
        match plan.dissemination.clone() {
            Dissemination::Broadcast => {
                let effects = self.overlay.broadcast(QpObject::Plan(plan), now);
                self.drive(ctx, effects);
            }
            Dissemination::ByKey { namespace, key } => {
                let name = ObjectName::new(namespace, key, self.rng.next_u64());
                let lifetime = plan.timeout;
                let effects = self.overlay.send(name, QpObject::Plan(plan), lifetime, now);
                self.drive(ctx, effects);
            }
            Dissemination::ByRange {
                namespace,
                bucket_keys,
            } => {
                // Route one copy of the plan to the partition of every
                // range-index bucket overlapping the predicate (§3.3.3).
                let lifetime = plan.timeout;
                for key in bucket_keys {
                    let name = ObjectName::new(namespace.clone(), key, self.rng.next_u64());
                    let effects =
                        self.overlay
                            .send(name, QpObject::Plan(plan.clone()), lifetime, now);
                    self.drive(ctx, effects);
                }
            }
            Dissemination::Local => {
                self.install_query(ctx, plan);
            }
        }
    }

    /// Feed a streamed tuple to every installed opgraph reading `table`
    /// without retaining it — the access method for transient monitoring
    /// streams (a packet trace is observed once, not stored).  Tuples
    /// arriving while no matching query is installed are simply dropped.
    pub fn ingest(&mut self, ctx: &mut ProgramContext<Self>, table: &str, tuple: Tuple) {
        let effects = self.route_new_tuple(ctx, table, tuple);
        self.drive(ctx, effects);
    }

    // ----- effect / event plumbing ------------------------------------------

    fn drive(&mut self, ctx: &mut ProgramContext<Self>, effects: Vec<OverlayEffect<QpObject>>) {
        let mut work = effects;
        while !work.is_empty() {
            let mut next = Vec::new();
            for effect in work {
                match effect {
                    OverlayEffect::Send { to, msg } => ctx.send(to, PierMsg::Dht(msg)),
                    OverlayEffect::SetTimer { delay, timer } => {
                        ctx.set_timer(delay, PierTimer::Overlay(timer));
                    }
                    OverlayEffect::Event(event) => {
                        next.extend(self.handle_overlay_event(ctx, event));
                    }
                }
            }
            work = next;
        }
    }

    fn handle_overlay_event(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        event: OverlayEvent<QpObject>,
    ) -> Vec<OverlayEffect<QpObject>> {
        match event {
            OverlayEvent::GetResult {
                request_id,
                objects,
                ..
            } => {
                // A Fetch Matches probe came back: join the probe tuple with
                // every fetched inner tuple and forward to the sink.
                if let Some((query_id, graph_idx, probe)) = self.pending_fetches.remove(&request_id)
                {
                    let (output_table, sink_ok) = match self.fetch_spec(query_id, graph_idx) {
                        Some(t) => (t, true),
                        None => (String::new(), false),
                    };
                    if !sink_ok {
                        return Vec::new();
                    }
                    let joined: Vec<Tuple> = objects
                        .iter()
                        .flat_map(|o| o.value.iter_tuples())
                        .map(|inner| probe.join_with(&inner, &output_table))
                        .collect();
                    return self.deliver_sink(ctx, query_id, graph_idx, joined);
                }
                Vec::new()
            }
            OverlayEvent::NewData { object, trace } => {
                // A context on arriving data means the sender's stage was
                // sampled: record the absorption — arrival at (or relay
                // into) the window root — as a `window.combine` span
                // parented to the sender's wire-carried span.
                if let Some(t) = trace {
                    if self.tel.is_enabled() && object.value.tuple_count() > 0 {
                        let now = ctx.now();
                        let span = self.next_span_id(ctx.me());
                        self.tel.record_span(
                            now,
                            now,
                            t.trace_id,
                            span,
                            t.span_id,
                            t.query_id,
                            "window.combine",
                            object.value.tuple_count() as u64,
                            object.value.wire_size() as u64,
                            0,
                        );
                        self.last_combine_span.insert(t.query_id, span);
                    }
                }
                match object.value {
                    QpObject::Plan(plan) => {
                        self.install_query(ctx, plan);
                        Vec::new()
                    }
                    QpObject::Tuple(tuple) => {
                        self.route_new_tuple(ctx, &object.name.namespace, tuple)
                    }
                    QpObject::Batch(batch) => {
                        // A coalesced transfer arrives: feed the columnar batch
                        // to the dataflow batch-at-a-time — the dispatch
                        // (namespace routing, target lookup) happens once per
                        // batch and the operators consume whole chunks.
                        self.route_new_batch(ctx, &object.name.namespace, batch)
                    }
                }
            }
            OverlayEvent::Upcall {
                token,
                object,
                trace,
                ..
            } => {
                // Hierarchical aggregation: intercept partials travelling up
                // the tree, fold them into our own buffered partials, and
                // drop the original message (§3.3.4).  Closed-window partials
                // of continuous queries combine the same way en route to the
                // window root; batched partials absorb as a unit (tuples a
                // merge refuses are malformed and would be discarded at the
                // root anyway, per the best-effort policy).
                let now = ctx.now();
                // Sampled senders get the §3.2.4 upcall offer recorded as a
                // `window.upcall` span; anything this node re-ships (refused
                // partials) parents to it via a fresh child context.
                let upcall_ctx = match trace {
                    Some(t) if self.tel.is_enabled() => {
                        let span = self.next_span_id(ctx.me());
                        self.tel.record_span(
                            now,
                            now,
                            t.trace_id,
                            span,
                            t.span_id,
                            t.query_id,
                            "window.upcall",
                            object.value.tuple_count() as u64,
                            0,
                            0,
                        );
                        self.last_combine_span.insert(t.query_id, span);
                        Some(t.child(span))
                    }
                    _ => None,
                };
                if object.value.tuple_count() > 0 {
                    if let Some(query_id) = self.query_for_partial_namespace(&object.name.namespace)
                    {
                        let mut absorbed = false;
                        for partial in object.value.iter_tuples() {
                            absorbed |= self.absorb_partial(query_id, &partial);
                        }
                        if absorbed {
                            return self.overlay.resume_upcall(token, false, now);
                        }
                    }
                    if let Some(query_id) = self.query_for_window_namespace(&object.name.namespace)
                    {
                        let mut absorbed = false;
                        let mut refused: Vec<Tuple> = Vec::new();
                        for partial in object.value.iter_tuples() {
                            if self.absorb_window_partial(query_id, &partial) {
                                absorbed = true;
                            } else {
                                refused.push(partial);
                            }
                        }
                        if absorbed {
                            // The absorbed share is ours now; anything this
                            // node's state refused (budget shed, evicted
                            // window) must still reach the root — exactly as
                            // an unbatched per-tuple upcall would have
                            // continued routing it.
                            let mut effects = self.overlay.resume_upcall(token, false, now);
                            if !refused.is_empty() {
                                // Arm only when a send follows: `set_trace`
                                // is consumed by the next overlay op and
                                // must not leak onto unrelated traffic.
                                self.overlay.set_trace(upcall_ctx);
                            }
                            effects.extend(self.reship_window_partials(query_id, refused, now));
                            return effects;
                        }
                    }
                    // Share-group window partials combine en route exactly
                    // like per-query ones, but into the group's single
                    // shared store.
                    if self.sharing.is_some() {
                        let namespace = object.name.namespace.clone();
                        let mut group = None;
                        let mut absorbed = false;
                        let mut refused: Vec<Tuple> = Vec::new();
                        for partial in object.value.iter_tuples() {
                            let layer = self.sharing.as_mut().expect("checked above");
                            match layer.absorb_window_partial(&namespace, &partial) {
                                None => break, // not a share-group namespace
                                Some((g, ok)) => {
                                    group = Some(g);
                                    if ok {
                                        absorbed = true;
                                    } else {
                                        refused.push(partial);
                                    }
                                }
                            }
                        }
                        if absorbed {
                            let mut effects = self.overlay.resume_upcall(token, false, now);
                            if let Some(group) = group {
                                if !refused.is_empty() {
                                    self.overlay.set_trace(upcall_ctx);
                                }
                                effects.extend(self.reship_group_partials(group, refused, now));
                            }
                            return effects;
                        }
                    }
                }
                self.overlay.resume_upcall(token, true, now)
            }
            OverlayEvent::Broadcast { payload } => {
                if let QpObject::Plan(plan) = payload {
                    self.install_query(ctx, plan);
                }
                Vec::new()
            }
            OverlayEvent::RenewResult { .. } | OverlayEvent::LookupDone { .. } => Vec::new(),
        }
    }

    fn fetch_spec(&self, query_id: u64, graph_idx: usize) -> Option<String> {
        let q = self.queries.get(&query_id)?;
        let g = q.graphs.get(graph_idx)?;
        g.spec.ops.iter().find_map(|op| match op {
            OperatorSpec::FetchMatches { output_table, .. }
            | OperatorSpec::FetchByTupleId { output_table, .. } => Some(output_table.clone()),
            _ => None,
        })
    }

    /// Re-route window partials this node could not absorb toward the
    /// query's window root (used when a batch was only partially absorbed
    /// at an upcall hop).
    fn reship_window_partials(
        &mut self,
        query_id: u64,
        partials: Vec<Tuple>,
        now: SimTime,
    ) -> Vec<OverlayEffect<QpObject>> {
        if partials.is_empty() {
            return Vec::new();
        }
        let Some(q) = self.queries.get(&query_id) else {
            return Vec::new();
        };
        let window_ns = q.plan.window_namespace();
        let root_key = q.plan.agg_root_key();
        let root_id = routing_id(&window_ns, &root_key);
        let lifetime =
            q.cq.as_ref()
                .map_or(0, |cq| cq.spec.lease)
                .max(self.config.publish_lifetime);
        let shipment = if partials.len() == 1 {
            QpObject::Tuple(partials.into_iter().next().expect("len checked"))
        } else {
            QpObject::Batch(TupleBatch::new(partials))
        };
        let name = ObjectName::new(window_ns, root_key, self.rng.next_u64());
        self.overlay
            .send_routed(root_id, name, shipment, lifetime, now)
    }

    /// Re-route share-group window partials this node could not absorb
    /// toward the group's window root (the shared counterpart of
    /// [`PierNode::reship_window_partials`]).
    fn reship_group_partials(
        &mut self,
        group: u64,
        partials: Vec<Tuple>,
        now: SimTime,
    ) -> Vec<OverlayEffect<QpObject>> {
        if partials.is_empty() {
            return Vec::new();
        }
        let Some(route) = self.sharing.as_ref().and_then(|l| l.group_route(group)) else {
            return Vec::new();
        };
        let root_id = routing_id(&route.namespace, &route.root_key);
        let lifetime = self.config.publish_lifetime;
        let shipment = if partials.len() == 1 {
            QpObject::Tuple(partials.into_iter().next().expect("len checked"))
        } else {
            QpObject::Batch(TupleBatch::new(partials))
        };
        let name = ObjectName::new(route.namespace, route.root_key, self.rng.next_u64());
        self.overlay
            .send_routed(root_id, name, shipment, lifetime, now)
    }

    fn query_for_partial_namespace(&self, namespace: &str) -> Option<u64> {
        self.queries
            .iter()
            .find(|(_, q)| q.plan.partial_namespace() == namespace)
            .map(|(id, _)| *id)
    }

    fn query_for_window_namespace(&self, namespace: &str) -> Option<u64> {
        self.queries
            .iter()
            .find(|(_, q)| q.cq.is_some() && q.plan.window_namespace() == namespace)
            .map(|(id, _)| *id)
    }

    fn absorb_window_partial(&mut self, query_id: u64, partial: &Tuple) -> bool {
        let Some(q) = self.queries.get_mut(&query_id) else {
            return false;
        };
        let Some(cq) = q.cq.as_mut() else {
            return false;
        };
        let Some((wid, key, acc)) = cq.decode_partial(partial) else {
            return false;
        };
        cq.root_store.accept_refinement(wid, &key, acc)
    }

    fn absorb_partial(&mut self, query_id: u64, partial: &Tuple) -> bool {
        let Some(q) = self.queries.get_mut(&query_id) else {
            return false;
        };
        let mut absorbed = false;
        for g in &mut q.graphs {
            if let Some(uplink) = g.uplink.as_mut() {
                absorbed |= uplink.merge_partial(partial);
            }
        }
        absorbed
    }

    fn route_new_tuple(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        namespace: &str,
        tuple: Tuple,
    ) -> Vec<OverlayEffect<QpObject>> {
        let mut effects = Vec::new();
        // Closed-window partials arriving at (or relayed through) this node.
        if let Some(query_id) = self.query_for_window_namespace(namespace) {
            self.absorb_window_partial(query_id, &tuple);
            return effects;
        }
        // Share-group window partials arriving at the group's root (a
        // budget-refused arrival is dropped, exactly as per-query partials
        // are when the root's store refuses them).
        if let Some(layer) = self.sharing.as_mut() {
            if layer.absorb_window_partial(namespace, &tuple).is_some() {
                return effects;
            }
        }
        // Partial aggregates arriving at the aggregation-tree root.
        if let Some(query_id) = self.query_for_partial_namespace(namespace) {
            if let Some(q) = self.queries.get_mut(&query_id) {
                for g in &mut q.graphs {
                    if let Some(root) = g.root_merge.as_mut() {
                        root.merge_partial(&tuple);
                    }
                }
            }
            return effects;
        }
        // Shared ingest: hand the tuple to the sharing layer once; its
        // predicate index fans it out to every member query.  Independent
        // queries over the same namespace still receive it below.
        if let Some(layer) = self.sharing.as_mut() {
            if layer.wants_namespace(namespace) {
                layer.absorb_tuple(namespace, &tuple, ctx.now());
            }
        }
        // Base-table or rehash-namespace tuples feeding installed opgraphs.
        let targets: Vec<(u64, usize)> = self
            .queries
            .iter()
            .flat_map(|(qid, q)| {
                q.graphs
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.spec.source.namespace() == namespace)
                    .map(move |(i, _)| (*qid, i))
            })
            .collect();
        self.ingest_spans(ctx, &targets, 1, tuple.wire_size() as u64);
        for (qid, gidx) in targets {
            effects.extend(self.feed_graph(ctx, qid, gidx, tuple.clone()));
        }
        effects
    }

    /// Record one `ingest` span per *sampled* query fed by an arriving
    /// tuple or batch (rows = tuples routed, bytes = payload wire size).
    /// Target qids are sorted before recording so span ordinals are
    /// insertion-order independent.
    fn ingest_spans(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        targets: &[(u64, usize)],
        rows: u64,
        bytes: u64,
    ) {
        if !self.tel.is_enabled() || targets.is_empty() {
            return;
        }
        let mut qids: Vec<u64> = targets
            .iter()
            .map(|(qid, _)| *qid)
            .filter(|qid| self.queries.get(qid).is_some_and(|q| q.plan.trace))
            .collect();
        qids.sort_unstable();
        qids.dedup();
        let now = ctx.now();
        for qid in qids {
            let trace_id = trace_id_for(qid);
            let span = self.next_span_id(ctx.me());
            self.tel.record_span(
                now, now, trace_id, span, trace_id, qid, "ingest", rows, bytes, 0,
            );
        }
    }

    /// Batch counterpart of [`PierNode::route_new_tuple`]: the namespace
    /// routing and target lookup happen once for the whole batch, and the
    /// opgraphs consume columnar chunks instead of per-tuple pushes.
    fn route_new_batch(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        namespace: &str,
        batch: TupleBatch,
    ) -> Vec<OverlayEffect<QpObject>> {
        // Closed-window partials arriving at (or relayed through) this node:
        // decoding is inherently per-partial (the accumulator is rebuilt
        // from named columns), but the namespace lookup happens once.
        if let Some(query_id) = self.query_for_window_namespace(namespace) {
            for tuple in batch.iter() {
                self.absorb_window_partial(query_id, &tuple);
            }
            return Vec::new();
        }
        // Share-group window partials: the first tuple decides whether the
        // namespace belongs to a share group (namespaces are disjoint).
        if let Some(layer) = self.sharing.as_mut() {
            let mut handled = false;
            for tuple in batch.iter() {
                if layer.absorb_window_partial(namespace, &tuple).is_none() {
                    break;
                }
                handled = true;
            }
            if handled {
                return Vec::new();
            }
        }
        // Partial aggregates arriving at the aggregation-tree root.
        if let Some(query_id) = self.query_for_partial_namespace(namespace) {
            if let Some(q) = self.queries.get_mut(&query_id) {
                for tuple in batch.iter() {
                    for g in &mut q.graphs {
                        if let Some(root) = g.root_merge.as_mut() {
                            root.merge_partial(&tuple);
                        }
                    }
                }
            }
            return Vec::new();
        }
        // Shared ingest: each chunk is handed to the sharing layer once —
        // the dispatch cost of N member queries is one predicate-index scan.
        if let Some(layer) = self.sharing.as_mut() {
            if layer.wants_namespace(namespace) {
                let now = ctx.now();
                for chunk in batch.chunks() {
                    layer.absorb_chunk(namespace, chunk, now);
                }
            }
        }
        // Base-table or rehash-namespace batches feeding installed opgraphs.
        let targets: Vec<(u64, usize)> = self
            .queries
            .iter()
            .flat_map(|(qid, q)| {
                q.graphs
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.spec.source.namespace() == namespace)
                    .map(move |(i, _)| (*qid, i))
            })
            .collect();
        self.ingest_spans(ctx, &targets, batch.len() as u64, batch.wire_size() as u64);
        let mut effects = Vec::new();
        for (qid, gidx) in targets {
            effects.extend(self.feed_graph_batch(ctx, qid, gidx, &batch));
        }
        effects
    }

    // ----- query installation and execution ---------------------------------

    fn install_query(&mut self, ctx: &mut ProgramContext<Self>, plan: QueryPlan) {
        let query_id = plan.query_id;
        if let Some(q) = self.queries.get_mut(&query_id) {
            // Re-dissemination of a standing query: renew the lease.
            if let Some(cq) = q.cq.as_mut() {
                cq.lease.renew(ctx.now());
                self.tel.inc("cq.lease_renewals");
                self.tel
                    .event("lease_renew", || vec![("query_id", query_id.to_string())]);
            }
            return;
        }
        // Multi-query sharing: offer the plan to the layer first.  A plan
        // that normalizes into a share group installs as a *member* — the
        // executor arms its lifecycle timers but builds no dataflow; the
        // group's single tick chain starts with its first member.  Plans
        // marked exclusive skip the offer: shared state is not persisted,
        // so a durable query keeps its own (rehydratable) stores.
        let exclusive = plan.cq.as_ref().is_some_and(|cq| cq.exclusive);
        if let Some(layer) = self.sharing.as_mut().filter(|_| !exclusive) {
            if layer.renew(query_id, ctx.now()) {
                return; // re-dissemination of a shared standing query
            }
            if let InstallOutcome::Member {
                group,
                new_group,
                epoch,
                slide,
                lease,
            } = layer.try_install(&plan, ctx.now())
            {
                self.tel.event("share_join", || {
                    vec![
                        ("query_id", query_id.to_string()),
                        ("group", format!("{group:016x}")),
                        ("new_group", new_group.to_string()),
                    ]
                });
                ctx.set_timer(plan.timeout, PierTimer::QueryEnd { query_id });
                ctx.set_timer(lease, PierTimer::CqLease { query_id });
                if new_group {
                    ctx.set_timer(slide, PierTimer::ShareTick { group, epoch });
                }
                return;
            }
        }
        let agg_root_id = routing_id(&plan.partial_namespace(), &plan.agg_root_key());
        let mut cq = Self::build_cq_state(&plan, ctx.now());
        if let Some(cq) = cq.as_mut() {
            // Warm restart: rehydrate retained panes from durable segments
            // (a no-op on cold installs or without a durable store).
            self.rehydrate_cq(query_id, cq);
        }
        let mut graphs = Vec::new();
        let mut has_agg = false;
        for spec in &plan.opgraphs {
            let mut pipeline =
                Pipeline::new(spec.ops.iter().filter_map(OperatorSpec::build).collect());
            pipeline.set_telemetry(&self.tel);
            let join = spec.join.as_ref().map(|j| {
                SymmetricHashJoin::new(
                    j.left_key.clone(),
                    j.right_key.clone(),
                    j.output_table.clone(),
                )
            });
            let (uplink, root_merge) = match &spec.sink {
                SinkSpec::HierarchicalAgg {
                    group_cols, aggs, ..
                } => {
                    has_agg = true;
                    let table = format!("q{query_id}.agg");
                    (
                        Some(GroupBy::new(
                            group_cols.clone(),
                            aggs.clone(),
                            table.clone(),
                        )),
                        Some(GroupBy::new(group_cols.clone(), aggs.clone(), table)),
                    )
                }
                _ => (None, None),
            };
            graphs.push(GraphState {
                spec: spec.clone(),
                pipeline,
                join,
                uplink,
                root_merge,
            });
        }
        let timeout = plan.timeout;
        let hold = plan
            .opgraphs
            .iter()
            .find_map(|g| match &g.sink {
                SinkSpec::HierarchicalAgg { hold, .. } => Some(*hold),
                _ => None,
            })
            .unwrap_or(2_000_000);
        let has_cq = cq.is_some();
        let cq_slide = cq.as_ref().map_or(0, |c| c.window.slide);
        let cq_lease = cq.as_ref().map_or(0, |c| c.spec.lease);
        self.tel.inc("query.installs");
        self.tel.event("query_install", || {
            vec![
                ("query_id", query_id.to_string()),
                ("graphs", graphs.len().to_string()),
                ("continuous", has_cq.to_string()),
            ]
        });
        if plan.trace && self.tel.is_enabled() {
            let trace_id = trace_id_for(query_id);
            let now = ctx.now();
            let span = self.next_span_id(ctx.me());
            self.tel.record_span(
                now,
                now,
                trace_id,
                span,
                trace_id,
                query_id,
                "query.install",
                graphs.len() as u64,
                0,
                0,
            );
        }
        self.queries.insert(
            query_id,
            QueryState {
                plan,
                graphs,
                agg_root_id,
                cq,
                ingest_seen: 0,
            },
        );
        ctx.set_timer(timeout, PierTimer::QueryEnd { query_id });
        if has_agg {
            ctx.set_timer(hold, PierTimer::AggFlush { query_id });
            ctx.set_timer(
                timeout.saturating_sub(hold),
                PierTimer::AggFinal { query_id },
            );
        }
        if has_cq {
            ctx.set_timer(cq_slide, PierTimer::WindowTick { query_id });
            ctx.set_timer(cq_lease, PierTimer::CqLease { query_id });
        }
        // Feed the opgraphs their initial data: node-local rows plus the
        // DHT-partitioned rows this node is responsible for.  The snapshot of
        // every source is taken *before* any graph runs, so tuples that one
        // opgraph republishes during installation (e.g. a rehash into the
        // query's rendezvous namespace) are not double-counted by another
        // opgraph that reads that namespace — those arrive via `newData`.
        let graph_count = self.queries[&query_id].graphs.len();
        let mut initial_rows: Vec<Vec<Tuple>> = Vec::with_capacity(graph_count);
        for gidx in 0..graph_count {
            let namespace = self.queries[&query_id].graphs[gidx]
                .spec
                .source
                .namespace()
                .to_string();
            let mut rows: Vec<Tuple> = self
                .local_tables
                .get(&namespace)
                .cloned()
                .unwrap_or_default();
            rows.extend(
                self.overlay
                    .local_scan(&namespace, ctx.now())
                    .into_iter()
                    .flat_map(|o| o.value.into_tuples()),
            );
            initial_rows.push(rows);
        }
        for (gidx, rows) in initial_rows.into_iter().enumerate() {
            for row in rows {
                let effects = self.feed_graph(ctx, query_id, gidx, row);
                self.drive(ctx, effects);
            }
        }
    }

    /// Uninstall a query and release query-scoped interned schemas
    /// (`q{id}.agg`, `q{id}.wp`, `q{id}.win`, …) from the process-wide
    /// [`SchemaRegistry`].  The sweep covers *every* no-longer-referenced
    /// query-scoped shape, not just this query's: a schema still pinned by
    /// in-flight tuples when its own query tore down gets collected by a
    /// later teardown's sweep, so the registry stays bounded by the live
    /// working set instead of growing with every query ever installed.
    fn uninstall_query(&mut self, query_id: u64) {
        self.last_combine_span.remove(&query_id);
        if let Some(q) = self.queries.remove(&query_id) {
            self.tel.inc("query.teardowns");
            self.tel.event("query_teardown", || {
                vec![("query_id", query_id.to_string())]
            });
            // A deliberate teardown means the query is over everywhere it
            // matters: its durable segments will never be rehydrated, so
            // drop them rather than leak "disk".
            if q.cq.is_some() {
                if let Some(durable) = self.config.durable.as_ref() {
                    let (local_key, root_key) = Self::segment_keys(query_id);
                    durable.remove(&local_key);
                    durable.remove(&root_key);
                }
            }
            SchemaRegistry::global().sweep_matching(is_query_scoped_table);
            return;
        }
        // Share-group members tear down through the layer: the group's
        // refcount drops, and retiring its last member sweeps both the
        // group's interned shapes (`g{fp:016x}.…`) and any unreferenced
        // query-scoped ones (the member's result schema).
        if let Some(layer) = self.sharing.as_mut() {
            let out = layer.uninstall(query_id);
            if out.was_member {
                self.tel.event("share_leave", || {
                    let retired = out
                        .retired_group
                        .map(|g| format!("{g:016x}"))
                        .unwrap_or_default();
                    vec![
                        ("query_id", query_id.to_string()),
                        ("retired_group", retired),
                    ]
                });
                SchemaRegistry::global()
                    .sweep_matching(|t| is_query_scoped_table(t) || is_share_scoped_table(t));
            }
        }
    }

    fn feed_graph(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        query_id: u64,
        graph_idx: usize,
        tuple: Tuple,
    ) -> Vec<OverlayEffect<QpObject>> {
        let outputs = {
            let Some(q) = self.queries.get_mut(&query_id) else {
                return Vec::new();
            };
            // Shed-to-sampling: a degraded plan keeps one in `sample_every`
            // *source* rows (query-scoped namespaces — rehashed join sides,
            // shipped partials — are derived data and pass untouched).  The
            // counter is per query per node, so equal-seed runs thin
            // identically.
            if q.plan.sample_every > 1 && !is_query_scoped_table(tuple.table()) {
                q.ingest_seen += 1;
                if (q.ingest_seen - 1) % u64::from(q.plan.sample_every) != 0 {
                    return Vec::new();
                }
            }
            let Some(g) = q.graphs.get_mut(graph_idx) else {
                return Vec::new();
            };
            // Two-input join fed from the rehash namespace: the tuple's table
            // name tells us which side it belongs to.
            let staged: Vec<Tuple> = match (&mut g.join, &g.spec.join) {
                (Some(join), Some(join_spec)) => {
                    if tuple.table() == join_spec.left_table {
                        join.push_side(JoinSide::Left, tuple)
                    } else if tuple.table() == join_spec.right_table {
                        join.push_side(JoinSide::Right, tuple)
                    } else {
                        Vec::new() // unknown table: discard (best effort)
                    }
                }
                _ => vec![tuple],
            };
            let mut outputs = Vec::new();
            for t in staged {
                outputs.extend(g.pipeline.push(t));
            }
            // Hierarchical aggregation absorbs outputs into the uplink buffer.
            if let Some(uplink) = g.uplink.as_mut() {
                for t in outputs.drain(..) {
                    uplink.push(t);
                }
            }
            // Windowed continuous aggregation folds outputs into the window
            // store; per-window results travel at window ticks, not now.
            if let Some(cq) = q.cq.as_mut() {
                if cq.graph_idx == graph_idx {
                    let now = ctx.now();
                    for t in outputs.drain(..) {
                        Self::cq_absorb(cq, &t, now);
                    }
                }
            }
            outputs
        };
        if outputs.is_empty() {
            return Vec::new();
        }
        self.deliver_sink(ctx, query_id, graph_idx, outputs)
    }

    /// Batch counterpart of [`PierNode::feed_graph`]: joins consume whole
    /// columnar chunks ([`SymmetricHashJoin::push_chunk`]), plain pipelines
    /// consume the batch **chunk-to-chunk** via `Pipeline::push_batch`
    /// (every stage hands the next a re-chunked survivor batch), uplink
    /// aggregation absorbs the survivors chunk-wise, and a windowed graph
    /// with a pass-through pipeline absorbs chunks straight into the window
    /// store ([`PierNode::cq_absorb_chunk`]) — no per-tuple dispatch on any
    /// of these paths; rows materialise only at the sink boundary.
    fn feed_graph_batch(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        query_id: u64,
        graph_idx: usize,
        batch: &TupleBatch,
    ) -> Vec<OverlayEffect<QpObject>> {
        let now = ctx.now();
        // A shed plan samples per row; the chunk fast path would keep or
        // drop whole chunks.  Degrade to per-tuple feeding — shed mode is
        // already the degraded mode, fidelity of the thinning matters more
        // than batch throughput.
        if self
            .queries
            .get(&query_id)
            .is_some_and(|q| q.plan.sample_every > 1)
        {
            let mut effects = Vec::new();
            for tuple in batch.iter() {
                effects.extend(self.feed_graph(ctx, query_id, graph_idx, tuple));
            }
            return effects;
        }
        let outputs = {
            let Some(q) = self.queries.get_mut(&query_id) else {
                return Vec::new();
            };
            let cq_direct = q.cq.as_ref().is_some_and(|cq| cq.graph_idx == graph_idx)
                && q.graphs
                    .get(graph_idx)
                    .is_some_and(|g| g.join.is_none() && g.pipeline.is_empty());
            if cq_direct {
                let cq = q.cq.as_mut().expect("checked above");
                for chunk in batch.chunks() {
                    Self::cq_absorb_chunk(cq, chunk, now);
                }
                TupleBatch::default()
            } else {
                let Some(g) = q.graphs.get_mut(graph_idx) else {
                    return Vec::new();
                };
                let mut outputs = match (&mut g.join, &g.spec.join) {
                    (Some(join), Some(join_spec)) => {
                        // Two-input join fed from the rehash namespace: each
                        // chunk's table name decides the side it belongs to.
                        // The join emits whole typed chunks (gathered from
                        // both sides' stored buffers), which share one output
                        // schema — so the staged batch flows into the
                        // pipeline's chunk-to-chunk traversal without ever
                        // materialising per-row tuples.
                        let mut staged = TupleBatch::default();
                        for chunk in batch.chunks() {
                            let table = chunk.schema().table();
                            if table == join_spec.left_table {
                                staged.append(join.push_chunk_batch(JoinSide::Left, chunk));
                            } else if table == join_spec.right_table {
                                staged.append(join.push_chunk_batch(JoinSide::Right, chunk));
                            } // unknown table: discard (best effort)
                        }
                        if staged.is_empty() {
                            TupleBatch::default()
                        } else {
                            g.pipeline.push_batch(&staged)
                        }
                    }
                    _ => g.pipeline.push_batch(batch),
                };
                // Hierarchical aggregation absorbs the survivors chunk-wise.
                if let Some(uplink) = g.uplink.as_mut() {
                    uplink.push_batch(&outputs);
                    outputs = TupleBatch::default();
                }
                // A windowed graph folds the survivors into the window store
                // chunk-wise.
                if let Some(cq) = q.cq.as_mut() {
                    if cq.graph_idx == graph_idx {
                        for chunk in outputs.chunks() {
                            Self::cq_absorb_chunk(cq, chunk, now);
                        }
                        outputs = TupleBatch::default();
                    }
                }
                outputs
            }
        };
        if outputs.is_empty() {
            return Vec::new();
        }
        self.deliver_sink(ctx, query_id, graph_idx, outputs.into_tuples())
    }

    fn deliver_sink(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        query_id: u64,
        graph_idx: usize,
        mut tuples: Vec<Tuple>,
    ) -> Vec<OverlayEffect<QpObject>> {
        if tuples.is_empty() {
            return Vec::new();
        }
        let (sink, proxy, fetch, lifetime) = {
            let Some(q) = self.queries.get(&query_id) else {
                return Vec::new();
            };
            let Some(g) = q.graphs.get(graph_idx) else {
                return Vec::new();
            };
            // (namespace, probe column, probe column already holds the key
            // string, output table of the join results)
            let fetch = g.spec.ops.iter().find_map(|op| match op {
                OperatorSpec::FetchMatches {
                    inner_namespace,
                    probe_col,
                    output_table,
                } => Some((
                    inner_namespace.clone(),
                    probe_col.clone(),
                    false,
                    output_table.clone(),
                )),
                OperatorSpec::FetchByTupleId {
                    inner_namespace,
                    id_col,
                    output_table,
                } => Some((
                    inner_namespace.clone(),
                    id_col.clone(),
                    true,
                    output_table.clone(),
                )),
                _ => None,
            });
            (
                g.spec.sink.clone(),
                q.plan.proxy,
                fetch,
                self.config.publish_lifetime,
            )
        };
        let mut effects = Vec::new();
        // Fetch Matches: pipeline outputs are probe tuples — issue an
        // asynchronous DHT get per probe and join when results come back.
        // Tuples already carrying the join's output table *are* the joined
        // results returning from a completed fetch; those continue to the
        // opgraph's real sink below.
        if let Some((inner_namespace, probe_col, probe_is_key, fetch_output)) = fetch {
            let now = ctx.now();
            let mut completed = Vec::new();
            for probe in tuples {
                if probe.table() == fetch_output {
                    completed.push(probe);
                    continue;
                }
                let Some(key) = probe.get(&probe_col).map(|v| {
                    if probe_is_key {
                        // The column already carries the inner relation's
                        // partition-key string (a secondary index tupleID).
                        v.as_str().map_or_else(|| v.key_string(), str::to_string)
                    } else {
                        v.key_string()
                    }
                }) else {
                    continue;
                };
                let (request_id, get_effects) = self.overlay.get(&inner_namespace, &key, now);
                self.pending_fetches
                    .insert(request_id, (query_id, graph_idx, probe));
                effects.extend(get_effects);
            }
            if completed.is_empty() {
                return effects;
            }
            tuples = completed;
        }
        match sink {
            SinkSpec::ToProxy => {
                self.send_results(ctx, proxy, query_id, tuples);
            }
            SinkSpec::Rehash {
                namespace,
                key_cols,
            } => {
                let now = ctx.now();
                if self.config.batching {
                    // Coalesce: buffer per (namespace, partition key); one
                    // overlay put per key per flush, triggered by the size
                    // threshold here or by the periodic flush tick.
                    let buf = self.rehash_buf.entry(namespace.clone()).or_default();
                    for t in tuples {
                        let Some(key) = t.partition_key(&key_cols) else {
                            continue;
                        };
                        buf.by_key.entry(key).or_default().push(t);
                        buf.tuples += 1;
                    }
                    if buf.tuples >= self.config.batch_max_tuples {
                        effects.extend(self.flush_rehash(&namespace, now));
                    } else if !self.batch_timer_armed {
                        self.batch_timer_armed = true;
                        ctx.set_timer(self.config.batch_flush_interval, PierTimer::BatchFlush);
                    }
                } else {
                    for t in tuples {
                        let Some(key) = t.partition_key(&key_cols) else {
                            continue;
                        };
                        let name = ObjectName::new(namespace.clone(), key, self.rng.next_u64());
                        effects.extend(self.overlay.put(name, QpObject::Tuple(t), lifetime, now));
                    }
                }
            }
            SinkSpec::HierarchicalAgg { .. } => {
                // Handled in feed_graph (outputs are absorbed into uplink);
                // reaching here means a fetch-join result fed an agg graph,
                // which we also absorb.
                if let Some(q) = self.queries.get_mut(&query_id) {
                    if let Some(g) = q.graphs.get_mut(graph_idx) {
                        if let Some(uplink) = g.uplink.as_mut() {
                            for t in tuples {
                                uplink.push(t);
                            }
                        }
                    }
                }
            }
            SinkSpec::WindowedAgg { .. } => {
                // Like hierarchical aggregation: a fetch-join result feeding
                // a windowed graph is folded into the window store.
                let now = ctx.now();
                if let Some(q) = self.queries.get_mut(&query_id) {
                    if let Some(cq) = q.cq.as_mut() {
                        for t in tuples {
                            Self::cq_absorb(cq, &t, now);
                        }
                    }
                }
            }
        }
        effects
    }

    /// Ship one namespace's buffered rehash batches: one `put` per distinct
    /// partition key, each carrying a [`TupleBatch`] (or a bare tuple when
    /// only one accumulated), handed to the overlay's batched put so
    /// same-owner keys share a single transfer when local routing state
    /// identifies the owner.
    fn flush_rehash(&mut self, namespace: &str, now: SimTime) -> Vec<OverlayEffect<QpObject>> {
        let Some(buf) = self.rehash_buf.remove(namespace) else {
            return Vec::new();
        };
        let lifetime = self.config.publish_lifetime;
        let mut entries = Vec::with_capacity(buf.by_key.len());
        // Key order feeds both the rng stream (name suffixes) and the
        // message order, so it must not depend on hash seeding.
        let mut by_key: Vec<(String, Vec<Tuple>)> = buf.by_key.into_iter().collect();
        by_key.sort_by(|a, b| a.0.cmp(&b.0));
        for (key, mut tuples) in by_key {
            let name = ObjectName::new(namespace.to_string(), key, self.rng.next_u64());
            let value = if tuples.len() == 1 {
                QpObject::Tuple(tuples.pop().expect("len checked"))
            } else {
                QpObject::Batch(TupleBatch::new(tuples))
            };
            entries.push((name, value, lifetime));
        }
        self.overlay.put_batch(entries, now)
    }

    /// Flush every buffered rehash namespace (the periodic tick).
    fn flush_all_rehash(&mut self, now: SimTime) -> Vec<OverlayEffect<QpObject>> {
        let mut namespaces: Vec<String> = self.rehash_buf.keys().cloned().collect();
        namespaces.sort_unstable();
        let mut effects = Vec::new();
        for ns in namespaces {
            effects.extend(self.flush_rehash(&ns, now));
        }
        effects
    }

    fn send_results(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        proxy: NodeAddr,
        query_id: u64,
        tuples: Vec<Tuple>,
    ) {
        if tuples.is_empty() {
            return;
        }
        if proxy == ctx.me() {
            self.proxy_receive(ctx, query_id, tuples);
        } else {
            ctx.send(proxy, PierMsg::Results { query_id, tuples });
        }
    }

    fn proxy_receive(&mut self, ctx: &mut ProgramContext<Self>, query_id: u64, tuples: Vec<Tuple>) {
        let state = self.proxied.entry(query_id).or_default();
        if state.done {
            return;
        }
        state.results += tuples.len() as u64;
        for tuple in tuples {
            ctx.output(PierOut::Result { query_id, tuple });
        }
    }

    fn agg_flush(&mut self, ctx: &mut ProgramContext<Self>, query_id: u64, final_flush: bool) {
        let Some(q) = self.queries.get(&query_id) else {
            return;
        };
        let agg_root_id = q.agg_root_id;
        let partial_namespace = q.plan.partial_namespace();
        let agg_root_key = q.plan.agg_root_key();
        let proxy = q.plan.proxy;
        let is_root = self.overlay.router().is_responsible(agg_root_id);
        let graph_count = q.graphs.len();
        let lifetime = self.config.publish_lifetime;

        let mut to_send: Vec<Tuple> = Vec::new();
        let mut final_results: Vec<Tuple> = Vec::new();
        {
            let q = self.queries.get_mut(&query_id).expect("query present");
            for g in &mut q.graphs {
                let Some(uplink) = g.uplink.as_mut() else {
                    continue;
                };
                let partials = uplink.flush();
                if is_root {
                    if let Some(root) = g.root_merge.as_mut() {
                        for p in &partials {
                            root.merge_partial(p);
                        }
                    }
                } else {
                    to_send.extend(partials);
                }
                if final_flush && is_root {
                    if let Some(root) = g.root_merge.as_mut() {
                        let merged = root.flush();
                        let final_ops = match &g.spec.sink {
                            SinkSpec::HierarchicalAgg { final_ops, .. } => final_ops.clone(),
                            _ => Vec::new(),
                        };
                        let mut finisher = Pipeline::new(
                            final_ops.iter().filter_map(OperatorSpec::build).collect(),
                        );
                        let mut out = Vec::new();
                        for t in merged {
                            out.extend(finisher.push(t));
                        }
                        out.extend(finisher.flush());
                        final_results.extend(out);
                    }
                }
            }
        }
        // Send buffered partials one hop up the aggregation tree (or directly
        // to the root when the plan asked for flat aggregation).
        let flat = {
            let q = self.queries.get(&query_id).expect("query present");
            q.graphs
                .iter()
                .any(|g| matches!(g.spec.sink, SinkSpec::HierarchicalAgg { flat: true, .. }))
        };
        let now = ctx.now();
        let mut effects = Vec::new();
        // All partials of one flush share the aggregation-root destination,
        // so batching collapses them into a single transfer per hop.
        let shipments: Vec<QpObject> = if self.config.batching && to_send.len() > 1 {
            vec![QpObject::Batch(TupleBatch::new(to_send))]
        } else {
            to_send.into_iter().map(QpObject::Tuple).collect()
        };
        for shipment in shipments {
            let name = ObjectName::new(
                partial_namespace.clone(),
                agg_root_key.clone(),
                self.rng.next_u64(),
            );
            if flat {
                effects.extend(self.overlay.put(name, shipment, lifetime, now));
            } else {
                effects.extend(self.overlay.send_routed(
                    agg_root_id,
                    name,
                    shipment,
                    lifetime,
                    now,
                ));
            }
        }
        self.drive(ctx, effects);
        if !final_results.is_empty() {
            self.send_results(ctx, proxy, query_id, final_results);
        }
        // Re-arm the periodic flush while the query is still installed.
        if !final_flush && graph_count > 0 {
            if let Some(q) = self.queries.get(&query_id) {
                let hold = q
                    .plan
                    .opgraphs
                    .iter()
                    .find_map(|g| match &g.sink {
                        SinkSpec::HierarchicalAgg { hold, .. } => Some(*hold),
                        _ => None,
                    })
                    .unwrap_or(2_000_000);
                ctx.set_timer(hold, PierTimer::AggFlush { query_id });
            }
        }
    }
}

/// The positional layout of a closed-window partial within one interned
/// schema: `_w`, the group columns, and one [`PartialDecoder`] per
/// aggregate.  Compiled once per schema (normally just the query's interned
/// `q{id}.wp` shape) and reused for every relayed partial.
#[derive(Debug)]
struct CompiledPartialLayout {
    w: usize,
    groups: Vec<usize>,
    aggs: Vec<PartialDecoder>,
}

/// Single-entry per-schema cache for [`CompiledPartialLayout`], keyed by
/// schema pointer identity (sound because schemas are interned).  `compiled`
/// is `None` when the schema is malformed for this query — every partial of
/// that shape is then discarded without re-resolving names.
#[derive(Debug)]
struct PartialDecodeCache {
    schema: Arc<Schema>,
    compiled: Option<CompiledPartialLayout>,
}

impl CqState {
    /// Decode a closed-window partial tuple into its window id, group key
    /// and mergeable accumulator.  `None` for malformed tuples (best-effort
    /// policy, as everywhere).  The `_w`/group/aggregate columns resolve to
    /// positional indices **once per schema** — mirroring what
    /// `cq_absorb_chunk` does for data chunks — so the per-partial work on
    /// the relay path is index access only.
    fn decode_partial(&mut self, tuple: &Tuple) -> Option<(WindowId, String, GroupAgg)> {
        let schema = tuple.schema();
        let hit = self
            .partial_decode
            .as_ref()
            .is_some_and(|c| Arc::ptr_eq(&c.schema, schema));
        if !hit {
            let compiled = (|| {
                let w = schema.position("_w")?;
                let groups: Vec<usize> = self
                    .group_cols
                    .iter()
                    .map(|c| schema.position(c))
                    .collect::<Option<_>>()?;
                let aggs: Vec<PartialDecoder> = self
                    .aggs
                    .iter()
                    .map(|a| PartialDecoder::compile(a, schema))
                    .collect::<Option<_>>()?;
                Some(CompiledPartialLayout { w, groups, aggs })
            })();
            self.partial_decode = Some(PartialDecodeCache {
                schema: Arc::clone(schema),
                compiled,
            });
        }
        let layout = self
            .partial_decode
            .as_ref()
            .expect("cache populated above")
            .compiled
            .as_ref()?;
        let values = tuple.values();
        let wid = values[layout.w].as_i64()?;
        let vals: Vec<Value> = layout.groups.iter().map(|&i| values[i].clone()).collect();
        let key = tuple.key_at(&layout.groups);
        let states: Option<Vec<AggState>> = layout
            .aggs
            .iter()
            .zip(&self.aggs)
            .map(|(decoder, agg)| decoder.decode(agg, values))
            .collect();
        Some((
            wid.max(0) as u64,
            key,
            GroupAgg {
                vals,
                states: states?,
            },
        ))
    }
}

/// Diagnostics of a continuous query installed at a node (tests and the
/// bench harness assert bounded state through this).
#[derive(Debug, Clone, Copy)]
pub struct CqDiagnostics {
    /// Activity counters of the node-local window store.
    pub local: WindowStats,
    /// Activity counters of the relay/root window store.
    pub root: WindowStats,
    /// Open windows across both stores.
    pub open_windows: usize,
    /// Groups held across both stores (the node's CQ state footprint).
    pub total_groups: usize,
    /// Windows the root-side delta tracker currently remembers.
    pub tracked_emissions: usize,
    /// Per-window emissions this node sent to the proxy as root.
    pub windows_emitted: u64,
    /// Lease renewals observed since installation.
    pub lease_renewals: u32,
    /// Windows rehydrated from durable segments at installation (0 on a
    /// cold install): nonzero means this node restarted warm.
    pub rehydrated_windows: u64,
}

impl PierNode {
    fn build_cq_state(plan: &QueryPlan, now: SimTime) -> Option<CqState> {
        let (graph_idx, sink) = plan.windowed_sink()?;
        let SinkSpec::WindowedAgg {
            window,
            group_cols,
            aggs,
            time_col,
            dedup_cols,
            delta,
            final_ops,
        } = sink
        else {
            return None;
        };
        let spec = plan.cq.unwrap_or_default();
        // Both shipped shapes are fixed by the sink spec, so their schemas
        // intern once at installation rather than once per emitted tuple.
        let partial_schema = {
            let mut columns = vec!["_w".to_string()];
            columns.extend(group_cols.iter().cloned());
            for agg in aggs {
                let col = agg.output_column();
                if matches!(agg, AggFunc::Avg(_)) {
                    columns.push(col.clone());
                    columns.push(format!("{col}_sum"));
                    columns.push(format!("{col}_count"));
                } else {
                    columns.push(col);
                }
            }
            SchemaRegistry::global().intern_owned(format!("q{}.wp", plan.query_id), columns)
        };
        let result_schema = {
            let mut columns = vec!["window_start".to_string(), "window_end".to_string()];
            columns.extend(group_cols.iter().cloned());
            columns.extend(aggs.iter().map(AggFunc::output_column));
            SchemaRegistry::global().intern_owned(format!("q{}.win", plan.query_id), columns)
        };
        Some(CqState {
            spec,
            window: *window,
            group_cols: group_cols.clone(),
            aggs: aggs.clone(),
            final_ops: final_ops.clone(),
            group_resolver: ColumnResolver::new(group_cols.clone()),
            agg_inputs: aggs
                .iter()
                .map(|a| a.input_column().map(ColumnRef::new))
                .collect(),
            time_ref: time_col.clone().map(ColumnRef::new),
            dedup_refs: dedup_cols.iter().cloned().map(ColumnRef::new).collect(),
            partial_schema,
            partial_decode: None,
            result_schema,
            graph_idx,
            store: WindowStore::new(*window, spec.budget),
            // The root store closes one slide later so partials relayed
            // from other nodes have time to arrive and combine.
            root_store: WindowStore::new(
                window.with_grace(window.grace + window.slide),
                spec.budget,
            ),
            tracker: DeltaTracker::new(*delta),
            lease: Lease::granted(now, spec.lease),
            windows_emitted: 0,
            tel_shed: 0,
            tel_evicted: 0,
            rehydrated_windows: 0,
        })
    }

    /// A per-store segment log larger than this is compacted (rewritten as
    /// one fresh snapshot) on the next persist.
    const SEGMENT_COMPACT_BYTES: usize = 1 << 20;

    /// Durable-store keys of one query's two window stores.
    fn segment_keys(query_id: u64) -> (String, String) {
        (format!("q{query_id}.local"), format!("q{query_id}.root"))
    }

    /// Rehydrate a freshly built [`CqState`] from durable window segments,
    /// if the node has a [`DurableStore`] holding any.  Called on the
    /// install path *before* the state is inserted, so a restarted node
    /// serves warm windows from its first tick: re-dissemination re-installs
    /// the query and the retained panes come back from the segment log
    /// instead of being recomputed.
    fn rehydrate_cq(&self, query_id: u64, cq: &mut CqState) {
        let Some(durable) = self.config.durable.as_ref() else {
            return;
        };
        let (local_key, root_key) = Self::segment_keys(query_id);
        let mut total = RehydrateReport::default();
        for (key, store) in [(local_key, &mut cq.store), (root_key, &mut cq.root_store)] {
            let Some(log) = durable.get(&key) else {
                continue;
            };
            let report = store.rehydrate_from(&log);
            total.windows += report.windows;
            total.groups += report.groups;
            total.tuples += report.tuples;
            total.records += report.records;
            total.skipped += report.skipped;
            total.torn_tail |= report.torn_tail;
        }
        if total.records == 0 && !total.torn_tail {
            return; // nothing durable for this query: a genuinely cold start
        }
        cq.rehydrated_windows = total.windows as u64;
        self.tel.add("cq.rehydrated_windows", total.windows as u64);
        self.tel.event("window.rehydrate", || {
            vec![
                ("query_id", query_id.to_string()),
                ("windows", total.windows.to_string()),
                ("groups", total.groups.to_string()),
                ("tuples", total.tuples.to_string()),
                ("skipped", total.skipped.to_string()),
                ("torn_tail", total.torn_tail.to_string()),
            ]
        });
    }

    /// Snapshot a continuous query's window state into the durable store
    /// (both the local and the relay/root [`WindowStore`]).  Appends one
    /// snapshot per tick; once a log outgrows
    /// [`PierNode::SEGMENT_COMPACT_BYTES`] it is rewritten from scratch —
    /// rehydration only reads the *latest* snapshot of each window, so
    /// compaction loses nothing.
    fn persist_cq(durable: &DurableStore, query_id: u64, cq: &CqState) {
        let (local_key, root_key) = Self::segment_keys(query_id);
        for (key, store) in [(local_key, &cq.store), (root_key, &cq.root_store)] {
            durable.with_log(&key, |log| {
                if log.len() > Self::SEGMENT_COMPACT_BYTES {
                    *log = SegmentLog::new();
                }
                store.write_segments(log);
            });
        }
    }

    /// Fold one dataflow output into the query's window store.  Columns are
    /// resolved to schema indices once per input schema, not per tuple.
    fn cq_absorb(cq: &mut CqState, tuple: &Tuple, now: SimTime) {
        let event_time = cq
            .time_ref
            .as_mut()
            .and_then(|c| c.get(tuple))
            .and_then(Value::as_i64)
            .map_or(now, |v| v.max(0) as u64);
        let Some(indices) = cq.group_resolver.indices(tuple) else {
            return; // malformed tuple: discard
        };
        let key = tuple.key_at(indices);
        let vals: Vec<Value> = indices.iter().map(|&i| tuple.values()[i].clone()).collect();
        let dedup = if cq.dedup_refs.is_empty() {
            None
        } else {
            // A tuple missing a dedup column is treated as unique.
            let mut out = String::with_capacity(12 * cq.dedup_refs.len());
            for (i, col) in cq.dedup_refs.iter_mut().enumerate() {
                if i > 0 {
                    out.push('|');
                }
                match col.get(tuple) {
                    Some(v) => v.write_key(&mut out),
                    None => out.push('∅'),
                }
            }
            Some(out)
        };
        let agg_values: Vec<Option<&Value>> = cq
            .agg_inputs
            .iter_mut()
            .map(|input| input.as_mut().and_then(|c| c.get(tuple)))
            .collect();
        let aggs = &cq.aggs;
        cq.store.push(
            event_time,
            &key,
            dedup.as_deref(),
            || GroupAgg {
                vals: vals.clone(),
                states: aggs.iter().map(AggFunc::init).collect(),
            },
            |acc| {
                for ((agg, value), state) in aggs.iter().zip(&agg_values).zip(acc.states.iter_mut())
                {
                    state.update_with(agg, *value);
                }
            },
        );
    }

    /// Chunk-at-a-time counterpart of [`PierNode::cq_absorb`] — the batch
    /// path of the CQ window absorb loop.  The event-time, group, dedup and
    /// aggregate-input columns all resolve against the chunk's schema once;
    /// the per-row work is column indexing only.
    fn cq_absorb_chunk(cq: &mut CqState, chunk: &ColumnChunk, now: SimTime) {
        let schema = chunk.schema();
        let Some(group_idxs) = cq.group_resolver.indices_for(schema) else {
            return; // malformed chunk: discard (best-effort policy)
        };
        let group_idxs = group_idxs.to_vec();
        let time_idx = cq.time_ref.as_mut().and_then(|c| c.index_for(schema));
        let dedup_idxs: Vec<Option<usize>> = cq
            .dedup_refs
            .iter_mut()
            .map(|c| c.index_for(schema))
            .collect();
        let agg_idxs: Vec<Option<usize>> = cq
            .agg_inputs
            .iter_mut()
            .map(|input| input.as_mut().and_then(|c| c.index_for(schema)))
            .collect();
        let aggs = &cq.aggs;
        for r in 0..chunk.rows() {
            let event_time = time_idx
                .and_then(|i| chunk.col(i).value_ref(r).as_i64())
                .map_or(now, |v| v.max(0) as u64);
            let key = chunk.key_at(&group_idxs, r);
            let dedup = if dedup_idxs.is_empty() {
                None
            } else {
                // A row missing a dedup column is treated as unique.
                let mut out = String::with_capacity(12 * dedup_idxs.len());
                for (i, idx) in dedup_idxs.iter().enumerate() {
                    if i > 0 {
                        out.push('|');
                    }
                    match idx {
                        Some(c) => chunk.col(*c).value_ref(r).write_key(&mut out),
                        None => out.push('∅'),
                    }
                }
                Some(out)
            };
            cq.store.push(
                event_time,
                &key,
                dedup.as_deref(),
                || GroupAgg {
                    vals: group_idxs.iter().map(|&i| chunk.col(i).value(r)).collect(),
                    states: aggs.iter().map(AggFunc::init).collect(),
                },
                |acc| {
                    for ((agg, idx), state) in aggs.iter().zip(&agg_idxs).zip(acc.states.iter_mut())
                    {
                        state.update_ref(agg, idx.map(|i| chunk.col(i).value_ref(r)));
                    }
                },
            );
        }
    }

    fn encode_window_partial(partial_schema: &Arc<Schema>, wid: WindowId, acc: &GroupAgg) -> Tuple {
        let mut values = Vec::with_capacity(partial_schema.arity());
        values.push(Value::Int(wid as i64));
        values.extend(acc.vals.iter().cloned());
        for state in &acc.states {
            values.push(state.finish());
            if let AggState::Avg { sum, count } = state {
                values.push(Value::Float(*sum));
                values.push(Value::Int(*count as i64));
            }
        }
        Tuple::from_schema(Arc::clone(partial_schema), values)
    }

    /// Periodic window maintenance (fires every slide): close due windows,
    /// forward their partials toward the window root — combining en route —
    /// and, at the root, merge arrived partials and stream per-window
    /// results to the proxy.
    fn window_tick(&mut self, ctx: &mut ProgramContext<Self>, query_id: u64) {
        let now = ctx.now();
        let Some(q) = self.queries.get_mut(&query_id) else {
            return; // query uninstalled: the tick chain stops
        };
        let Some(cq) = q.cq.as_mut() else {
            return;
        };
        let window_ns = q.plan.window_namespace();
        let root_key = q.plan.agg_root_key();
        let root_id = routing_id(&window_ns, &root_key);
        let proxy = q.plan.proxy;
        let is_root = self.overlay.router().is_responsible(root_id);

        // 1. Close this node's due windows.  At the root the partials merge
        //    straight into the root store; elsewhere they are encoded for
        //    the trip up (along with anything absorbed from upcall relays).
        let closed = cq.store.close_due(now);
        let mut to_send: Vec<Tuple> = Vec::new();
        // Distinct windows whose partials this flush bundles (a tick that
        // catches up after an EVERY-cadence gap ships several windows at
        // once); the flush span's `aux` records it so the per-*window*
        // static bound can be reconciled against a per-*tick* measurement.
        let mut flushed_windows: BTreeSet<WindowId> = BTreeSet::new();
        if is_root {
            for (wid, groups) in closed {
                for (key, acc) in groups {
                    cq.root_store.accept_refinement(wid, &key, acc);
                }
            }
        } else {
            for (wid, groups) in closed.into_iter().chain(cq.root_store.close_due(now)) {
                if !groups.is_empty() {
                    flushed_windows.insert(wid);
                }
                for (_, acc) in groups {
                    to_send.push(Self::encode_window_partial(&cq.partial_schema, wid, &acc));
                }
            }
        }

        // 2. At the root: snapshot every due window that changed — state is
        //    *retained* so late partials keep merging and re-emit refined
        //    results — and turn each snapshot into result rows.
        let mut emissions: Vec<(WindowId, Vec<Delta<Tuple>>)> = Vec::new();
        if is_root {
            let mut emitted_max = None;
            for (wid, groups) in cq.root_store.emit_due(now) {
                let (ws, we) = cq.window.bounds(wid);
                let mut rows: Vec<Tuple> = groups
                    .into_iter()
                    .map(|(_, acc)| {
                        let mut values = Vec::with_capacity(cq.result_schema.arity());
                        values.push(Value::Int(ws as i64));
                        values.push(Value::Int(we as i64));
                        values.extend(acc.vals.iter().cloned());
                        values.extend(acc.states.iter().map(AggState::finish));
                        Tuple::from_schema(Arc::clone(&cq.result_schema), values)
                    })
                    .collect();
                rows.sort_by_cached_key(std::string::ToString::to_string);
                if !cq.final_ops.is_empty() {
                    let mut finisher = Pipeline::new(
                        cq.final_ops
                            .iter()
                            .filter_map(OperatorSpec::build)
                            .collect(),
                    );
                    let mut finished = Vec::new();
                    for t in rows {
                        finished.extend(finisher.push(t));
                    }
                    finished.extend(finisher.flush());
                    rows = finished;
                }
                let deltas = cq.tracker.emit(wid, rows);
                if !deltas.is_empty() {
                    cq.windows_emitted += 1;
                    emissions.push((wid, deltas));
                }
                emitted_max = Some(emitted_max.unwrap_or(0u64).max(wid));
            }
            // Retire windows past the refinement horizon from both the
            // retained root state and the delta tracker (bounded memory).
            if let Some(newest) = emitted_max {
                let retain = cq.retention_windows();
                if newest > retain {
                    cq.root_store.retire_before(newest - retain);
                    cq.tracker.retire(newest - retain - 1);
                }
            }
        }
        let window = cq.window;
        let lifetime = cq.spec.lease.max(self.config.publish_lifetime);

        // 3. Ship partials one hop toward the root (upcalls combine en
        //    route) and stream emissions to the proxy.  Every partial of a
        //    tick shares the window-root destination, so batching collapses
        //    the per-group message train into one transfer per tick.
        let mut effects = Vec::new();
        let shipments: Vec<QpObject> = if self.config.batching && to_send.len() > 1 {
            vec![QpObject::Batch(TupleBatch::new(to_send))]
        } else {
            to_send.into_iter().map(QpObject::Tuple).collect()
        };
        // Flush instrumentation: every shipping flush ticks
        // `cq.window_flushes` / `cq.flush_partials` (the counters the
        // span-reconciliation tests anchor to), and a sampled query's flush
        // additionally records a `window.flush` span whose context rides
        // the wire on every shipment of this tick.
        let mut flush_ctx: Option<TraceContext> = None;
        if self.tel.is_enabled() && !shipments.is_empty() {
            let partials: u64 = shipments.iter().map(|s| s.tuple_count() as u64).sum();
            let bytes: u64 = shipments.iter().map(|s| s.wire_size() as u64).sum();
            self.tel.inc("cq.window_flushes");
            self.tel.add("cq.flush_partials", partials);
            if let Some(trace_id) = self.traced(query_id) {
                let span = self.next_span_id(ctx.me());
                self.tel.record_span(
                    now,
                    now,
                    trace_id,
                    span,
                    trace_id,
                    query_id,
                    "window.flush",
                    partials,
                    bytes,
                    flushed_windows.len() as u64,
                );
                flush_ctx = Some(TraceContext {
                    trace_id,
                    span_id: span,
                    query_id,
                });
            }
        }
        for shipment in shipments {
            let name = ObjectName::new(window_ns.clone(), root_key.clone(), self.rng.next_u64());
            self.overlay.set_trace(flush_ctx);
            effects.extend(
                self.overlay
                    .send_routed(root_id, name, shipment, lifetime, now),
            );
        }
        self.drive(ctx, effects);
        for (wid, deltas) in emissions {
            let (window_start, window_end) = window.bounds(wid);
            let mut retracts = Vec::new();
            let mut inserts = Vec::new();
            for d in deltas {
                match d {
                    Delta::Retract(t) => retracts.push(t),
                    Delta::Insert(t) => inserts.push(t),
                }
            }
            // A sampled query's per-window emission: the `window.emit`
            // span parents to the newest absorption at this root and its
            // context travels to the proxy on the results message.
            let emit_ctx = self.traced(query_id).map(|trace_id| {
                let span = self.next_span_id(ctx.me());
                let parent = self
                    .last_combine_span
                    .get(&query_id)
                    .copied()
                    .unwrap_or(trace_id);
                self.tel.record_span(
                    now,
                    now,
                    trace_id,
                    span,
                    parent,
                    query_id,
                    "window.emit",
                    (retracts.len() + inserts.len()) as u64,
                    0,
                    window_start,
                );
                TraceContext {
                    trace_id,
                    span_id: span,
                    query_id,
                }
            });
            if proxy == ctx.me() {
                self.proxy_receive_window(
                    ctx,
                    query_id,
                    window_start,
                    window_end,
                    retracts,
                    inserts,
                    emit_ctx,
                );
            } else {
                ctx.send(
                    proxy,
                    PierMsg::WindowResults {
                        query_id,
                        window_start,
                        window_end,
                        retracts,
                        inserts,
                        trace: emit_ctx,
                    },
                );
            }
        }
        // 4. Window health into telemetry: absolute occupancy/shed gauges
        //    summed over every installed continuous query, plus shed/evict
        //    *deltas* of this query as trace events.
        if self.tel.is_enabled() {
            if let Some(cq) = self.queries.get_mut(&query_id).and_then(|q| q.cq.as_mut()) {
                let local = cq.store.stats();
                let root = cq.root_store.stats();
                let shed =
                    local.shed_tuples + local.shed_groups + root.shed_tuples + root.shed_groups;
                let evicted = local.evicted_windows + root.evicted_windows;
                if shed > cq.tel_shed {
                    let delta = shed - cq.tel_shed;
                    cq.tel_shed = shed;
                    self.tel.event("window_shed", || {
                        vec![
                            ("query_id", query_id.to_string()),
                            ("shed", delta.to_string()),
                        ]
                    });
                }
                if evicted > cq.tel_evicted {
                    let delta = evicted - cq.tel_evicted;
                    cq.tel_evicted = evicted;
                    self.tel.event("window_evict", || {
                        vec![
                            ("query_id", query_id.to_string()),
                            ("evicted", delta.to_string()),
                        ]
                    });
                }
            }
            let mut accepted = 0u64;
            let mut shed = 0u64;
            let mut evicted = 0u64;
            let mut open = 0u64;
            let mut groups = 0u64;
            let mut state_bytes = 0u64;
            let acc_bytes = |g: &GroupAgg| -> usize {
                g.vals.iter().map(WireSize::wire_size).sum::<usize>()
                    + g.states.iter().map(WireSize::wire_size).sum::<usize>()
            };
            for q in self.queries.values() {
                let Some(cq) = q.cq.as_ref() else { continue };
                for stats in [cq.store.stats(), cq.root_store.stats()] {
                    accepted += stats.accepted;
                    shed += stats.shed_tuples + stats.shed_groups;
                    evicted += stats.evicted_windows;
                }
                open += (cq.store.open_windows() + cq.root_store.open_windows()) as u64;
                groups += (cq.store.total_groups() + cq.root_store.total_groups()) as u64;
                state_bytes += (cq.store.approx_state_bytes(&acc_bytes)
                    + cq.root_store.approx_state_bytes(&acc_bytes))
                    as u64;
            }
            self.tel.gauge("cq.accepted", accepted as f64);
            self.tel.gauge("cq.shed", shed as f64);
            self.tel.gauge("cq.evicted_windows", evicted as f64);
            self.tel.gauge("cq.open_windows", open as f64);
            self.tel.gauge("cq.state_groups", groups as f64);
            self.tel.gauge("cq.state_bytes", state_bytes as f64);
        }

        // 5. Persist the surviving window state as durable segments, so a
        //    crash after this tick restarts warm.
        if let Some(durable) = self.config.durable.as_ref() {
            if let Some(cq) = self.queries.get(&query_id).and_then(|q| q.cq.as_ref()) {
                Self::persist_cq(durable, query_id, cq);
            }
        }

        // 6. Re-arm while the query is installed.
        if self.queries.contains_key(&query_id) {
            ctx.set_timer(window.slide, PierTimer::WindowTick { query_id });
        }
    }

    /// Periodic window maintenance for one share group (fires every slide,
    /// once per group — the shared counterpart of
    /// [`PierNode::window_tick`]): the layer closes due windows and hands
    /// back one partial stream to ship toward the group's root plus, at the
    /// root, per-member emissions the executor forwards to each member's
    /// proxy.
    fn share_tick(&mut self, ctx: &mut ProgramContext<Self>, group: u64, epoch: u64) {
        let now = ctx.now();
        let Some(route) = self.sharing.as_ref().and_then(|l| l.group_route(group)) else {
            return; // group retired: the tick chain stops
        };
        if route.epoch != epoch {
            // The group was retired and re-created since this chain was
            // armed; the new incarnation drives its own chain — a stale
            // timer must not stack a duplicate one.
            return;
        }
        let root_id = routing_id(&route.namespace, &route.root_key);
        let is_root = self.overlay.router().is_responsible(root_id);
        let out = self
            .sharing
            .as_mut()
            .expect("route resolved above")
            .tick(group, now, is_root);
        let lifetime = self.config.publish_lifetime;
        let mut effects = Vec::new();
        // One transfer per tick per group: every partial shares the group's
        // window-root destination, so batching collapses the train.
        let shipments: Vec<QpObject> = if self.config.batching && out.partials.len() > 1 {
            vec![QpObject::Batch(TupleBatch::new(out.partials))]
        } else {
            out.partials.into_iter().map(QpObject::Tuple).collect()
        };
        // Share-group attribution: shared work is charged to the group's
        // canonical (lowest-id) member — one `share.flush` span per
        // shipping tick when tracing is in trace-all mode (per-query
        // sampling decisions are meaningless for work N queries share).
        let mut share_ctx: Option<TraceContext> = None;
        if self.tel.is_enabled() && !shipments.is_empty() {
            let partials: u64 = shipments.iter().map(|s| s.tuple_count() as u64).sum();
            self.tel.inc("mqo.share_flushes");
            self.tel.add("mqo.share_flush_partials", partials);
            if self.config.trace.sample_every == 1 {
                let members = self
                    .sharing
                    .as_ref()
                    .map_or_else(Vec::new, |l| l.member_ids(group));
                if let Some(&canonical) = members.first() {
                    let bytes: u64 = shipments.iter().map(|s| s.wire_size() as u64).sum();
                    let trace_id = trace_id_for(canonical);
                    let span = self.next_span_id(ctx.me());
                    self.tel.record_span(
                        now,
                        now,
                        trace_id,
                        span,
                        trace_id,
                        canonical,
                        "share.flush",
                        partials,
                        bytes,
                        members.len() as u64,
                    );
                    share_ctx = Some(TraceContext {
                        trace_id,
                        span_id: span,
                        query_id: canonical,
                    });
                }
            }
        }
        for shipment in shipments {
            let name = ObjectName::new(
                route.namespace.clone(),
                route.root_key.clone(),
                self.rng.next_u64(),
            );
            self.overlay.set_trace(share_ctx);
            effects.extend(
                self.overlay
                    .send_routed(root_id, name, shipment, lifetime, now),
            );
        }
        self.drive(ctx, effects);
        for e in out.emissions {
            // Per-member emission spans (trace-all mode only): each member
            // gets a top-level `window.emit` in its *own* trace, so shared
            // execution still yields per-query profiles.
            let emit_ctx = if self.tel.is_enabled() && self.config.trace.sample_every == 1 {
                let trace_id = trace_id_for(e.query_id);
                let span = self.next_span_id(ctx.me());
                self.tel.record_span(
                    now,
                    now,
                    trace_id,
                    span,
                    trace_id,
                    e.query_id,
                    "window.emit",
                    (e.retracts.len() + e.inserts.len()) as u64,
                    0,
                    e.window_start,
                );
                Some(TraceContext {
                    trace_id,
                    span_id: span,
                    query_id: e.query_id,
                })
            } else {
                None
            };
            if e.proxy == ctx.me() {
                self.proxy_receive_window(
                    ctx,
                    e.query_id,
                    e.window_start,
                    e.window_end,
                    e.retracts,
                    e.inserts,
                    emit_ctx,
                );
            } else {
                ctx.send(
                    e.proxy,
                    PierMsg::WindowResults {
                        query_id: e.query_id,
                        window_start: e.window_start,
                        window_end: e.window_end,
                        retracts: e.retracts,
                        inserts: e.inserts,
                        trace: emit_ctx,
                    },
                );
            }
        }
        // Re-arm while this incarnation of the group lives.
        if self
            .sharing
            .as_ref()
            .and_then(|l| l.group_route(group))
            .is_some_and(|r| r.epoch == epoch)
        {
            ctx.set_timer(route.slide, PierTimer::ShareTick { group, epoch });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn proxy_receive_window(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        query_id: u64,
        window_start: SimTime,
        window_end: SimTime,
        retracts: Vec<Tuple>,
        inserts: Vec<Tuple>,
        trace: Option<TraceContext>,
    ) {
        if self.proxied.get(&query_id).is_some_and(|s| s.done) {
            return;
        }
        // The delivery at the proxy closes the span tree: `result.emit`
        // parents to the root's wire-carried `window.emit` span.
        if let Some(t) = trace {
            if self.tel.is_enabled() {
                let now = ctx.now();
                let span = self.next_span_id(ctx.me());
                self.tel.record_span(
                    now,
                    now,
                    t.trace_id,
                    span,
                    t.span_id,
                    t.query_id,
                    "result.emit",
                    inserts.len() as u64,
                    0,
                    window_start,
                );
            }
        }
        let state = self.proxied.entry(query_id).or_default();
        state.results += inserts.len() as u64;
        for tuple in retracts {
            ctx.output(PierOut::WindowResult {
                query_id,
                window_start,
                window_end,
                retract: true,
                tuple,
            });
        }
        for tuple in inserts {
            ctx.output(PierOut::WindowResult {
                query_id,
                window_start,
                window_end,
                retract: false,
                tuple,
            });
        }
    }

    /// Materialise the telemetry hub as one `system.metrics` tuple and
    /// publish it into the DHT — the self-monitoring dogfood loop.  The
    /// tuple travels to its DHT owner like any other published row and is
    /// absorbed there **exactly once** (via `newData`), so standing queries
    /// over `system.metrics` — installed everywhere by broadcast
    /// dissemination — observe every node's metrics without double
    /// counting.  `system.metrics` matches neither the query-scoped nor the
    /// share-scoped namespace forms, so teardown sweeps never evict it.
    fn publish_metrics(&mut self, ctx: &mut ProgramContext<Self>) {
        let Some(interval) = self.config.telemetry.publish_interval else {
            return;
        };
        if !self.tel.is_enabled() {
            return;
        }
        let now = ctx.now();
        let node_label = format!("n{}", ctx.me().0);
        let p50 = self
            .tel
            .percentile("dht.lookup_latency_us", 50.0)
            .unwrap_or(0.0);
        let p99 = self
            .tel
            .percentile("dht.lookup_latency_us", 99.0)
            .unwrap_or(0.0);
        // Ring-drop visibility: events or spans evicted from the bounded
        // rings surface as a gauge *and* as a `system.metrics` column, so
        // both local summaries and standing queries can flag incomplete
        // traces (a dropped span invalidates profile reconciliation).
        let dropped = self
            .tel
            .with(|h| h.trace_dropped() + h.spans_dropped())
            .unwrap_or(0);
        self.tel.gauge("telemetry.trace_dropped", dropped as f64);
        let schema = SchemaRegistry::global().intern(
            "system.metrics",
            &[
                "node",
                "ts",
                "msgs_recv",
                "bytes_recv",
                "lookups",
                "lookup_p50_us",
                "lookup_p99_us",
                "owner_cache_hits",
                "owner_cache_misses",
                "trace_dropped",
            ],
        );
        let count = |name: &str| Value::Int(self.tel.counter(name) as i64);
        let tuple = Tuple::from_schema(
            schema,
            vec![
                Value::str(&node_label),
                Value::Int(now as i64),
                count("net.msgs_recv"),
                count("net.bytes_recv"),
                count("dht.lookups"),
                Value::Float(p50),
                Value::Float(p99),
                count("dht.owner_cache.hits"),
                count("dht.owner_cache.misses"),
                Value::Int(dropped as i64),
            ],
        );
        self.tel.inc("telemetry.publishes");
        self.publish_keyed(ctx, "system.metrics", node_label.clone(), tuple);
        self.publish_spans(ctx, &node_label);
        ctx.set_timer(interval, PierTimer::MetricsPublish);
    }

    /// Materialise spans recorded since the last publish round as
    /// `system.spans` tuples — the tracing half of the dogfood loop, armed
    /// by [`TraceConfig::publish`].  Bounded per round (the ring itself is
    /// bounded, and a cursor watermark prevents re-publishing), and keyed
    /// by node so a node's spans land on one DHT owner in recording order.
    /// `system.spans` matches neither the query- nor share-scoped
    /// namespace forms, so teardown sweeps never evict it.
    fn publish_spans(&mut self, ctx: &mut ProgramContext<Self>, node_label: &str) {
        if !self.config.trace.publish {
            return;
        }
        const MAX_SPANS_PER_ROUND: usize = 64;
        let cursor = self.span_publish_cursor;
        let fresh: Vec<SpanRecord> = self
            .tel
            .with(|h| {
                h.spans()
                    .filter(|s| s.ordinal >= cursor)
                    .take(MAX_SPANS_PER_ROUND)
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        let Some(last) = fresh.last() else {
            return;
        };
        self.span_publish_cursor = last.ordinal + 1;
        let schema = SchemaRegistry::global().intern(
            "system.spans",
            &[
                "node", "start", "end", "ordinal", "trace", "span", "parent", "query", "stage",
                "rows", "bytes", "aux",
            ],
        );
        for s in fresh {
            let tuple = Tuple::from_schema(
                Arc::clone(&schema),
                vec![
                    Value::str(node_label),
                    Value::Int(s.start as i64),
                    Value::Int(s.end as i64),
                    Value::Int(s.ordinal as i64),
                    Value::Int(s.trace_id as i64),
                    Value::Int(s.span_id as i64),
                    Value::Int(s.parent as i64),
                    Value::Int(s.query_id as i64),
                    Value::str(s.stage),
                    Value::Int(s.rows as i64),
                    Value::Int(s.bytes as i64),
                    Value::Int(s.aux as i64),
                ],
            );
            self.tel.inc("telemetry.span_publishes");
            self.publish_keyed(ctx, "system.spans", node_label.to_string(), tuple);
        }
    }

    /// Diagnostics of an installed continuous query (`None` when the query
    /// is not installed here or is not continuous).
    pub fn cq_diagnostics(&self, query_id: u64) -> Option<CqDiagnostics> {
        let q = self.queries.get(&query_id)?;
        let cq = q.cq.as_ref()?;
        Some(CqDiagnostics {
            local: cq.store.stats(),
            root: cq.root_store.stats(),
            open_windows: cq.store.open_windows() + cq.root_store.open_windows(),
            total_groups: cq.store.total_groups() + cq.root_store.total_groups(),
            tracked_emissions: cq.tracker.tracked_windows(),
            windows_emitted: cq.windows_emitted,
            lease_renewals: cq.lease.renewals,
            rehydrated_windows: cq.rehydrated_windows,
        })
    }
}

impl Program for PierNode {
    type Msg = PierMsg;
    type Timer = PierTimer;
    type Out = PierOut;

    fn on_start(&mut self, ctx: &mut ProgramContext<Self>) {
        let now: SimTime = ctx.now();
        self.tel.set_now(now);
        let effects = self.overlay.start(self.bootstrap, now);
        self.drive(ctx, effects);
        if self.tel.is_enabled() {
            if let Some(interval) = self.config.telemetry.publish_interval {
                ctx.set_timer(interval, PierTimer::MetricsPublish);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut ProgramContext<Self>, from: NodeAddr, msg: Self::Msg) {
        if self.tel.is_enabled() {
            self.tel.set_now(ctx.now());
            self.tel.inc("net.msgs_recv");
            self.tel.add("net.bytes_recv", msg.wire_size() as u64);
        }
        match msg {
            PierMsg::Dht(m) => {
                let now = ctx.now();
                let effects = self.overlay.on_message(from, m, now);
                self.drive(ctx, effects);
            }
            PierMsg::Results { query_id, tuples } => {
                self.proxy_receive(ctx, query_id, tuples);
            }
            PierMsg::WindowResults {
                query_id,
                window_start,
                window_end,
                retracts,
                inserts,
                trace,
            } => {
                self.proxy_receive_window(
                    ctx,
                    query_id,
                    window_start,
                    window_end,
                    retracts,
                    inserts,
                    trace,
                );
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ProgramContext<Self>, timer: Self::Timer) {
        self.tel.set_now(ctx.now());
        match timer {
            PierTimer::Overlay(t) => {
                let now = ctx.now();
                let effects = self.overlay.on_timer(t, now);
                self.drive(ctx, effects);
            }
            PierTimer::AggFlush { query_id } => self.agg_flush(ctx, query_id, false),
            PierTimer::AggFinal { query_id } => self.agg_flush(ctx, query_id, true),
            PierTimer::QueryEnd { query_id } => {
                self.uninstall_query(query_id);
            }
            PierTimer::ProxyDone { query_id } => {
                if let Some(state) = self.proxied.get_mut(&query_id) {
                    if !state.done {
                        state.done = true;
                        state.renew_plan = None;
                        // The query's budget charge returns to its tenant.
                        if let Some(layer) = self.admission.as_mut() {
                            layer.release(query_id);
                        }
                        ctx.output(PierOut::Done { query_id });
                    }
                }
            }
            PierTimer::WindowTick { query_id } => self.window_tick(ctx, query_id),
            PierTimer::ShareTick { group, epoch } => self.share_tick(ctx, group, epoch),
            PierTimer::MetricsPublish => self.publish_metrics(ctx),
            PierTimer::BatchFlush => {
                let now = ctx.now();
                self.batch_timer_armed = false;
                let effects = self.flush_all_rehash(now);
                self.drive(ctx, effects);
            }
            PierTimer::CqRenew { query_id } => {
                // Proxy-side: re-disseminate the standing plan so leases
                // extend everywhere and churned-in nodes pick the query up.
                // The next round is scheduled by jittered exponential
                // backoff rather than a fixed interval: rounds that are not
                // producing results (the stream stalled — partitioned away,
                // or the holders are down) spread out exponentially instead
                // of hammering a dead path in lockstep with every other
                // proxy, and the first successful round snaps back to the
                // base interval.  Jitter desynchronises proxies after a
                // partition heals.
                let plan = match self.proxied.get(&query_id) {
                    Some(state) if !state.done => state.renew_plan.clone(),
                    _ => None,
                };
                if let Some(plan) = plan {
                    let renew_every = plan.cq.map_or(10_000_000, |c| c.renew_every).max(1);
                    let lease = plan.cq.map_or(renew_every * 3, |c| c.lease);
                    self.disseminate(ctx, plan);
                    let mut delay = renew_every;
                    if let Some(state) = self.proxied.get_mut(&query_id) {
                        // Cap below the lease so a healthy-but-quiet query
                        // still renews in time; holders additionally park
                        // (rather than sweep) lapsed leases when durable.
                        let cap = lease.saturating_sub(renew_every / 2).max(renew_every);
                        let backoff = state
                            .backoff
                            .get_or_insert_with(|| RenewalBackoff::new(renew_every, cap));
                        if state.results > state.renew_results || state.results == 0 {
                            // Progress — or a stream that has not started
                            // yet, which is not evidence of failure.
                            backoff.reset();
                        } else {
                            backoff.escalate();
                        }
                        state.renew_results = state.results;
                        let attempt = backoff.attempt();
                        delay = backoff.next_delay(&mut self.rng);
                        if attempt > 0 {
                            self.tel.event("lease.backoff", || {
                                vec![
                                    ("query_id", query_id.to_string()),
                                    ("attempt", attempt.to_string()),
                                    ("delay", delay.to_string()),
                                ]
                            });
                        }
                    }
                    ctx.set_timer(delay.max(1), PierTimer::CqRenew { query_id });
                }
            }
            PierTimer::CqLease { query_id } => {
                let now = ctx.now();
                let (lease, shared) = match self.queries.get(&query_id) {
                    Some(q) => match q.cq.as_ref() {
                        Some(cq) => (cq.lease, false),
                        None => return,
                    },
                    // Share-group members keep their lease in the layer.
                    None => match self
                        .sharing
                        .as_ref()
                        .and_then(|l| l.lease_expires_at(query_id))
                    {
                        Some(expires_at) => (Lease::granted(expires_at, 0), true),
                        None => return,
                    },
                };
                // With durable segments the owner may be a *restarted* node
                // whose renewals resume once it rejoins: a lapsed lease
                // parks in a grace window (one lease duration) before the
                // query is swept; shared members and soft-only nodes keep
                // the original hard expiry.
                let grace = if !shared && self.config.durable.is_some() {
                    lease.duration
                } else {
                    0
                };
                match lease.status(now, grace) {
                    LeaseStatus::Gone => {
                        // The owner stopped renewing (or we are partitioned
                        // away): the soft state lapses.
                        self.uninstall_query(query_id);
                    }
                    LeaseStatus::Active => {
                        ctx.set_timer(
                            lease.expires_at.saturating_sub(now).max(1),
                            PierTimer::CqLease { query_id },
                        );
                    }
                    LeaseStatus::Rehydrating => {
                        // Parked: hold the state through the grace window
                        // and re-check at its end (a renewal arriving in
                        // between pushes `expires_at` forward again).
                        ctx.set_timer(
                            lease
                                .expires_at
                                .saturating_add(grace)
                                .saturating_sub(now)
                                .max(1),
                            PierTimer::CqLease { query_id },
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn netmon_rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(
                    "packets",
                    vec![
                        ("src", Value::Str(format!("10.0.0.{}", i % 5).into())),
                        ("len", Value::Int(40 + i % 1400)),
                        ("ts", Value::Int(i * 250_000)),
                    ],
                )
            })
            .collect()
    }

    fn windowed_cq_state() -> CqState {
        let plan = crate::sqlish::compile(
            "SELECT src, COUNT(*), SUM(len) FROM packets GROUP BY src WINDOW 30s SLIDE 10s",
            pier_runtime::NodeAddr(1),
            60_000_000,
        )
        .expect("windowed netmon query must compile");
        PierNode::build_cq_state(&plan, 0).expect("plan has a windowed sink")
    }

    /// Canonical view of a window store's content after closing everything:
    /// `(window, group key, group values, finished aggregates)` rows.
    fn drain_canonical(cq: &mut CqState) -> Vec<(u64, String, Vec<Value>, Vec<Value>)> {
        let mut out = Vec::new();
        for (wid, groups) in cq.store.close_due(1_000_000_000_000) {
            for (key, acc) in groups {
                out.push((
                    wid,
                    key,
                    acc.vals.clone(),
                    acc.states.iter().map(AggState::finish).collect(),
                ));
            }
        }
        out.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        out
    }

    #[test]
    fn cq_chunk_absorb_equals_per_tuple_absorb() {
        let rows = netmon_rows(400);
        let mut per_tuple = windowed_cq_state();
        let mut chunked = windowed_cq_state();
        let now = 1_000_000;
        for t in &rows {
            PierNode::cq_absorb(&mut per_tuple, t, now);
        }
        let batch = TupleBatch::new(rows);
        for chunk in batch.chunks() {
            PierNode::cq_absorb_chunk(&mut chunked, chunk, now);
        }
        let a = drain_canonical(&mut per_tuple);
        let b = drain_canonical(&mut chunked);
        assert!(!a.is_empty(), "the workload must populate windows");
        assert_eq!(a, b);
    }

    #[test]
    fn cq_chunk_absorb_discards_malformed_chunks() {
        let mut cq = windowed_cq_state();
        let rows: Vec<Tuple> = (0..10)
            .map(|i| Tuple::new("packets", vec![("nothing", Value::Int(i))]))
            .collect();
        let batch = TupleBatch::new(rows);
        for chunk in batch.chunks() {
            PierNode::cq_absorb_chunk(&mut cq, chunk, 0);
        }
        assert!(drain_canonical(&mut cq).is_empty());
    }

    #[test]
    fn group_agg_segment_codec_round_trips_every_variant() {
        let agg = GroupAgg {
            vals: vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(-5),
                Value::Float(2.5),
                Value::str("host-α"),
                Value::bytes([0u8, 255, 7]),
            ],
            states: vec![
                AggState::Count(3),
                AggState::Sum(1.5),
                AggState::Min(Some(Value::Int(-9))),
                AggState::Max(None),
                AggState::Avg { sum: 2.0, count: 4 },
            ],
        };
        let mut buf = Vec::new();
        agg.encode_state(&mut buf);
        let back = GroupAgg::decode_state(&buf).expect("clean bytes decode");
        assert_eq!(back.vals, agg.vals);
        assert_eq!(back.states, agg.states);
        // Byte-for-byte: re-encoding the decoded state reproduces the bytes.
        let mut again = Vec::new();
        back.encode_state(&mut again);
        assert_eq!(buf, again);
        // A truncated payload is rejected, not half-decoded.
        assert!(GroupAgg::decode_state(&buf[..buf.len() - 1]).is_none());
        // Trailing garbage is rejected too.
        let mut padded = buf.clone();
        padded.push(0);
        assert!(GroupAgg::decode_state(&padded).is_none());
    }

    #[test]
    fn persisted_cq_state_rehydrates_warm() {
        let mut cq = windowed_cq_state();
        for t in netmon_rows(120) {
            PierNode::cq_absorb(&mut cq, &t, 0);
        }
        let durable = DurableStore::new();
        PierNode::persist_cq(&durable, 7, &cq);
        let (local_key, _) = PierNode::segment_keys(7);
        let log = durable.get(&local_key).expect("snapshot was written");

        // A cold store (what a restarted node builds) rehydrates to the
        // same canonical contents the crashed node held.
        let mut cold = windowed_cq_state();
        let report = cold.store.rehydrate_from(&log);
        assert!(report.windows > 0, "open windows came back");
        assert!(!report.torn_tail);
        assert_eq!(drain_canonical(&mut cold), drain_canonical(&mut cq));
    }

    #[test]
    fn persist_compacts_once_the_log_outgrows_the_bound() {
        let mut cq = windowed_cq_state();
        for t in netmon_rows(50) {
            PierNode::cq_absorb(&mut cq, &t, 0);
        }
        let durable = DurableStore::new();
        PierNode::persist_cq(&durable, 1, &cq);
        let after_one = durable.total_bytes();
        // Snapshots append...
        PierNode::persist_cq(&durable, 1, &cq);
        assert!(durable.total_bytes() > after_one);
        // ...until the log crosses the compaction bound, which rewrites it
        // as a single fresh snapshot.
        let (local_key, _) = PierNode::segment_keys(1);
        loop {
            let over = durable
                .get(&local_key)
                .is_some_and(|log| log.len() > PierNode::SEGMENT_COMPACT_BYTES);
            if over {
                break;
            }
            PierNode::persist_cq(&durable, 1, &cq);
        }
        PierNode::persist_cq(&durable, 1, &cq);
        durable.with_log(&local_key, |log| {
            assert!(
                log.len() <= PierNode::SEGMENT_COMPACT_BYTES,
                "compaction rewrote the oversized log"
            );
        });
        let mut cold = windowed_cq_state();
        let log = durable.get(&local_key).expect("compacted snapshot");
        cold.store.rehydrate_from(&log);
        assert_eq!(drain_canonical(&mut cold), drain_canonical(&mut cq));
    }
}
