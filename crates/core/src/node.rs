//! The PIER node program: query executor over the overlay.
//!
//! A [`PierNode`] is the "Program" box of Figures 3 and 4 with the query
//! processor included: it embeds an [`Overlay`] (the DHT wrapper), installs
//! opgraphs that arrive via query dissemination, runs their local dataflow
//! over locally stored and DHT-partitioned data, and uses the overlay for
//! the distributed parts of query execution exactly as §3.3.6 enumerates —
//! query dissemination, hash indexes, partitioned parallelism (rehash),
//! operator state, and hierarchical operators.
//!
//! Life of a query (§3.3.2): a client hands a [`QueryPlan`] to any node
//! (its *proxy*) through [`PierNode::submit_query`]; the proxy disseminates
//! the plan (broadcast tree, equality index, or locally), every receiving
//! node instantiates the opgraphs and starts feeding them; answer tuples are
//! forwarded to the proxy, which delivers them to the client; execution
//! stops when the query's timeout expires.

use crate::operators::{GroupBy, JoinSide, LocalOperator, Pipeline, SymmetricHashJoin};
use crate::plan::{Dissemination, OpGraph, OperatorSpec, QpObject, QueryPlan, SinkSpec};
use crate::tuple::Tuple;
use pier_dht::{
    routing_id, DhtMessage, Id, NodeRef, ObjectName, Overlay, OverlayConfig, OverlayEffect,
    OverlayEvent, OverlayTimer,
};
use pier_runtime::{Duration, NodeAddr, Program, ProgramContext, Rng64, SimTime, WireSize};
use std::collections::HashMap;

/// Tuning knobs for a PIER node.
#[derive(Debug, Clone)]
pub struct PierConfig {
    /// Overlay configuration.
    pub overlay: OverlayConfig,
    /// Soft-state lifetime used when publishing tuples and partial results.
    pub publish_lifetime: Duration,
}

impl Default for PierConfig {
    fn default() -> Self {
        PierConfig {
            overlay: OverlayConfig::default(),
            publish_lifetime: 600_000_000,
        }
    }
}

/// Messages exchanged between PIER nodes.
#[derive(Debug, Clone)]
pub enum PierMsg {
    /// Overlay traffic (routing, get/put/send/renew, broadcast).
    Dht(DhtMessage<QpObject>),
    /// Answer tuples flowing back to the query's proxy node.
    Results {
        /// Query the tuples belong to.
        query_id: u64,
        /// The answer tuples (possibly a batch).
        tuples: Vec<Tuple>,
    },
}

impl WireSize for PierMsg {
    fn wire_size(&self) -> usize {
        1 + match self {
            PierMsg::Dht(m) => m.wire_size(),
            PierMsg::Results { tuples, .. } => 8 + tuples.iter().map(WireSize::wire_size).sum::<usize>(),
        }
    }
}

/// Timers used by a PIER node.
#[derive(Debug, Clone)]
pub enum PierTimer {
    /// Overlay maintenance.
    Overlay(OverlayTimer),
    /// Periodic flush of buffered partial aggregates up the aggregation tree.
    AggFlush {
        /// Query being flushed.
        query_id: u64,
    },
    /// Final aggregation flush at the aggregation-tree root.
    AggFinal {
        /// Query being finalized.
        query_id: u64,
    },
    /// The query's lifetime expired at this node: uninstall it.
    QueryEnd {
        /// Query being uninstalled.
        query_id: u64,
    },
    /// The proxy's view of the query lifetime expired: notify the client.
    ProxyDone {
        /// Query being completed.
        query_id: u64,
    },
}

/// Values delivered to the client application attached to a node.
#[derive(Debug, Clone)]
pub enum PierOut {
    /// An answer tuple for a query this node proxies.
    Result {
        /// Query the tuple answers.
        query_id: u64,
        /// The answer tuple.
        tuple: Tuple,
    },
    /// The query's timeout expired; no more results will be delivered.
    Done {
        /// The completed query.
        query_id: u64,
    },
}

#[derive(Debug)]
struct GraphState {
    spec: OpGraph,
    pipeline: Pipeline,
    join: Option<SymmetricHashJoin>,
    /// Local + relayed partial aggregates waiting to travel up the tree.
    uplink: Option<GroupBy>,
    /// Partials merged at the aggregation-tree root.
    root_merge: Option<GroupBy>,
}

#[derive(Debug)]
struct QueryState {
    plan: QueryPlan,
    graphs: Vec<GraphState>,
    agg_root_id: Id,
}

#[derive(Debug, Default)]
struct ProxyState {
    results: u64,
    done: bool,
}

/// A PIER node: overlay + query processor, runnable under the simulator or
/// the physical runtime.
#[derive(Debug)]
pub struct PierNode {
    overlay: Overlay<QpObject>,
    bootstrap: Option<NodeAddr>,
    config: PierConfig,
    rng: Rng64,
    local_tables: HashMap<String, Vec<Tuple>>,
    queries: HashMap<u64, QueryState>,
    proxied: HashMap<u64, ProxyState>,
    pending_fetches: HashMap<u64, (u64, usize, Tuple)>,
    next_query_seq: u64,
}

impl PierNode {
    /// A node whose overlay routing state is precomputed from the full ring.
    pub fn with_static_ring(me: NodeRef, all: &[NodeRef], config: PierConfig) -> Self {
        PierNode {
            overlay: Overlay::with_static_ring(me, all, config.overlay),
            bootstrap: None,
            rng: Rng64::new(me.id.0 ^ 0x9D5F),
            config,
            local_tables: HashMap::new(),
            queries: HashMap::new(),
            proxied: HashMap::new(),
            pending_fetches: HashMap::new(),
            next_query_seq: 0,
        }
    }

    /// A node that joins an existing overlay through `bootstrap` when started.
    pub fn joining(me: NodeRef, bootstrap: Option<NodeAddr>, config: PierConfig) -> Self {
        PierNode {
            overlay: Overlay::new(me, config.overlay),
            bootstrap,
            rng: Rng64::new(me.id.0 ^ 0x9D5F),
            config,
            local_tables: HashMap::new(),
            queries: HashMap::new(),
            proxied: HashMap::new(),
            pending_fetches: HashMap::new(),
            next_query_seq: 0,
        }
    }

    /// Read access to the overlay (diagnostics, experiments).
    pub fn overlay(&self) -> &Overlay<QpObject> {
        &self.overlay
    }

    /// Number of queries currently installed at this node.
    pub fn installed_queries(&self) -> usize {
        self.queries.len()
    }

    /// Rows of a node-local table (the decoupled-storage access method over
    /// data that lives only on this node, e.g. its own firewall log).
    pub fn local_table_len(&self, table: &str) -> usize {
        self.local_tables.get(table).map(Vec::len).unwrap_or(0)
    }

    /// Append a row to a node-local table.  Rows become visible to queries
    /// over that table that are installed later; rows added while a
    /// continuous query is running are fed to it on arrival only if they are
    /// also published into the DHT.
    pub fn add_local_row(&mut self, table: &str, tuple: Tuple) {
        self.local_tables
            .entry(table.to_string())
            .or_default()
            .push(tuple);
    }

    /// Publish a tuple into the DHT-partitioned primary index of `table`,
    /// hashed on `key_cols` (§3.3.3 "a primary index in PIER is achieved by
    /// publishing a table into the DHT").
    pub fn publish(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        table: &str,
        key_cols: &[String],
        tuple: Tuple,
    ) {
        let Some(key) = tuple.partition_key(key_cols) else {
            return; // malformed tuple: nothing to hash on
        };
        self.publish_keyed(ctx, table, key, tuple);
    }

    /// Publish a tuple under an explicit partition key instead of one derived
    /// from its columns.  Used by the range index (the key is the PHT bucket
    /// label) and by any access method that wants custom placement.
    pub fn publish_keyed(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        table: &str,
        key: String,
        tuple: Tuple,
    ) {
        let name = ObjectName::new(table, key, self.rng.next_u64());
        let lifetime = self.config.publish_lifetime;
        let effects = self
            .overlay
            .put(name, QpObject::Tuple(tuple), lifetime, ctx.now());
        self.drive(ctx, effects);
    }

    /// Publish a tuple together with secondary-index entries on `index_cols`
    /// (§3.3.3): the base tuple goes into the primary index hashed on
    /// `key_cols`, and one `(index-key, tupleID)` entry per indexed column
    /// goes into the corresponding index table hashed on the indexed value.
    /// Consistency between the base tuple and its entries remains the
    /// publisher's responsibility, exactly as in the paper.
    pub fn publish_with_secondary_indexes(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        table: &str,
        key_cols: &[String],
        index_cols: &[String],
        tuple: Tuple,
    ) {
        let entries =
            crate::secondary_index::index_entries(table, key_cols, index_cols, &tuple);
        self.publish(ctx, table, key_cols, tuple);
        let index_key_cols = crate::secondary_index::index_partition_cols();
        for entry in entries {
            let index_table = entry.table.clone();
            self.publish(ctx, &index_table, &index_key_cols, entry);
        }
    }

    /// Publish a tuple into the range index of `table` on `column` using the
    /// PHT-style bucket addressing of [`crate::range_index`] (§3.3.3 "Range
    /// Index Substrate").  Malformed tuples (missing or non-integer column)
    /// are silently skipped.
    pub fn publish_range_indexed(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        table: &str,
        column: &str,
        config: crate::range_index::RangeIndexConfig,
        tuple: Tuple,
    ) {
        let Some(key) = crate::range_index::publish_key(column, config, &tuple) else {
            return;
        };
        self.publish_keyed(ctx, table, key, tuple);
    }

    /// Submit a query at this node, which becomes its proxy.  Returns the
    /// assigned query id; results arrive as [`PierOut::Result`] outputs and
    /// the stream is terminated by [`PierOut::Done`].
    pub fn submit_query(&mut self, ctx: &mut ProgramContext<Self>, mut plan: QueryPlan) -> u64 {
        if plan.query_id == 0 {
            self.next_query_seq += 1;
            plan.query_id = ((ctx.me().0 as u64) << 32) | self.next_query_seq;
        }
        plan.proxy = ctx.me();
        let query_id = plan.query_id;
        self.proxied.insert(query_id, ProxyState::default());
        ctx.set_timer(plan.timeout, PierTimer::ProxyDone { query_id });
        let now = ctx.now();
        match plan.dissemination.clone() {
            Dissemination::Broadcast => {
                let effects = self.overlay.broadcast(QpObject::Plan(plan), now);
                self.drive(ctx, effects);
            }
            Dissemination::ByKey { namespace, key } => {
                let name = ObjectName::new(namespace, key, self.rng.next_u64());
                let lifetime = plan.timeout;
                let effects = self
                    .overlay
                    .send(name, QpObject::Plan(plan), lifetime, now);
                self.drive(ctx, effects);
            }
            Dissemination::ByRange {
                namespace,
                bucket_keys,
            } => {
                // Route one copy of the plan to the partition of every
                // range-index bucket overlapping the predicate (§3.3.3).
                let lifetime = plan.timeout;
                for key in bucket_keys {
                    let name = ObjectName::new(namespace.clone(), key, self.rng.next_u64());
                    let effects =
                        self.overlay
                            .send(name, QpObject::Plan(plan.clone()), lifetime, now);
                    self.drive(ctx, effects);
                }
            }
            Dissemination::Local => {
                self.install_query(ctx, plan);
            }
        }
        query_id
    }

    // ----- effect / event plumbing ------------------------------------------

    fn drive(&mut self, ctx: &mut ProgramContext<Self>, effects: Vec<OverlayEffect<QpObject>>) {
        let mut work = effects;
        while !work.is_empty() {
            let mut next = Vec::new();
            for effect in work {
                match effect {
                    OverlayEffect::Send { to, msg } => ctx.send(to, PierMsg::Dht(msg)),
                    OverlayEffect::SetTimer { delay, timer } => {
                        ctx.set_timer(delay, PierTimer::Overlay(timer))
                    }
                    OverlayEffect::Event(event) => {
                        next.extend(self.handle_overlay_event(ctx, event));
                    }
                }
            }
            work = next;
        }
    }

    fn handle_overlay_event(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        event: OverlayEvent<QpObject>,
    ) -> Vec<OverlayEffect<QpObject>> {
        match event {
            OverlayEvent::GetResult {
                request_id,
                objects,
                ..
            } => {
                // A Fetch Matches probe came back: join the probe tuple with
                // every fetched inner tuple and forward to the sink.
                if let Some((query_id, graph_idx, probe)) = self.pending_fetches.remove(&request_id)
                {
                    let (output_table, sink_ok) = match self.fetch_spec(query_id, graph_idx) {
                        Some(t) => (t, true),
                        None => (String::new(), false),
                    };
                    if !sink_ok {
                        return Vec::new();
                    }
                    let joined: Vec<Tuple> = objects
                        .iter()
                        .filter_map(|o| o.value.as_tuple())
                        .map(|inner| probe.join_with(inner, &output_table))
                        .collect();
                    return self.deliver_sink(ctx, query_id, graph_idx, joined);
                }
                Vec::new()
            }
            OverlayEvent::NewData { object } => {
                match object.value {
                    QpObject::Plan(plan) => {
                        self.install_query(ctx, plan);
                        Vec::new()
                    }
                    QpObject::Tuple(tuple) => {
                        self.route_new_tuple(ctx, &object.name.namespace, tuple)
                    }
                }
            }
            OverlayEvent::Upcall { token, object, .. } => {
                // Hierarchical aggregation: intercept partials travelling up
                // the tree, fold them into our own buffered partials, and
                // drop the original message (§3.3.4).
                let now = ctx.now();
                if let QpObject::Tuple(partial) = &object.value {
                    if let Some(query_id) = self.query_for_partial_namespace(&object.name.namespace)
                    {
                        if self.absorb_partial(query_id, partial) {
                            return self.overlay.resume_upcall(token, false, now);
                        }
                    }
                }
                self.overlay.resume_upcall(token, true, now)
            }
            OverlayEvent::Broadcast { payload } => {
                if let QpObject::Plan(plan) = payload {
                    self.install_query(ctx, plan);
                }
                Vec::new()
            }
            OverlayEvent::RenewResult { .. } | OverlayEvent::LookupDone { .. } => Vec::new(),
        }
    }

    fn fetch_spec(&self, query_id: u64, graph_idx: usize) -> Option<String> {
        let q = self.queries.get(&query_id)?;
        let g = q.graphs.get(graph_idx)?;
        g.spec.ops.iter().find_map(|op| match op {
            OperatorSpec::FetchMatches { output_table, .. }
            | OperatorSpec::FetchByTupleId { output_table, .. } => Some(output_table.clone()),
            _ => None,
        })
    }

    fn query_for_partial_namespace(&self, namespace: &str) -> Option<u64> {
        self.queries
            .iter()
            .find(|(_, q)| q.plan.partial_namespace() == namespace)
            .map(|(id, _)| *id)
    }

    fn absorb_partial(&mut self, query_id: u64, partial: &Tuple) -> bool {
        let Some(q) = self.queries.get_mut(&query_id) else {
            return false;
        };
        let mut absorbed = false;
        for g in q.graphs.iter_mut() {
            if let Some(uplink) = g.uplink.as_mut() {
                absorbed |= uplink.merge_partial(partial);
            }
        }
        absorbed
    }

    fn route_new_tuple(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        namespace: &str,
        tuple: Tuple,
    ) -> Vec<OverlayEffect<QpObject>> {
        let mut effects = Vec::new();
        // Partial aggregates arriving at the aggregation-tree root.
        if let Some(query_id) = self.query_for_partial_namespace(namespace) {
            if let Some(q) = self.queries.get_mut(&query_id) {
                for g in q.graphs.iter_mut() {
                    if let Some(root) = g.root_merge.as_mut() {
                        root.merge_partial(&tuple);
                    }
                }
            }
            return effects;
        }
        // Base-table or rehash-namespace tuples feeding installed opgraphs.
        let targets: Vec<(u64, usize)> = self
            .queries
            .iter()
            .flat_map(|(qid, q)| {
                q.graphs
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.spec.source.namespace() == namespace)
                    .map(move |(i, _)| (*qid, i))
            })
            .collect();
        for (qid, gidx) in targets {
            effects.extend(self.feed_graph(ctx, qid, gidx, tuple.clone()));
        }
        effects
    }

    // ----- query installation and execution ---------------------------------

    fn install_query(&mut self, ctx: &mut ProgramContext<Self>, plan: QueryPlan) {
        let query_id = plan.query_id;
        if self.queries.contains_key(&query_id) {
            return;
        }
        let agg_root_id = routing_id(&plan.partial_namespace(), &plan.agg_root_key());
        let mut graphs = Vec::new();
        let mut has_agg = false;
        for spec in &plan.opgraphs {
            let pipeline = Pipeline::new(spec.ops.iter().filter_map(OperatorSpec::build).collect());
            let join = spec.join.as_ref().map(|j| {
                SymmetricHashJoin::new(j.left_key.clone(), j.right_key.clone(), j.output_table.clone())
            });
            let (uplink, root_merge) = match &spec.sink {
                SinkSpec::HierarchicalAgg {
                    group_cols, aggs, ..
                } => {
                    has_agg = true;
                    let table = format!("q{query_id}.agg");
                    (
                        Some(GroupBy::new(group_cols.clone(), aggs.clone(), table.clone())),
                        Some(GroupBy::new(group_cols.clone(), aggs.clone(), table)),
                    )
                }
                _ => (None, None),
            };
            graphs.push(GraphState {
                spec: spec.clone(),
                pipeline,
                join,
                uplink,
                root_merge,
            });
        }
        let timeout = plan.timeout;
        let hold = plan
            .opgraphs
            .iter()
            .find_map(|g| match &g.sink {
                SinkSpec::HierarchicalAgg { hold, .. } => Some(*hold),
                _ => None,
            })
            .unwrap_or(2_000_000);
        self.queries.insert(
            query_id,
            QueryState {
                plan,
                graphs,
                agg_root_id,
            },
        );
        ctx.set_timer(timeout, PierTimer::QueryEnd { query_id });
        if has_agg {
            ctx.set_timer(hold, PierTimer::AggFlush { query_id });
            ctx.set_timer(
                timeout.saturating_sub(hold),
                PierTimer::AggFinal { query_id },
            );
        }
        // Feed the opgraphs their initial data: node-local rows plus the
        // DHT-partitioned rows this node is responsible for.  The snapshot of
        // every source is taken *before* any graph runs, so tuples that one
        // opgraph republishes during installation (e.g. a rehash into the
        // query's rendezvous namespace) are not double-counted by another
        // opgraph that reads that namespace — those arrive via `newData`.
        let graph_count = self.queries[&query_id].graphs.len();
        let mut initial_rows: Vec<Vec<Tuple>> = Vec::with_capacity(graph_count);
        for gidx in 0..graph_count {
            let namespace = self.queries[&query_id].graphs[gidx]
                .spec
                .source
                .namespace()
                .to_string();
            let mut rows: Vec<Tuple> = self
                .local_tables
                .get(&namespace)
                .cloned()
                .unwrap_or_default();
            rows.extend(
                self.overlay
                    .local_scan(&namespace, ctx.now())
                    .into_iter()
                    .filter_map(|o| o.value.as_tuple().cloned()),
            );
            initial_rows.push(rows);
        }
        for (gidx, rows) in initial_rows.into_iter().enumerate() {
            for row in rows {
                let effects = self.feed_graph(ctx, query_id, gidx, row);
                self.drive(ctx, effects);
            }
        }
    }

    fn feed_graph(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        query_id: u64,
        graph_idx: usize,
        tuple: Tuple,
    ) -> Vec<OverlayEffect<QpObject>> {
        let outputs = {
            let Some(q) = self.queries.get_mut(&query_id) else {
                return Vec::new();
            };
            let Some(g) = q.graphs.get_mut(graph_idx) else {
                return Vec::new();
            };
            // Two-input join fed from the rehash namespace: the tuple's table
            // name tells us which side it belongs to.
            let staged: Vec<Tuple> = match (&mut g.join, &g.spec.join) {
                (Some(join), Some(join_spec)) => {
                    if tuple.table == join_spec.left_table {
                        join.push_side(JoinSide::Left, tuple)
                    } else if tuple.table == join_spec.right_table {
                        join.push_side(JoinSide::Right, tuple)
                    } else {
                        Vec::new() // unknown table: discard (best effort)
                    }
                }
                _ => vec![tuple],
            };
            let mut outputs = Vec::new();
            for t in staged {
                outputs.extend(g.pipeline.push(t));
            }
            // Hierarchical aggregation absorbs outputs into the uplink buffer.
            if let Some(uplink) = g.uplink.as_mut() {
                for t in outputs.drain(..) {
                    uplink.push(t);
                }
            }
            outputs
        };
        if outputs.is_empty() {
            return Vec::new();
        }
        self.deliver_sink(ctx, query_id, graph_idx, outputs)
    }

    fn deliver_sink(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        query_id: u64,
        graph_idx: usize,
        mut tuples: Vec<Tuple>,
    ) -> Vec<OverlayEffect<QpObject>> {
        if tuples.is_empty() {
            return Vec::new();
        }
        let (sink, proxy, fetch, lifetime) = {
            let Some(q) = self.queries.get(&query_id) else {
                return Vec::new();
            };
            let Some(g) = q.graphs.get(graph_idx) else {
                return Vec::new();
            };
            // (namespace, probe column, probe column already holds the key
            // string, output table of the join results)
            let fetch = g.spec.ops.iter().find_map(|op| match op {
                OperatorSpec::FetchMatches {
                    inner_namespace,
                    probe_col,
                    output_table,
                } => Some((
                    inner_namespace.clone(),
                    probe_col.clone(),
                    false,
                    output_table.clone(),
                )),
                OperatorSpec::FetchByTupleId {
                    inner_namespace,
                    id_col,
                    output_table,
                } => Some((
                    inner_namespace.clone(),
                    id_col.clone(),
                    true,
                    output_table.clone(),
                )),
                _ => None,
            });
            (
                g.spec.sink.clone(),
                q.plan.proxy,
                fetch,
                self.config.publish_lifetime,
            )
        };
        let mut effects = Vec::new();
        // Fetch Matches: pipeline outputs are probe tuples — issue an
        // asynchronous DHT get per probe and join when results come back.
        // Tuples already carrying the join's output table *are* the joined
        // results returning from a completed fetch; those continue to the
        // opgraph's real sink below.
        if let Some((inner_namespace, probe_col, probe_is_key, fetch_output)) = fetch {
            let now = ctx.now();
            let mut completed = Vec::new();
            for probe in tuples {
                if probe.table == fetch_output {
                    completed.push(probe);
                    continue;
                }
                let Some(key) = probe.get(&probe_col).map(|v| {
                    if probe_is_key {
                        // The column already carries the inner relation's
                        // partition-key string (a secondary index tupleID).
                        v.as_str().map(str::to_string).unwrap_or_else(|| v.key_string())
                    } else {
                        v.key_string()
                    }
                }) else {
                    continue;
                };
                let (request_id, get_effects) = self.overlay.get(&inner_namespace, &key, now);
                self.pending_fetches
                    .insert(request_id, (query_id, graph_idx, probe));
                effects.extend(get_effects);
            }
            if completed.is_empty() {
                return effects;
            }
            tuples = completed;
        }
        match sink {
            SinkSpec::ToProxy => {
                self.send_results(ctx, proxy, query_id, tuples);
            }
            SinkSpec::Rehash {
                namespace,
                key_cols,
            } => {
                let now = ctx.now();
                for t in tuples {
                    let Some(key) = t.partition_key(&key_cols) else {
                        continue;
                    };
                    let name = ObjectName::new(namespace.clone(), key, self.rng.next_u64());
                    effects.extend(self.overlay.put(name, QpObject::Tuple(t), lifetime, now));
                }
            }
            SinkSpec::HierarchicalAgg { .. } => {
                // Handled in feed_graph (outputs are absorbed into uplink);
                // reaching here means a fetch-join result fed an agg graph,
                // which we also absorb.
                if let Some(q) = self.queries.get_mut(&query_id) {
                    if let Some(g) = q.graphs.get_mut(graph_idx) {
                        if let Some(uplink) = g.uplink.as_mut() {
                            for t in tuples {
                                uplink.push(t);
                            }
                        }
                    }
                }
            }
        }
        effects
    }

    fn send_results(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        proxy: NodeAddr,
        query_id: u64,
        tuples: Vec<Tuple>,
    ) {
        if tuples.is_empty() {
            return;
        }
        if proxy == ctx.me() {
            self.proxy_receive(ctx, query_id, tuples);
        } else {
            ctx.send(proxy, PierMsg::Results { query_id, tuples });
        }
    }

    fn proxy_receive(
        &mut self,
        ctx: &mut ProgramContext<Self>,
        query_id: u64,
        tuples: Vec<Tuple>,
    ) {
        let state = self.proxied.entry(query_id).or_default();
        if state.done {
            return;
        }
        state.results += tuples.len() as u64;
        for tuple in tuples {
            ctx.output(PierOut::Result { query_id, tuple });
        }
    }

    fn agg_flush(&mut self, ctx: &mut ProgramContext<Self>, query_id: u64, final_flush: bool) {
        let Some(q) = self.queries.get(&query_id) else {
            return;
        };
        let agg_root_id = q.agg_root_id;
        let partial_namespace = q.plan.partial_namespace();
        let agg_root_key = q.plan.agg_root_key();
        let proxy = q.plan.proxy;
        let is_root = self.overlay.router().is_responsible(agg_root_id);
        let graph_count = q.graphs.len();
        let lifetime = self.config.publish_lifetime;

        let mut to_send: Vec<Tuple> = Vec::new();
        let mut final_results: Vec<Tuple> = Vec::new();
        {
            let q = self.queries.get_mut(&query_id).expect("query present");
            for g in q.graphs.iter_mut() {
                let Some(uplink) = g.uplink.as_mut() else {
                    continue;
                };
                let partials = uplink.flush();
                if is_root {
                    if let Some(root) = g.root_merge.as_mut() {
                        for p in &partials {
                            root.merge_partial(p);
                        }
                    }
                } else {
                    to_send.extend(partials);
                }
                if final_flush && is_root {
                    if let Some(root) = g.root_merge.as_mut() {
                        let merged = root.flush();
                        let final_ops = match &g.spec.sink {
                            SinkSpec::HierarchicalAgg { final_ops, .. } => final_ops.clone(),
                            _ => Vec::new(),
                        };
                        let mut finisher =
                            Pipeline::new(final_ops.iter().filter_map(OperatorSpec::build).collect());
                        let mut out = Vec::new();
                        for t in merged {
                            out.extend(finisher.push(t));
                        }
                        out.extend(finisher.flush());
                        final_results.extend(out);
                    }
                }
            }
        }
        // Send buffered partials one hop up the aggregation tree (or directly
        // to the root when the plan asked for flat aggregation).
        let flat = {
            let q = self.queries.get(&query_id).expect("query present");
            q.graphs.iter().any(|g| {
                matches!(
                    g.spec.sink,
                    SinkSpec::HierarchicalAgg { flat: true, .. }
                )
            })
        };
        let now = ctx.now();
        let mut effects = Vec::new();
        for partial in to_send {
            let name = ObjectName::new(
                partial_namespace.clone(),
                agg_root_key.clone(),
                self.rng.next_u64(),
            );
            if flat {
                effects.extend(self.overlay.put(name, QpObject::Tuple(partial), lifetime, now));
            } else {
                effects.extend(self.overlay.send_routed(
                    agg_root_id,
                    name,
                    QpObject::Tuple(partial),
                    lifetime,
                    now,
                ));
            }
        }
        self.drive(ctx, effects);
        if !final_results.is_empty() {
            self.send_results(ctx, proxy, query_id, final_results);
        }
        // Re-arm the periodic flush while the query is still installed.
        if !final_flush && graph_count > 0 {
            if let Some(q) = self.queries.get(&query_id) {
                let hold = q
                    .plan
                    .opgraphs
                    .iter()
                    .find_map(|g| match &g.sink {
                        SinkSpec::HierarchicalAgg { hold, .. } => Some(*hold),
                        _ => None,
                    })
                    .unwrap_or(2_000_000);
                ctx.set_timer(hold, PierTimer::AggFlush { query_id });
            }
        }
    }
}

impl Program for PierNode {
    type Msg = PierMsg;
    type Timer = PierTimer;
    type Out = PierOut;

    fn on_start(&mut self, ctx: &mut ProgramContext<Self>) {
        let now: SimTime = ctx.now();
        let effects = self.overlay.start(self.bootstrap, now);
        self.drive(ctx, effects);
    }

    fn on_message(&mut self, ctx: &mut ProgramContext<Self>, from: NodeAddr, msg: Self::Msg) {
        match msg {
            PierMsg::Dht(m) => {
                let now = ctx.now();
                let effects = self.overlay.on_message(from, m, now);
                self.drive(ctx, effects);
            }
            PierMsg::Results { query_id, tuples } => {
                self.proxy_receive(ctx, query_id, tuples);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ProgramContext<Self>, timer: Self::Timer) {
        match timer {
            PierTimer::Overlay(t) => {
                let now = ctx.now();
                let effects = self.overlay.on_timer(t, now);
                self.drive(ctx, effects);
            }
            PierTimer::AggFlush { query_id } => self.agg_flush(ctx, query_id, false),
            PierTimer::AggFinal { query_id } => self.agg_flush(ctx, query_id, true),
            PierTimer::QueryEnd { query_id } => {
                self.queries.remove(&query_id);
            }
            PierTimer::ProxyDone { query_id } => {
                if let Some(state) = self.proxied.get_mut(&query_id) {
                    if !state.done {
                        state.done = true;
                        ctx.output(PierOut::Done { query_id });
                    }
                }
            }
        }
    }
}
