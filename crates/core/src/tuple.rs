//! Self-describing tuples (§3.3.1) with interned schemas and columnar
//! batches.
//!
//! Because PIER keeps no system catalog, every tuple carries its table name,
//! its column names and its values.  Access methods convert source data into
//! this format; operators address fields by name and silently discard tuples
//! that lack an expected field or carry an incompatible type.
//!
//! The paper's "no catalog" stance is *logical*: every tuple is
//! self-describing **on the wire** and across trust domains.  It does not
//! force the in-memory representation to copy the table name and every
//! column name per tuple.  This module therefore splits a tuple into a
//! [`Schema`] (table + column names + a precomputed column→index map) shared
//! through an `Arc` via the process-wide [`SchemaRegistry`], and a shared
//! slice of [`Value`]s:
//!
//! * cloning a tuple bumps two reference counts (`Arc<Schema>` +
//!   `Arc<[Value]>`) — **allocation-free**, which the `dht_ops` bench pins
//!   with a counting allocator;
//! * [`Tuple::get`] resolves the column once against the schema instead of
//!   linearly comparing strings per access;
//! * operators resolve their column lists to indices **once per schema**
//!   (not once per tuple) through [`ColumnResolver`] / [`ColumnRef`], whose
//!   single-entry caches are keyed by schema identity (`Arc::ptr_eq`) —
//!   interning makes pointer equality a sound schema-equality check;
//! * [`TupleBatch`] groups same-destination tuples for a single overlay
//!   transfer and stores them **columnar**: consecutive same-schema tuples
//!   form a [`ColumnChunk`] holding one typed [`Column`] per column (native
//!   `i64`/`f64` buffers, dictionary/arena strings, validity bitmaps — see
//!   [`crate::column`]), so batch-at-a-time operators scan raw buffers
//!   contiguously and the wire accounting charges each self-describing
//!   schema once per chunk.  A batch of interleaved schemas degrades
//!   gracefully — every schema run becomes its own chunk, the row-major
//!   escape hatch for mixed-schema paths.
//!
//! `Tuple::wire_size` still charges the full self-describing cost (schema +
//! values), exactly as in the paper, so unbatched transfers are accounted
//! honestly.
//!
//! **Invariants.** Schemas are immutable once interned, and the registry
//! only evicts shapes nothing else references
//! ([`SchemaRegistry::sweep_matching`], triggered on query teardown for
//! query-scoped namespaces); `Arc::ptr_eq` on two *live* schema handles is
//! therefore equivalent to deep equality — an evicted shape has no
//! surviving handle to compare against.  A `Tuple`'s value slice is
//! parallel to its schema's columns (same arity), and a `ColumnChunk`'s
//! column vectors are parallel to its schema's columns and all of equal
//! length.

use crate::column::Column;
use crate::value::{Value, ValueRef};
use pier_runtime::WireSize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Column-count threshold below which name lookups linearly scan the column
/// list instead of hashing — faster for the short schemas that dominate.
const LINEAR_SCAN_MAX: usize = 6;

/// The shape of a tuple: its table (or result-set) name and column names,
/// plus a precomputed column→index map for wide schemas.  Schemas are
/// immutable and interned through the [`SchemaRegistry`], so two tuples with
/// the same shape share one allocation and can be compared by pointer.
#[derive(Debug)]
pub struct Schema {
    table: String,
    columns: Vec<String>,
    /// Column → index, built only past [`LINEAR_SCAN_MAX`] columns.
    index: Option<HashMap<String, usize>>,
}

impl Schema {
    fn build(table: String, columns: Vec<String>) -> Schema {
        let index = if columns.len() > LINEAR_SCAN_MAX {
            Some(
                columns
                    .iter()
                    .enumerate()
                    // `rev` keeps the *first* occurrence for duplicated
                    // names, matching a forward linear scan.
                    .rev()
                    .map(|(i, c)| (c.clone(), i))
                    .collect(),
            )
        } else {
            None
        };
        Schema {
            table,
            columns,
            index,
        }
    }

    /// The table (or result-set) name.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The column names, in tuple order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column (first occurrence), if present.
    pub fn position(&self, column: &str) -> Option<usize> {
        match &self.index {
            Some(map) => map.get(column).copied(),
            None => self.columns.iter().position(|c| c == column),
        }
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self, other) || (self.table == other.table && self.columns == other.columns)
    }
}

impl WireSize for Schema {
    fn wire_size(&self) -> usize {
        // The self-describing header: table name plus every column name.
        self.table.wire_size() + self.columns.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

fn schema_hash<'a>(table: &str, columns: impl Iterator<Item = &'a str>) -> u64 {
    let mut h = DefaultHasher::new();
    table.hash(&mut h);
    for c in columns {
        c.hash(&mut h);
    }
    h.finish()
}

/// Process-wide interner mapping (table, columns) shapes to shared
/// [`Schema`]s.  Lookups hash borrowed names, so repeated construction of
/// same-shaped tuples performs no string allocation at all.  Shapes keyed by
/// query-scoped table names (`q{id}.agg`, `q{id}.win`, …) would otherwise
/// accumulate with every query ever installed, so query teardown sweeps
/// no-longer-referenced query-scoped shapes via
/// [`SchemaRegistry::sweep_matching`], keeping the registry bounded by the
/// live working set.
#[derive(Debug, Default)]
pub struct SchemaRegistry {
    shapes: Mutex<HashMap<u64, Vec<Arc<Schema>>>>,
}

impl SchemaRegistry {
    /// The process-wide registry used by [`Tuple`] constructors.
    pub fn global() -> &'static SchemaRegistry {
        static GLOBAL: OnceLock<SchemaRegistry> = OnceLock::new();
        GLOBAL.get_or_init(SchemaRegistry::default)
    }

    /// Number of distinct schemas interned.
    pub fn len(&self) -> usize {
        self.shapes.lock().unwrap().values().map(Vec::len).sum()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern a shape given by borrowed parts; allocation-free when the
    /// shape is already known.
    pub fn intern(&self, table: &str, columns: &[&str]) -> Arc<Schema> {
        let hash = schema_hash(table, columns.iter().copied());
        let mut shapes = self.shapes.lock().unwrap();
        let bucket = shapes.entry(hash).or_default();
        if let Some(existing) = bucket.iter().find(|s| {
            s.table == table
                && s.columns.len() == columns.len()
                && s.columns
                    .iter()
                    .map(String::as_str)
                    .eq(columns.iter().copied())
        }) {
            return Arc::clone(existing);
        }
        let schema = Arc::new(Schema::build(
            table.to_string(),
            columns
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
        ));
        bucket.push(Arc::clone(&schema));
        schema
    }

    /// Intern a shape whose parts are already owned (the owned strings are
    /// dropped when the shape is known).
    pub fn intern_owned(&self, table: String, columns: Vec<String>) -> Arc<Schema> {
        let hash = schema_hash(&table, columns.iter().map(String::as_str));
        let mut shapes = self.shapes.lock().unwrap();
        let bucket = shapes.entry(hash).or_default();
        if let Some(existing) = bucket
            .iter()
            .find(|s| s.table == table && s.columns == columns)
        {
            return Arc::clone(existing);
        }
        let schema = Arc::new(Schema::build(table, columns));
        bucket.push(Arc::clone(&schema));
        schema
    }

    /// Evict interned schemas whose table name satisfies `should_evict` and
    /// that nothing outside the registry references any more (the registry
    /// holds the only `Arc`).  Returns how many schemas were dropped.
    ///
    /// This is the teardown hook for query-scoped namespaces (`q{id}.agg`,
    /// `q{id}.wp`, `q{id}.win`, …): without it the registry accumulates one
    /// shape per query ever installed in the process.  Eviction is safe
    /// because interning takes the registry lock — a schema with a strong
    /// count of 1 cannot gain a new reference concurrently — and dropping an
    /// unreferenced schema cannot invalidate any pointer-identity cache,
    /// since no live tuple or resolver can still point at it.  Schemas that
    /// are still referenced (e.g. by in-flight tuples) survive the sweep and
    /// are collected by a later one once released.
    pub fn sweep_matching(&self, mut should_evict: impl FnMut(&str) -> bool) -> usize {
        let mut shapes = self.shapes.lock().unwrap();
        let mut removed = 0;
        shapes.retain(|_, bucket| {
            bucket.retain(|s| {
                let evict = Arc::strong_count(s) == 1 && should_evict(&s.table);
                if evict {
                    removed += 1;
                }
                !evict
            });
            !bucket.is_empty()
        });
        removed
    }

    /// [`SchemaRegistry::sweep_matching`] restricted to tables under a name
    /// prefix (the common per-query form, e.g. `q42.`).
    pub fn sweep_prefix(&self, prefix: &str) -> usize {
        self.sweep_matching(|table| table.starts_with(prefix))
    }

    /// Number of interned schemas whose table name satisfies `pred` (used by
    /// the eviction tests to observe query-scoped growth without racing on
    /// the global total).
    pub fn count_matching(&self, mut pred: impl FnMut(&str) -> bool) -> usize {
        let shapes = self.shapes.lock().unwrap();
        shapes
            .values()
            .flat_map(|bucket| bucket.iter())
            .filter(|s| pred(&s.table))
            .count()
    }
}

/// A self-describing relational tuple: an interned schema plus the values,
/// parallel to the schema's columns.  Both halves are `Arc`s, so `clone` is
/// two reference-count bumps and no allocation.
#[derive(Debug, Clone)]
pub struct Tuple {
    schema: Arc<Schema>,
    values: Arc<[Value]>,
}

impl Tuple {
    /// Create a tuple from `(column, value)` pairs.
    pub fn new(table: impl AsRef<str>, fields: Vec<(&str, Value)>) -> Self {
        let mut names: Vec<&str> = Vec::with_capacity(fields.len());
        let mut values = Vec::with_capacity(fields.len());
        for (c, v) in fields {
            names.push(c);
            values.push(v);
        }
        Tuple {
            schema: SchemaRegistry::global().intern(table.as_ref(), &names),
            values: values.into(),
        }
    }

    /// Create a tuple directly from an interned schema and parallel values
    /// (the allocation-minimal path used by operators that emit a fixed
    /// output shape).  Panics in debug builds when the arity mismatches.
    pub fn from_schema(schema: Arc<Schema>, values: Vec<Value>) -> Self {
        debug_assert_eq!(schema.arity(), values.len(), "schema/value arity mismatch");
        Tuple {
            schema,
            values: values.into(),
        }
    }

    /// Create a tuple from owned column names and parallel values, interning
    /// the shape once (cheaper than [`Tuple::empty`] + repeated pushes).
    pub fn from_parts(table: impl Into<String>, columns: Vec<String>, values: Vec<Value>) -> Self {
        debug_assert_eq!(columns.len(), values.len(), "column/value arity mismatch");
        Tuple {
            schema: SchemaRegistry::global().intern_owned(table.into(), columns),
            values: values.into(),
        }
    }

    /// Create an empty tuple for a table (columns added via [`Tuple::push`]).
    pub fn empty(table: impl AsRef<str>) -> Self {
        Tuple {
            schema: SchemaRegistry::global().intern(table.as_ref(), &[]),
            values: Vec::new().into(),
        }
    }

    /// The tuple's interned schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The table (or result-set) this tuple belongs to.
    pub fn table(&self) -> &str {
        &self.schema.table
    }

    /// Column names, parallel to [`Tuple::values`].
    pub fn columns(&self) -> &[String] {
        &self.schema.columns
    }

    /// Column values, parallel to [`Tuple::columns`].
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Append a column.  Re-interns the extended shape and rebuilds the
    /// shared value slice; building a tuple of known shape with
    /// [`Tuple::from_schema`]/[`Tuple::from_parts`] is cheaper on hot paths.
    pub fn push(&mut self, column: impl AsRef<str>, value: Value) {
        let mut names: Vec<&str> = Vec::with_capacity(self.schema.columns.len() + 1);
        names.extend(self.schema.columns.iter().map(String::as_str));
        names.push(column.as_ref());
        self.schema = SchemaRegistry::global().intern(&self.schema.table, &names);
        let mut values: Vec<Value> = Vec::with_capacity(self.values.len() + 1);
        values.extend(self.values.iter().cloned());
        values.push(value);
        self.values = values.into();
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Value of the named column, if present.
    pub fn get(&self, column: &str) -> Option<&Value> {
        self.schema.position(column).map(|i| &self.values[i])
    }

    /// Values for several columns at once; `None` if any is missing — the
    /// caller then discards the tuple (best-effort policy).
    pub fn get_all(&self, columns: &[String]) -> Option<Vec<Value>> {
        columns.iter().map(|c| self.get(c).cloned()).collect()
    }

    /// Canonical partitioning-key string for a set of hashing attributes.
    /// Returns `None` when any attribute is missing.
    pub fn partition_key(&self, columns: &[String]) -> Option<String> {
        let mut out = String::with_capacity(12 * columns.len());
        for (i, c) in columns.iter().enumerate() {
            let idx = self.schema.position(c)?;
            if i > 0 {
                out.push('|');
            }
            self.values[idx].write_key(&mut out);
        }
        Some(out)
    }

    /// Canonical key string over pre-resolved column indices (see
    /// [`ColumnResolver`]); the per-tuple cost of key extraction once the
    /// operator has resolved its columns against the schema.
    pub fn key_at(&self, indices: &[usize]) -> String {
        let mut out = String::with_capacity(12 * indices.len());
        for (i, &idx) in indices.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            self.values[idx].write_key(&mut out);
        }
        out
    }

    /// Project onto a subset of columns (missing columns become NULL so the
    /// output shape is predictable for the client).
    pub fn project(&self, columns: &[String]) -> Tuple {
        let names: Vec<&str> = columns.iter().map(String::as_str).collect();
        let schema = SchemaRegistry::global().intern(&self.schema.table, &names);
        let values: Vec<Value> = columns
            .iter()
            .map(|c| self.get(c).cloned().unwrap_or(Value::Null))
            .collect();
        Tuple {
            schema,
            values: values.into(),
        }
    }

    /// The schema a [`Tuple::join_with`] of these two schemas produces:
    /// left columns, then right columns with collisions prefixed by the
    /// right table name.  Operators cache the result per input-schema pair
    /// (pointer identity) so streaming joins intern once, not per output.
    pub fn join_schema(left: &Schema, right: &Schema, result_table: &str) -> Arc<Schema> {
        let mut names: Vec<String> = Vec::with_capacity(left.columns.len() + right.columns.len());
        names.extend(left.columns.iter().cloned());
        for c in &right.columns {
            if names.iter().any(|n| n == c) {
                names.push(format!("{}.{}", right.table, c));
            } else {
                names.push(c.clone());
            }
        }
        SchemaRegistry::global().intern_owned(result_table.to_string(), names)
    }

    /// Concatenate two tuples (used by join operators).  Columns of the
    /// right tuple are prefixed with its table name when they would collide.
    pub fn join_with(&self, other: &Tuple, result_table: &str) -> Tuple {
        let schema = Tuple::join_schema(&self.schema, &other.schema, result_table);
        self.join_with_schema(other, schema)
    }

    /// [`Tuple::join_with`] with the output schema already resolved (the
    /// per-output cost is then just concatenating the values).
    pub fn join_with_schema(&self, other: &Tuple, schema: Arc<Schema>) -> Tuple {
        debug_assert_eq!(schema.arity(), self.values.len() + other.values.len());
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend(self.values.iter().cloned());
        values.extend(other.values.iter().cloned());
        Tuple {
            schema,
            values: values.into(),
        }
    }

    /// Rename the tuple's table (e.g. when materialising a partial result
    /// set under a query-specific namespace).
    pub fn with_table(mut self, table: impl AsRef<str>) -> Tuple {
        let names: Vec<&str> = self.schema.columns.iter().map(String::as_str).collect();
        self.schema = SchemaRegistry::global().intern(table.as_ref(), &names);
        self
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.schema, &other.schema) || self.schema == other.schema)
            && self.values == other.values
    }
}

impl WireSize for Tuple {
    fn wire_size(&self) -> usize {
        // Self-describing: the table name and every column name travel with
        // the tuple, exactly as in the paper.
        self.schema.wire_size() + self.values.iter().map(WireSize::wire_size).sum::<usize>() + 8
    }
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.table())?;
        for (i, (c, v)) in self.columns().iter().zip(self.values.iter()).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}={v}")?;
        }
        write!(f, ")")
    }
}

/// A run of same-schema tuples stored column-wise: one typed [`Column`] per
/// schema column, all of equal length — native `i64`/`f64` buffers,
/// dictionary or arena strings, validity bitmaps for nulls, with a
/// `Vec<Value>` fallback for mixed-type columns.  Batch-at-a-time operators
/// resolve their columns against [`ColumnChunk::schema`] once and then scan
/// the relevant [`ColumnChunk::col`]s' raw buffers contiguously — no per-row
/// schema dispatch, no per-row name lookup, no per-element enum tag on the
/// typed layouts.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnChunk {
    schema: Arc<Schema>,
    /// `columns[c]` holds column `c`'s rows; the vector is parallel to
    /// `schema.columns()` and every column has [`ColumnChunk::rows`] rows.
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnChunk {
    fn with_capacity(schema: Arc<Schema>, _capacity: usize) -> Self {
        let columns = (0..schema.arity()).map(|_| Column::new()).collect();
        ColumnChunk {
            schema,
            columns,
            rows: 0,
        }
    }

    fn push_row(&mut self, tuple: &Tuple) {
        debug_assert!(Arc::ptr_eq(&self.schema, tuple.schema()));
        for (col, v) in self.columns.iter_mut().zip(tuple.values()) {
            col.push_value(v);
        }
        self.rows += 1;
    }

    /// Build a one-row chunk holding just `tuple` (how single-tuple pushes
    /// enter chunk-native operator state, e.g. the symmetric hash join's).
    pub fn from_tuple(tuple: &Tuple) -> Self {
        let mut chunk = ColumnChunk::with_capacity(Arc::clone(tuple.schema()), 1);
        chunk.push_row(tuple);
        chunk
    }

    /// Assemble a chunk directly from pre-built typed columns (the way
    /// batch-at-a-time operators emit their output without ever
    /// materialising a row).  `rows` disambiguates the row count for
    /// zero-column schemas; every column must have exactly that length and
    /// the vector must be parallel to the schema's columns.
    pub fn from_columns(schema: Arc<Schema>, columns: Vec<Column>, rows: usize) -> Self {
        debug_assert_eq!(
            schema.arity(),
            columns.len(),
            "schema/column arity mismatch"
        );
        debug_assert!(
            columns.iter().all(|c| c.len() == rows),
            "column lengths must equal the row count"
        );
        ColumnChunk {
            schema,
            columns,
            rows,
        }
    }

    /// [`ColumnChunk::from_columns`] from row-major `Vec<Value>` columns,
    /// running layout inference on each (the ingest path tests and the
    /// differential oracle build reference chunks through this).
    pub fn from_value_columns(schema: Arc<Schema>, columns: Vec<Vec<Value>>, rows: usize) -> Self {
        ColumnChunk::from_columns(
            schema,
            columns.into_iter().map(Column::from_values).collect(),
            rows,
        )
    }

    /// The shared schema of every row in this chunk.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// One column's typed buffer, contiguous across the chunk's rows.
    pub fn col(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Materialise row `r` as a [`Tuple`] (one slice allocation; dictionary
    /// strings are shared with the chunk, arena strings are copied out).
    pub fn row(&self, r: usize) -> Tuple {
        let values: Vec<Value> = self.columns.iter().map(|c| c.value(r)).collect();
        Tuple::from_schema(Arc::clone(&self.schema), values)
    }

    /// Borrow row `r` as a [`ChunkRow`] — the allocation-free counterpart of
    /// [`ColumnChunk::row`] for operators that only need to *read* the row.
    pub fn row_view(&self, r: usize) -> ChunkRow<'_> {
        debug_assert!(r < self.rows);
        ChunkRow { chunk: self, r }
    }

    /// Copy the rows selected by `mask` (parallel to the chunk's rows) into
    /// a new chunk of the same schema.  The survivor indices are computed
    /// once and every column is gathered through its typed layout — emitting
    /// a whole filtered chunk costs `O(columns)` allocations regardless of
    /// the row count, never a per-row `Tuple` materialisation.
    pub fn filter(&self, mask: &[bool]) -> ColumnChunk {
        debug_assert_eq!(mask.len(), self.rows, "mask must be parallel to rows");
        let kept: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter(|(_, m)| **m)
            .map(|(r, _)| r as u32)
            .collect();
        self.gather(&kept)
    }

    /// Gather the given rows (in order, duplicates allowed) into a new chunk
    /// of the same schema — the building block of filters and of the
    /// chunk-native join's match-index output path.
    pub fn gather(&self, idx: &[u32]) -> ColumnChunk {
        ColumnChunk {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.gather(idx)).collect(),
            rows: idx.len(),
        }
    }

    /// Canonical key string for row `r` over pre-resolved column indices —
    /// the chunk-level counterpart of [`Tuple::key_at`].
    pub fn key_at(&self, indices: &[usize], r: usize) -> String {
        let mut out = String::with_capacity(12 * indices.len());
        self.write_key_at(indices, r, &mut out);
        out
    }

    /// Write the key of [`ColumnChunk::key_at`] into a caller-owned buffer,
    /// so per-row key loops can reuse one allocation.
    pub fn write_key_at(&self, indices: &[usize], r: usize, out: &mut String) {
        for (i, &idx) in indices.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            self.columns[idx].value_ref(r).write_key(out);
        }
    }

    /// Iterate the chunk's rows as materialised tuples.
    pub fn iter_rows(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.rows).map(|r| self.row(r))
    }
}

impl ColumnChunk {
    /// Wire bytes of the chunk body: exactly the length of
    /// [`ColumnChunk::encode_body`]'s output, computed without encoding.
    /// The self-describing schema header itself is charged by the containing
    /// batch, once per *distinct* schema (chunks of an interleaved batch
    /// share one dictionary entry).
    fn body_wire_size(&self) -> usize {
        2 + 4 + self.columns.iter().map(Column::encoded_len).sum::<usize>()
    }

    /// Append the chunk body's byte encoding: a `u16` column count, a `u32`
    /// row count, then each column's typed encoding (dictionary pages, byte
    /// arenas, packed validity words — see [`Column::encode_body`]).  The
    /// schema is *not* encoded; it travels (or is persisted) separately and
    /// is required to decode.
    pub fn encode_body(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.columns.len() as u16).to_le_bytes());
        buf.extend_from_slice(&(self.rows as u32).to_le_bytes());
        for col in &self.columns {
            col.encode_body(buf);
        }
    }

    /// Decode a chunk body for `schema` from the front of `buf`, returning
    /// the chunk and the bytes consumed.  `None` on truncated input or a
    /// column count that does not match the schema's arity.
    pub fn decode_body(schema: Arc<Schema>, buf: &[u8]) -> Option<(ColumnChunk, usize)> {
        let ncols = u16::from_le_bytes(buf.get(..2)?.try_into().ok()?) as usize;
        if ncols != schema.arity() {
            return None;
        }
        let rows = u32::from_le_bytes(buf.get(2..6)?.try_into().ok()?) as usize;
        let mut at = 6;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let (col, used) = Column::decode_body(rows, buf.get(at..)?)?;
            columns.push(col);
            at += used;
        }
        Some((
            ColumnChunk {
                schema,
                columns,
                rows,
            },
            at,
        ))
    }
}

impl WireSize for ColumnChunk {
    fn wire_size(&self) -> usize {
        // A chunk on its own carries its schema header plus the body.
        self.schema.wire_size() + self.body_wire_size()
    }
}

/// A borrowed view of one row of a [`ColumnChunk`]: positional access to the
/// row's values without materialising a [`Tuple`] (no `Arc<[Value]>`, no
/// value clones).  This is what selection masks, eddy filters and compiled
/// expressions ([`crate::expr::CompiledExpr::eval_view`]) read on the
/// survivor hot path.
#[derive(Debug, Clone, Copy)]
pub struct ChunkRow<'a> {
    chunk: &'a ColumnChunk,
    r: usize,
}

impl<'a> ChunkRow<'a> {
    /// The schema shared by every row of the underlying chunk.
    pub fn schema(&self) -> &'a Arc<Schema> {
        &self.chunk.schema
    }

    /// The chunk this row belongs to.
    pub fn chunk(&self) -> &'a ColumnChunk {
        self.chunk
    }

    /// This row's index within its chunk.
    pub fn index(&self) -> usize {
        self.r
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.chunk.schema.arity()
    }

    /// The value of column `idx` — positional, the resolved-index access
    /// every per-schema cache ([`ColumnResolver`], compiled expressions)
    /// boils down to.  Returns a borrowed [`ValueRef`] (the typed layouts
    /// have no stored [`Value`] to point at); the view is copy-free on every
    /// layout.
    pub fn get(&self, idx: usize) -> ValueRef<'a> {
        self.chunk.columns[idx].value_ref(self.r)
    }

    /// The value of the named column, resolved through the schema (prefer
    /// [`ChunkRow::get`] with a pre-resolved index on hot paths).
    pub fn get_named(&self, column: &str) -> Option<ValueRef<'a>> {
        self.chunk.schema.position(column).map(|i| self.get(i))
    }

    /// Canonical key string over pre-resolved column indices — identical to
    /// [`Tuple::key_at`] on the materialised row.
    pub fn key_at(&self, indices: &[usize]) -> String {
        self.chunk.key_at(indices, self.r)
    }

    /// Materialise the row as an owned [`Tuple`] (the escape hatch for
    /// consumers that must retain it).
    pub fn to_tuple(&self) -> Tuple {
        self.chunk.row(self.r)
    }
}

/// A batch of tuples coalesced for one overlay transfer (the unit the
/// executor's rehash/exchange and partial-aggregate paths ship; see
/// `pier_dht::DhtMessage::PutBatch` for the per-destination grouping).
///
/// Internally the batch is **columnar**: consecutive same-schema tuples are
/// grouped into [`ColumnChunk`]s.  A single-schema batch — the common case,
/// since batches are keyed by destination namespace — is exactly one chunk;
/// a pathologically interleaved mixed-schema batch degrades to one chunk per
/// row, which is the row-major layout (the escape hatch costs nothing
/// extra).  Row order is preserved across the columnar round-trip:
/// `TupleBatch::new(rows).into_tuples() == rows`, which the property tests
/// pin bit-for-bit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TupleBatch {
    chunks: Vec<ColumnChunk>,
    len: usize,
}

impl TupleBatch {
    /// Wrap a set of tuples headed for the same destination, grouping
    /// consecutive same-schema runs into columnar chunks.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        let len = tuples.len();
        let mut chunks: Vec<ColumnChunk> = Vec::new();
        let mut i = 0;
        while i < len {
            // Measure the same-schema run first (pointer compares), so each
            // chunk's column vectors are allocated at exactly the run
            // length — an interleaved mixed-schema batch costs one exact
            // allocation per column per run, never `len`-sized reserves.
            let schema = tuples[i].schema();
            let mut end = i + 1;
            while end < len && Arc::ptr_eq(tuples[end].schema(), schema) {
                end += 1;
            }
            let mut chunk = ColumnChunk::with_capacity(Arc::clone(schema), end - i);
            for t in &tuples[i..end] {
                chunk.push_row(t);
            }
            chunks.push(chunk);
            i = end;
        }
        TupleBatch { chunks, len }
    }

    /// Assemble a batch directly from columnar chunks, preserving their
    /// order (empty chunks are dropped).  The chunk-to-chunk stage interface
    /// builds its outputs this way — survivors never pass through a
    /// row-major `Vec<Tuple>` in between.
    pub fn from_chunks(chunks: Vec<ColumnChunk>) -> Self {
        let mut batch = TupleBatch::default();
        for chunk in chunks {
            batch.push_chunk(chunk);
        }
        batch
    }

    /// Append a whole chunk to the batch (no-op for empty chunks).
    pub fn push_chunk(&mut self, chunk: ColumnChunk) {
        if chunk.rows() == 0 {
            return;
        }
        self.len += chunk.rows();
        self.chunks.push(chunk);
    }

    /// Append one tuple, extending the last chunk when the schema matches
    /// (so incrementally built batches still form same-schema runs).
    pub fn push_tuple(&mut self, tuple: Tuple) {
        match self.chunks.last_mut() {
            Some(last) if Arc::ptr_eq(&last.schema, tuple.schema()) => last.push_row(&tuple),
            _ => {
                let mut chunk = ColumnChunk::with_capacity(Arc::clone(tuple.schema()), 1);
                chunk.push_row(&tuple);
                self.chunks.push(chunk);
            }
        }
        self.len += 1;
    }

    /// Append every row of `other` after this batch's rows.
    pub fn append(&mut self, other: TupleBatch) {
        for chunk in other.chunks {
            self.push_chunk(chunk);
        }
    }

    /// The columnar chunks, in row order.
    pub fn chunks(&self) -> &[ColumnChunk] {
        &self.chunks
    }

    /// Iterate the batched tuples in their original order (rows are
    /// materialised on the fly; the values are shared, not copied).
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.chunks.iter().flat_map(ColumnChunk::iter_rows)
    }

    /// Consume the batch back into row-major tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.len);
        out.extend(self.iter());
        out
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl WireSize for TupleBatch {
    fn wire_size(&self) -> usize {
        // 4-byte chunk count plus the columnar chunk bodies, with every
        // *distinct* schema's self-describing header charged once per batch
        // (a shared dictionary, so interleaved-schema batches do not pay
        // the header once per run).
        let mut seen: Vec<*const Schema> = Vec::new();
        let mut size = 4;
        for chunk in &self.chunks {
            let ptr = Arc::as_ptr(&chunk.schema);
            if !seen.contains(&ptr) {
                seen.push(ptr);
                size += chunk.schema.wire_size();
            }
            size += chunk.body_wire_size();
        }
        size
    }
}

/// A multi-column resolver caching the column→index mapping per schema.
/// Operators construct one per column list and resolve **once per schema**
/// instead of once per tuple; the interned-schema pointer is the cache key.
#[derive(Debug, Clone)]
pub struct ColumnResolver {
    columns: Vec<String>,
    cached_schema: Option<Arc<Schema>>,
    /// `None` while `cached_schema` is `None`, or when the cached schema is
    /// missing at least one of the columns (the tuple is then malformed for
    /// this operator and discarded, per §3.3.4).
    cached: Option<Vec<usize>>,
}

impl ColumnResolver {
    /// A resolver for the given column list.
    pub fn new(columns: Vec<String>) -> Self {
        ColumnResolver {
            columns,
            cached_schema: None,
            cached: None,
        }
    }

    /// The column list being resolved.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    fn ensure(&mut self, schema: &Arc<Schema>) {
        if self
            .cached_schema
            .as_ref()
            .is_some_and(|s| Arc::ptr_eq(s, schema))
        {
            return;
        }
        self.cached = self.columns.iter().map(|c| schema.position(c)).collect();
        self.cached_schema = Some(Arc::clone(schema));
    }

    /// The indices of the columns in `schema`; `None` when any is missing
    /// (discard the data).  The chunk-level entry point of the resolver —
    /// batch operators call this once per [`ColumnChunk`].
    pub fn indices_for(&mut self, schema: &Arc<Schema>) -> Option<&[usize]> {
        self.ensure(schema);
        self.cached.as_deref()
    }

    /// The indices of the columns in `tuple`'s schema; `None` when any is
    /// missing (discard the tuple).
    pub fn indices(&mut self, tuple: &Tuple) -> Option<&[usize]> {
        self.indices_for(tuple.schema())
    }

    /// Canonical partition/group key over the resolved columns.
    pub fn key(&mut self, tuple: &Tuple) -> Option<String> {
        self.ensure(tuple.schema());
        Some(tuple.key_at(self.cached.as_deref()?))
    }

    /// Cloned values of the resolved columns, in column-list order.
    pub fn values(&mut self, tuple: &Tuple) -> Option<Vec<Value>> {
        self.ensure(tuple.schema());
        let idxs = self.cached.as_deref()?;
        Some(idxs.iter().map(|&i| tuple.values()[i].clone()).collect())
    }
}

/// A single-column [`ColumnResolver`]: resolves one column per schema and
/// hands back the value (or `None` when the column is absent).
#[derive(Debug, Clone)]
pub struct ColumnRef {
    column: String,
    cached_schema: Option<Arc<Schema>>,
    cached: Option<usize>,
}

impl ColumnRef {
    /// A resolver for one column.
    pub fn new(column: impl Into<String>) -> Self {
        ColumnRef {
            column: column.into(),
            cached_schema: None,
            cached: None,
        }
    }

    /// The column being resolved.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// The column's index in `schema`, if present — the chunk-level entry
    /// point (batch operators call this once per [`ColumnChunk`]).
    pub fn index_for(&mut self, schema: &Arc<Schema>) -> Option<usize> {
        if !self
            .cached_schema
            .as_ref()
            .is_some_and(|s| Arc::ptr_eq(s, schema))
        {
            self.cached = schema.position(&self.column);
            self.cached_schema = Some(Arc::clone(schema));
        }
        self.cached
    }

    /// The column's value in `tuple`, if present.
    pub fn get<'t>(&mut self, tuple: &'t Tuple) -> Option<&'t Value> {
        self.index_for(tuple.schema()).map(|i| &tuple.values()[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        Tuple::new(
            "events",
            vec![
                ("src", Value::Str("10.0.0.1".into())),
                ("port", Value::Int(443)),
                ("blocked", Value::Bool(true)),
            ],
        )
    }

    #[test]
    fn get_by_name() {
        let tup = t();
        assert_eq!(tup.get("port"), Some(&Value::Int(443)));
        assert_eq!(tup.get("missing"), None);
        assert_eq!(tup.arity(), 3);
    }

    #[test]
    fn same_shape_shares_one_interned_schema() {
        let a = t();
        let b = t();
        assert!(Arc::ptr_eq(a.schema(), b.schema()));
        // Cloning shares too, and push re-interns to a distinct shape.
        let c = a.clone();
        assert!(Arc::ptr_eq(a.schema(), c.schema()));
        let mut d = a.clone();
        d.push("extra", Value::Int(1));
        assert!(!Arc::ptr_eq(a.schema(), d.schema()));
        assert_eq!(d.arity(), 4);
        // The same extended shape interns back to one schema.
        let mut e = b.clone();
        e.push("extra", Value::Int(2));
        assert!(Arc::ptr_eq(d.schema(), e.schema()));
    }

    #[test]
    fn clone_shares_schema_and_values() {
        let a = t();
        let b = a.clone();
        assert!(Arc::ptr_eq(a.schema(), b.schema()));
        assert!(std::ptr::eq(a.values().as_ptr(), b.values().as_ptr()));
    }

    #[test]
    fn wide_schemas_use_the_index_map() {
        let fields: Vec<(String, Value)> =
            (0..12).map(|i| (format!("c{i}"), Value::Int(i))).collect();
        let tup = Tuple::new(
            "wide",
            fields
                .iter()
                .map(|(c, v)| (c.as_str(), v.clone()))
                .collect(),
        );
        for i in 0..12 {
            assert_eq!(tup.get(&format!("c{i}")), Some(&Value::Int(i)));
        }
        assert_eq!(tup.get("c99"), None);
    }

    #[test]
    fn partition_key_is_canonical_and_requires_all_columns() {
        let tup = t();
        let k1 = tup.partition_key(&["src".to_string()]).unwrap();
        let k2 = tup.partition_key(&["src".to_string()]).unwrap();
        assert_eq!(k1, k2);
        assert!(tup
            .partition_key(&["src".to_string(), "missing".to_string()])
            .is_none());
        let multi = tup
            .partition_key(&["src".to_string(), "port".to_string()])
            .unwrap();
        assert!(multi.contains('|'));
    }

    #[test]
    fn resolver_key_matches_partition_key_across_schemas() {
        let cols = vec!["src".to_string(), "port".to_string()];
        let mut resolver = ColumnResolver::new(cols.clone());
        let a = t();
        assert_eq!(resolver.key(&a), a.partition_key(&cols));
        // A different schema re-resolves correctly.
        let b = Tuple::new(
            "other",
            vec![
                ("port", Value::Int(80)),
                ("src", Value::Str("10.9.9.9".into())),
            ],
        );
        assert_eq!(resolver.key(&b), b.partition_key(&cols));
        // Malformed tuples resolve to None (and that is cached too).
        let c = Tuple::new("other", vec![("port", Value::Int(80))]);
        assert_eq!(resolver.key(&c), None);
        assert_eq!(resolver.key(&c), None);
        assert_eq!(resolver.values(&a).unwrap().len(), 2);
    }

    #[test]
    fn column_ref_resolves_per_schema() {
        let mut port = ColumnRef::new("port");
        assert_eq!(port.get(&t()), Some(&Value::Int(443)));
        let other = Tuple::new("x", vec![("a", Value::Int(1))]);
        assert_eq!(port.get(&other), None);
        assert_eq!(port.get(&t()), Some(&Value::Int(443)));
        assert_eq!(port.column(), "port");
    }

    #[test]
    fn projection_fills_missing_with_null() {
        let tup = t();
        let p = tup.project(&["port".to_string(), "nope".to_string()]);
        assert_eq!(p.values(), &[Value::Int(443), Value::Null]);
        assert_eq!(p.columns().len(), 2);
    }

    #[test]
    fn join_concatenates_and_disambiguates() {
        let left = Tuple::new("r", vec![("id", Value::Int(1)), ("x", Value::Int(10))]);
        let right = Tuple::new("s", vec![("id", Value::Int(1)), ("y", Value::Int(20))]);
        let joined = left.join_with(&right, "r_s");
        assert_eq!(joined.table(), "r_s");
        assert_eq!(joined.get("x"), Some(&Value::Int(10)));
        assert_eq!(joined.get("y"), Some(&Value::Int(20)));
        assert_eq!(joined.get("s.id"), Some(&Value::Int(1)));
        assert_eq!(joined.arity(), 4);
    }

    #[test]
    fn wire_size_counts_schema_and_values() {
        let tup = t();
        assert!(tup.wire_size() > 30);
        let bigger = {
            let mut b = tup.clone();
            b.push("payload", Value::bytes(vec![0u8; 500]));
            b
        };
        assert!(bigger.wire_size() > tup.wire_size() + 500);
    }

    #[test]
    fn single_schema_batch_is_one_columnar_chunk() {
        let tuples: Vec<Tuple> = (0..10)
            .map(|i| {
                Tuple::new(
                    "events",
                    vec![
                        ("src", Value::Str(format!("10.0.0.{i}").into())),
                        ("port", Value::Int(i)),
                    ],
                )
            })
            .collect();
        let batch = TupleBatch::new(tuples.clone());
        assert_eq!(batch.chunks().len(), 1);
        let chunk = &batch.chunks()[0];
        assert_eq!(chunk.rows(), 10);
        assert_eq!(
            chunk.col(1).to_values(),
            (0..10).map(Value::Int).collect::<Vec<_>>()
        );
        // Round trip preserves order and content.
        assert_eq!(batch.clone().into_tuples(), tuples);
    }

    #[test]
    fn mixed_schema_batch_degrades_to_per_run_chunks() {
        let a = Tuple::new("r", vec![("x", Value::Int(1))]);
        let b = Tuple::new("s", vec![("y", Value::Int(2))]);
        let rows = vec![a.clone(), a.clone(), b.clone(), a.clone()];
        let batch = TupleBatch::new(rows.clone());
        assert_eq!(batch.chunks().len(), 3, "runs of [a,a], [b], [a]");
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.into_tuples(), rows);
    }

    #[test]
    fn batch_wire_size_charges_each_schema_once() {
        let tuples: Vec<Tuple> = (0..10)
            .map(|i| {
                Tuple::new(
                    "events",
                    vec![
                        ("src", Value::Str(format!("10.0.0.{i}").into())),
                        ("port", Value::Int(i)),
                    ],
                )
            })
            .collect();
        let unbatched: usize = tuples.iter().map(WireSize::wire_size).sum();
        let batch = TupleBatch::new(tuples.clone());
        assert_eq!(batch.len(), 10);
        assert!(!batch.is_empty());
        assert!(
            batch.wire_size() < unbatched,
            "batch {} must undercut {} unbatched bytes",
            batch.wire_size(),
            unbatched
        );
        // The saving is at least the schema header repeated 9 extra times
        // minus the chunk framing (the columnar layout additionally drops
        // the per-row overhead).
        let schema_bytes = tuples[0].schema().wire_size();
        assert!(batch.wire_size() <= unbatched - 9 * schema_bytes + 4 + 2 * 10);
        assert_eq!(batch.iter().count(), batch.clone().into_tuples().len());
    }

    #[test]
    fn interleaved_batch_charges_each_distinct_schema_once() {
        let a = Tuple::new("r", vec![("x", Value::Int(1))]);
        let b = Tuple::new("s", vec![("y", Value::Int(2))]);
        // 16 alternating rows: 16 runs but only 2 distinct schemas — the
        // wire dictionary must charge 2 headers, not 16.
        let rows: Vec<Tuple> = (0..16)
            .map(|i| if i % 2 == 0 { a.clone() } else { b.clone() })
            .collect();
        let batch = TupleBatch::new(rows.clone());
        assert_eq!(batch.chunks().len(), 16);
        let unbatched: usize = rows.iter().map(WireSize::wire_size).sum();
        assert!(
            batch.wire_size() < unbatched,
            "interleaved batch {} must still undercut {} unbatched bytes",
            batch.wire_size(),
            unbatched
        );
        let schema_bytes = a.schema().wire_size() + b.schema().wire_size();
        // Headers beyond the two dictionary entries would blow this bound.
        assert!(batch.wire_size() < schema_bytes + unbatched - 7 * schema_bytes / 2);
    }

    #[test]
    fn chunk_key_at_matches_tuple_key_at() {
        let tuples: Vec<Tuple> = (0..5)
            .map(|i| {
                Tuple::new(
                    "events",
                    vec![
                        ("src", Value::Str(format!("10.0.0.{i}").into())),
                        ("port", Value::Int(i)),
                    ],
                )
            })
            .collect();
        let batch = TupleBatch::new(tuples.clone());
        let chunk = &batch.chunks()[0];
        let indices = [1usize, 0usize];
        for (r, t) in tuples.iter().enumerate() {
            assert_eq!(chunk.key_at(&indices, r), t.key_at(&indices));
        }
    }

    #[test]
    fn sweep_evicts_unreferenced_query_scoped_schemas() {
        // A private registry so the test does not race other tests on the
        // process-wide one; the mechanics are identical.
        let registry = SchemaRegistry::default();
        // Install-and-drop 1k queries' worth of query-scoped shapes, with
        // the per-teardown sweep a PierNode performs: the registry must stay
        // bounded instead of accumulating 3k schemas.
        let mut peak = 0;
        for q in 0..1_000 {
            let agg = registry.intern(&format!("q{q}.agg"), &["src", "count"]);
            let wp = registry.intern(&format!("q{q}.wp"), &["_w", "src", "count"]);
            let win = registry.intern(
                &format!("q{q}.win"),
                &["window_start", "window_end", "src", "count"],
            );
            peak = peak.max(registry.len());
            drop((agg, wp, win)); // query teardown releases the references
            registry.sweep_prefix(&format!("q{q}."));
        }
        assert_eq!(registry.len(), 0, "all query-scoped shapes evicted");
        assert!(peak <= 3, "at most one live query's shapes at a time");
    }

    #[test]
    fn sweep_spares_referenced_schemas_until_released() {
        let registry = SchemaRegistry::default();
        let held = registry.intern("q7.agg", &["src"]);
        let _gone = registry.intern("q7.wp", &["_w", "src"]);
        drop(_gone);
        // The referenced shape survives; the unreferenced one goes.
        assert_eq!(registry.sweep_prefix("q7."), 1);
        assert_eq!(registry.len(), 1);
        // Re-interning the held shape still hits the same allocation.
        let again = registry.intern("q7.agg", &["src"]);
        assert!(Arc::ptr_eq(&held, &again));
        // Non-query tables are not swept by the teardown matcher (the very
        // predicate `PierNode::uninstall_query` sweeps with).
        let user = registry.intern("quotes.live", &["x"]);
        drop(user);
        assert_eq!(
            registry.sweep_matching(crate::node::is_query_scoped_table),
            0,
            "a user table starting with 'q' must not be swept"
        );
        drop((held, again));
        assert_eq!(registry.sweep_prefix("q7."), 1);
        assert_eq!(registry.count_matching(|t| t.starts_with("q7.")), 0);
    }

    #[test]
    fn chunk_filter_and_row_view_match_materialised_rows() {
        let tuples: Vec<Tuple> = (0..10)
            .map(|i| {
                Tuple::new(
                    "events",
                    vec![
                        ("src", Value::Str(format!("10.0.0.{i}").into())),
                        ("port", Value::Int(i)),
                    ],
                )
            })
            .collect();
        let batch = TupleBatch::new(tuples.clone());
        let chunk = &batch.chunks()[0];
        // Row views read the same values positionally and by name.
        for (r, t) in tuples.iter().enumerate() {
            let view = chunk.row_view(r);
            assert_eq!(view.get(1), ValueRef::Int(r as i64));
            assert_eq!(
                view.get_named("src").map(|v| v.to_value()),
                t.get("src").cloned()
            );
            assert!(view.get_named("nope").is_none());
            assert_eq!(view.key_at(&[1, 0]), t.key_at(&[1, 0]));
            assert_eq!(view.to_tuple(), *t);
            assert_eq!(view.arity(), 2);
            assert_eq!(view.index(), r);
            assert!(Arc::ptr_eq(view.schema(), t.schema()));
        }
        // Filtering by mask keeps exactly the selected rows, in order.
        let mask: Vec<bool> = (0..10).map(|r| r % 3 == 0).collect();
        let filtered = chunk.filter(&mask);
        assert_eq!(filtered.rows(), 4);
        assert!(Arc::ptr_eq(filtered.schema(), chunk.schema()));
        let expected: Vec<Tuple> = tuples
            .iter()
            .zip(&mask)
            .filter(|(_, m)| **m)
            .map(|(t, _)| t.clone())
            .collect();
        assert_eq!(filtered.iter_rows().collect::<Vec<_>>(), expected);
        // All-false and all-true masks degenerate correctly.
        assert_eq!(chunk.filter(&[false; 10]).rows(), 0);
        assert_eq!(chunk.filter(&[true; 10]), *chunk);
    }

    #[test]
    fn incremental_batch_builders_preserve_runs_and_order() {
        let a = Tuple::new("r", vec![("x", Value::Int(1))]);
        let b = Tuple::new("s", vec![("y", Value::Int(2))]);
        let mut batch = TupleBatch::default();
        assert!(batch.is_empty());
        batch.push_tuple(a.clone());
        batch.push_tuple(a.clone());
        batch.push_tuple(b.clone());
        batch.push_tuple(a.clone());
        // Same-schema neighbours coalesce into one chunk per run.
        assert_eq!(batch.chunks().len(), 3);
        assert_eq!(batch.len(), 4);
        assert_eq!(
            batch.clone().into_tuples(),
            vec![a.clone(), a.clone(), b.clone(), a.clone()]
        );
        // Appending another batch preserves its rows after ours.
        let mut other = TupleBatch::new(vec![b.clone(), b.clone()]);
        other.append(batch.clone());
        assert_eq!(other.len(), 6);
        assert_eq!(other.into_tuples()[..2], vec![b.clone(), b.clone()]);
        // from_chunks drops empties and keeps order.
        let rebuilt = TupleBatch::from_chunks(
            batch
                .chunks()
                .iter()
                .cloned()
                .chain(std::iter::once(batch.chunks()[0].filter(&[false, false])))
                .collect(),
        );
        assert_eq!(rebuilt.len(), 4);
        assert_eq!(rebuilt.chunks().len(), 3);
    }

    #[test]
    fn chunk_codec_round_trips_and_matches_wire_size() {
        let tuples: Vec<Tuple> = (0..20)
            .map(|i| {
                Tuple::new(
                    "events",
                    vec![
                        ("src", Value::str(format!("10.0.0.{}", i % 3))),
                        ("port", if i == 7 { Value::Null } else { Value::Int(i) }),
                        ("load", Value::Float(i as f64 / 2.0)),
                    ],
                )
            })
            .collect();
        let batch = TupleBatch::new(tuples.clone());
        let chunk = &batch.chunks()[0];
        let mut buf = Vec::new();
        chunk.encode_body(&mut buf);
        assert_eq!(buf.len(), chunk.body_wire_size());
        let (back, used) = ColumnChunk::decode_body(Arc::clone(chunk.schema()), &buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(&back, chunk);
        assert_eq!(back.iter_rows().collect::<Vec<_>>(), tuples);
        let mut again = Vec::new();
        back.encode_body(&mut again);
        assert_eq!(buf, again, "decode→re-encode must be bit-stable");
        // Truncated bodies and arity mismatches are rejected.
        assert!(
            ColumnChunk::decode_body(Arc::clone(chunk.schema()), &buf[..buf.len() - 1]).is_none()
        );
        let other = Tuple::new("x", vec![("a", Value::Int(1))]);
        assert!(ColumnChunk::decode_body(Arc::clone(other.schema()), &buf).is_none());
    }

    #[test]
    fn display_is_readable() {
        let s = t().to_string();
        assert!(s.starts_with("events("));
        assert!(s.contains("port=443"));
    }
}
