//! Self-describing tuples (§3.3.1).
//!
//! Because PIER keeps no system catalog, every tuple carries its table name,
//! its column names and its values.  Access methods convert source data into
//! this format; operators address fields by name and silently discard tuples
//! that lack an expected field or carry an incompatible type.

use crate::value::Value;
use pier_runtime::WireSize;

/// A self-describing relational tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// The table (or result-set) this tuple belongs to.
    pub table: String,
    /// Column names, parallel to `values`.
    pub columns: Vec<String>,
    /// Column values, parallel to `columns`.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Create a tuple from `(column, value)` pairs.
    pub fn new(table: impl Into<String>, fields: Vec<(&str, Value)>) -> Self {
        let (columns, values) = fields.into_iter().map(|(c, v)| (c.to_string(), v)).unzip();
        Tuple {
            table: table.into(),
            columns,
            values,
        }
    }

    /// Create an empty tuple for a table (columns added via [`Tuple::push`]).
    pub fn empty(table: impl Into<String>) -> Self {
        Tuple {
            table: table.into(),
            columns: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Append a column.
    pub fn push(&mut self, column: impl Into<String>, value: Value) {
        self.columns.push(column.into());
        self.values.push(value);
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Value of the named column, if present.
    pub fn get(&self, column: &str) -> Option<&Value> {
        self.columns
            .iter()
            .position(|c| c == column)
            .map(|i| &self.values[i])
    }

    /// Values for several columns at once; `None` if any is missing — the
    /// caller then discards the tuple (best-effort policy).
    pub fn get_all(&self, columns: &[String]) -> Option<Vec<Value>> {
        columns.iter().map(|c| self.get(c).cloned()).collect()
    }

    /// Canonical partitioning-key string for a set of hashing attributes.
    /// Returns `None` when any attribute is missing.
    pub fn partition_key(&self, columns: &[String]) -> Option<String> {
        let values = self.get_all(columns)?;
        Some(
            values
                .iter()
                .map(Value::key_string)
                .collect::<Vec<_>>()
                .join("|"),
        )
    }

    /// Project onto a subset of columns (missing columns become NULL so the
    /// output shape is predictable for the client).
    pub fn project(&self, columns: &[String]) -> Tuple {
        let values = columns
            .iter()
            .map(|c| self.get(c).cloned().unwrap_or(Value::Null))
            .collect();
        Tuple {
            table: self.table.clone(),
            columns: columns.to_vec(),
            values,
        }
    }

    /// Concatenate two tuples (used by join operators).  Columns of the
    /// right tuple are prefixed with its table name when they would collide.
    pub fn join_with(&self, other: &Tuple, result_table: &str) -> Tuple {
        let mut out = Tuple::empty(result_table);
        for (c, v) in self.columns.iter().zip(&self.values) {
            out.push(c.clone(), v.clone());
        }
        for (c, v) in other.columns.iter().zip(&other.values) {
            if out.get(c).is_some() {
                out.push(format!("{}.{}", other.table, c), v.clone());
            } else {
                out.push(c.clone(), v.clone());
            }
        }
        out
    }

    /// Rename the tuple's table (e.g. when materialising a partial result
    /// set under a query-specific namespace).
    pub fn with_table(mut self, table: impl Into<String>) -> Tuple {
        self.table = table.into();
        self
    }
}

impl WireSize for Tuple {
    fn wire_size(&self) -> usize {
        // Self-describing: the table name and every column name travel with
        // the tuple, exactly as in the paper.
        self.table.wire_size()
            + self.columns.iter().map(WireSize::wire_size).sum::<usize>()
            + self.values.iter().map(WireSize::wire_size).sum::<usize>()
            + 8
    }
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.table)?;
        for (i, (c, v)) in self.columns.iter().zip(&self.values).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}={v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        Tuple::new(
            "events",
            vec![
                ("src", Value::Str("10.0.0.1".into())),
                ("port", Value::Int(443)),
                ("blocked", Value::Bool(true)),
            ],
        )
    }

    #[test]
    fn get_by_name() {
        let tup = t();
        assert_eq!(tup.get("port"), Some(&Value::Int(443)));
        assert_eq!(tup.get("missing"), None);
        assert_eq!(tup.arity(), 3);
    }

    #[test]
    fn partition_key_is_canonical_and_requires_all_columns() {
        let tup = t();
        let k1 = tup.partition_key(&["src".to_string()]).unwrap();
        let k2 = tup.partition_key(&["src".to_string()]).unwrap();
        assert_eq!(k1, k2);
        assert!(tup
            .partition_key(&["src".to_string(), "missing".to_string()])
            .is_none());
        let multi = tup
            .partition_key(&["src".to_string(), "port".to_string()])
            .unwrap();
        assert!(multi.contains('|'));
    }

    #[test]
    fn projection_fills_missing_with_null() {
        let tup = t();
        let p = tup.project(&["port".to_string(), "nope".to_string()]);
        assert_eq!(p.values, vec![Value::Int(443), Value::Null]);
        assert_eq!(p.columns.len(), 2);
    }

    #[test]
    fn join_concatenates_and_disambiguates() {
        let left = Tuple::new("r", vec![("id", Value::Int(1)), ("x", Value::Int(10))]);
        let right = Tuple::new("s", vec![("id", Value::Int(1)), ("y", Value::Int(20))]);
        let joined = left.join_with(&right, "r_s");
        assert_eq!(joined.table, "r_s");
        assert_eq!(joined.get("x"), Some(&Value::Int(10)));
        assert_eq!(joined.get("y"), Some(&Value::Int(20)));
        assert_eq!(joined.get("s.id"), Some(&Value::Int(1)));
        assert_eq!(joined.arity(), 4);
    }

    #[test]
    fn wire_size_counts_schema_and_values() {
        let tup = t();
        assert!(tup.wire_size() > 30);
        let bigger = {
            let mut b = tup.clone();
            b.push("payload", Value::Bytes(vec![0; 500]));
            b
        };
        assert!(bigger.wire_size() > tup.wire_size() + 500);
    }

    #[test]
    fn display_is_readable() {
        let s = t().to_string();
        assert!(s.starts_with("events("));
        assert!(s.contains("port=443"));
    }
}
