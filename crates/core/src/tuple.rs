//! Self-describing tuples (§3.3.1) with interned schemas.
//!
//! Because PIER keeps no system catalog, every tuple carries its table name,
//! its column names and its values.  Access methods convert source data into
//! this format; operators address fields by name and silently discard tuples
//! that lack an expected field or carry an incompatible type.
//!
//! The paper's "no catalog" stance is *logical*: every tuple is
//! self-describing **on the wire** and across trust domains.  It does not
//! force the in-memory representation to copy the table name and every
//! column name per tuple.  This module therefore splits a tuple into a
//! [`Schema`] (table + column names + a precomputed column→index map) shared
//! through an `Arc` via the process-wide [`SchemaRegistry`], and a flat
//! vector of [`Value`]s:
//!
//! * cloning a tuple clones an `Arc` and the values — no string traffic;
//! * [`Tuple::get`] resolves the column once against the schema instead of
//!   linearly comparing strings per access;
//! * operators resolve their column lists to indices **once per schema**
//!   (not once per tuple) through [`ColumnResolver`] / [`ColumnRef`], whose
//!   single-entry caches are keyed by schema identity (`Arc::ptr_eq`) —
//!   interning makes pointer equality a sound schema-equality check;
//! * [`TupleBatch`] groups same-destination tuples for a single overlay
//!   transfer and charges the self-describing schema bytes once per
//!   (batch, schema) in its [`WireSize`], matching what a length-prefixed
//!   dictionary encoding would put on the wire.
//!
//! `Tuple::wire_size` still charges the full self-describing cost (schema +
//! values), exactly as in the paper, so unbatched transfers are accounted
//! honestly.

use crate::value::Value;
use pier_runtime::WireSize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Column-count threshold below which name lookups linearly scan the column
/// list instead of hashing — faster for the short schemas that dominate.
const LINEAR_SCAN_MAX: usize = 6;

/// The shape of a tuple: its table (or result-set) name and column names,
/// plus a precomputed column→index map for wide schemas.  Schemas are
/// immutable and interned through the [`SchemaRegistry`], so two tuples with
/// the same shape share one allocation and can be compared by pointer.
#[derive(Debug)]
pub struct Schema {
    table: String,
    columns: Vec<String>,
    /// Column → index, built only past [`LINEAR_SCAN_MAX`] columns.
    index: Option<HashMap<String, usize>>,
}

impl Schema {
    fn build(table: String, columns: Vec<String>) -> Schema {
        let index = if columns.len() > LINEAR_SCAN_MAX {
            Some(
                columns
                    .iter()
                    .enumerate()
                    // `rev` keeps the *first* occurrence for duplicated
                    // names, matching a forward linear scan.
                    .rev()
                    .map(|(i, c)| (c.clone(), i))
                    .collect(),
            )
        } else {
            None
        };
        Schema {
            table,
            columns,
            index,
        }
    }

    /// The table (or result-set) name.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The column names, in tuple order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the named column (first occurrence), if present.
    pub fn position(&self, column: &str) -> Option<usize> {
        match &self.index {
            Some(map) => map.get(column).copied(),
            None => self.columns.iter().position(|c| c == column),
        }
    }
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self, other) || (self.table == other.table && self.columns == other.columns)
    }
}

impl WireSize for Schema {
    fn wire_size(&self) -> usize {
        // The self-describing header: table name plus every column name.
        self.table.wire_size() + self.columns.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

fn schema_hash<'a>(table: &str, columns: impl Iterator<Item = &'a str>) -> u64 {
    let mut h = DefaultHasher::new();
    table.hash(&mut h);
    for c in columns {
        c.hash(&mut h);
    }
    h.finish()
}

/// Process-wide interner mapping (table, columns) shapes to shared
/// [`Schema`]s.  Lookups hash borrowed names, so repeated construction of
/// same-shaped tuples performs no string allocation at all.  The registry
/// only ever grows: schemas are small, but shapes keyed by query-scoped
/// table names (`q{id}.agg`, `q{id}.win`, …) accumulate with every query
/// ever installed in the process, not just the currently installed ones —
/// eviction via weak references is a ROADMAP item before very long-lived
/// deployments.
#[derive(Debug, Default)]
pub struct SchemaRegistry {
    shapes: Mutex<HashMap<u64, Vec<Arc<Schema>>>>,
}

impl SchemaRegistry {
    /// The process-wide registry used by [`Tuple`] constructors.
    pub fn global() -> &'static SchemaRegistry {
        static GLOBAL: OnceLock<SchemaRegistry> = OnceLock::new();
        GLOBAL.get_or_init(SchemaRegistry::default)
    }

    /// Number of distinct schemas interned.
    pub fn len(&self) -> usize {
        self.shapes.lock().unwrap().values().map(Vec::len).sum()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern a shape given by borrowed parts; allocation-free when the
    /// shape is already known.
    pub fn intern(&self, table: &str, columns: &[&str]) -> Arc<Schema> {
        let hash = schema_hash(table, columns.iter().copied());
        let mut shapes = self.shapes.lock().unwrap();
        let bucket = shapes.entry(hash).or_default();
        if let Some(existing) = bucket.iter().find(|s| {
            s.table == table
                && s.columns.len() == columns.len()
                && s.columns
                    .iter()
                    .map(String::as_str)
                    .eq(columns.iter().copied())
        }) {
            return Arc::clone(existing);
        }
        let schema = Arc::new(Schema::build(
            table.to_string(),
            columns.iter().map(|c| c.to_string()).collect(),
        ));
        bucket.push(Arc::clone(&schema));
        schema
    }

    /// Intern a shape whose parts are already owned (the owned strings are
    /// dropped when the shape is known).
    pub fn intern_owned(&self, table: String, columns: Vec<String>) -> Arc<Schema> {
        let hash = schema_hash(&table, columns.iter().map(String::as_str));
        let mut shapes = self.shapes.lock().unwrap();
        let bucket = shapes.entry(hash).or_default();
        if let Some(existing) = bucket
            .iter()
            .find(|s| s.table == table && s.columns == columns)
        {
            return Arc::clone(existing);
        }
        let schema = Arc::new(Schema::build(table, columns));
        bucket.push(Arc::clone(&schema));
        schema
    }
}

/// A self-describing relational tuple: an interned schema plus the values,
/// parallel to the schema's columns.
#[derive(Debug, Clone)]
pub struct Tuple {
    schema: Arc<Schema>,
    values: Vec<Value>,
}

impl Tuple {
    /// Create a tuple from `(column, value)` pairs.
    pub fn new(table: impl AsRef<str>, fields: Vec<(&str, Value)>) -> Self {
        let mut names: Vec<&str> = Vec::with_capacity(fields.len());
        let mut values = Vec::with_capacity(fields.len());
        for (c, v) in fields {
            names.push(c);
            values.push(v);
        }
        Tuple {
            schema: SchemaRegistry::global().intern(table.as_ref(), &names),
            values,
        }
    }

    /// Create a tuple directly from an interned schema and parallel values
    /// (the allocation-minimal path used by operators that emit a fixed
    /// output shape).  Panics in debug builds when the arity mismatches.
    pub fn from_schema(schema: Arc<Schema>, values: Vec<Value>) -> Self {
        debug_assert_eq!(schema.arity(), values.len(), "schema/value arity mismatch");
        Tuple { schema, values }
    }

    /// Create a tuple from owned column names and parallel values, interning
    /// the shape once (cheaper than [`Tuple::empty`] + repeated pushes).
    pub fn from_parts(table: impl Into<String>, columns: Vec<String>, values: Vec<Value>) -> Self {
        debug_assert_eq!(columns.len(), values.len(), "column/value arity mismatch");
        Tuple {
            schema: SchemaRegistry::global().intern_owned(table.into(), columns),
            values,
        }
    }

    /// Create an empty tuple for a table (columns added via [`Tuple::push`]).
    pub fn empty(table: impl AsRef<str>) -> Self {
        Tuple {
            schema: SchemaRegistry::global().intern(table.as_ref(), &[]),
            values: Vec::new(),
        }
    }

    /// The tuple's interned schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The table (or result-set) this tuple belongs to.
    pub fn table(&self) -> &str {
        &self.schema.table
    }

    /// Column names, parallel to [`Tuple::values`].
    pub fn columns(&self) -> &[String] {
        &self.schema.columns
    }

    /// Column values, parallel to [`Tuple::columns`].
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Append a column.  Re-interns the extended shape; building a tuple of
    /// known shape with [`Tuple::from_schema`]/[`Tuple::from_parts`] is
    /// cheaper on hot paths.
    pub fn push(&mut self, column: impl AsRef<str>, value: Value) {
        let mut names: Vec<&str> = Vec::with_capacity(self.schema.columns.len() + 1);
        names.extend(self.schema.columns.iter().map(String::as_str));
        names.push(column.as_ref());
        self.schema = SchemaRegistry::global().intern(&self.schema.table, &names);
        self.values.push(value);
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Value of the named column, if present.
    pub fn get(&self, column: &str) -> Option<&Value> {
        self.schema.position(column).map(|i| &self.values[i])
    }

    /// Values for several columns at once; `None` if any is missing — the
    /// caller then discards the tuple (best-effort policy).
    pub fn get_all(&self, columns: &[String]) -> Option<Vec<Value>> {
        columns.iter().map(|c| self.get(c).cloned()).collect()
    }

    /// Canonical partitioning-key string for a set of hashing attributes.
    /// Returns `None` when any attribute is missing.
    pub fn partition_key(&self, columns: &[String]) -> Option<String> {
        let mut out = String::with_capacity(12 * columns.len());
        for (i, c) in columns.iter().enumerate() {
            let idx = self.schema.position(c)?;
            if i > 0 {
                out.push('|');
            }
            self.values[idx].write_key(&mut out);
        }
        Some(out)
    }

    /// Canonical key string over pre-resolved column indices (see
    /// [`ColumnResolver`]); the per-tuple cost of key extraction once the
    /// operator has resolved its columns against the schema.
    pub fn key_at(&self, indices: &[usize]) -> String {
        let mut out = String::with_capacity(12 * indices.len());
        for (i, &idx) in indices.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            self.values[idx].write_key(&mut out);
        }
        out
    }

    /// Project onto a subset of columns (missing columns become NULL so the
    /// output shape is predictable for the client).
    pub fn project(&self, columns: &[String]) -> Tuple {
        let names: Vec<&str> = columns.iter().map(String::as_str).collect();
        let schema = SchemaRegistry::global().intern(&self.schema.table, &names);
        let values = columns
            .iter()
            .map(|c| self.get(c).cloned().unwrap_or(Value::Null))
            .collect();
        Tuple { schema, values }
    }

    /// The schema a [`Tuple::join_with`] of these two schemas produces:
    /// left columns, then right columns with collisions prefixed by the
    /// right table name.  Operators cache the result per input-schema pair
    /// (pointer identity) so streaming joins intern once, not per output.
    pub fn join_schema(left: &Schema, right: &Schema, result_table: &str) -> Arc<Schema> {
        let mut names: Vec<String> = Vec::with_capacity(left.columns.len() + right.columns.len());
        names.extend(left.columns.iter().cloned());
        for c in &right.columns {
            if names.iter().any(|n| n == c) {
                names.push(format!("{}.{}", right.table, c));
            } else {
                names.push(c.clone());
            }
        }
        SchemaRegistry::global().intern_owned(result_table.to_string(), names)
    }

    /// Concatenate two tuples (used by join operators).  Columns of the
    /// right tuple are prefixed with its table name when they would collide.
    pub fn join_with(&self, other: &Tuple, result_table: &str) -> Tuple {
        let schema = Tuple::join_schema(&self.schema, &other.schema, result_table);
        self.join_with_schema(other, schema)
    }

    /// [`Tuple::join_with`] with the output schema already resolved (the
    /// per-output cost is then just concatenating the values).
    pub fn join_with_schema(&self, other: &Tuple, schema: Arc<Schema>) -> Tuple {
        debug_assert_eq!(schema.arity(), self.values.len() + other.values.len());
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend(self.values.iter().cloned());
        values.extend(other.values.iter().cloned());
        Tuple { schema, values }
    }

    /// Rename the tuple's table (e.g. when materialising a partial result
    /// set under a query-specific namespace).
    pub fn with_table(mut self, table: impl AsRef<str>) -> Tuple {
        let names: Vec<&str> = self.schema.columns.iter().map(String::as_str).collect();
        self.schema = SchemaRegistry::global().intern(table.as_ref(), &names);
        self
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        (Arc::ptr_eq(&self.schema, &other.schema) || self.schema == other.schema)
            && self.values == other.values
    }
}

impl WireSize for Tuple {
    fn wire_size(&self) -> usize {
        // Self-describing: the table name and every column name travel with
        // the tuple, exactly as in the paper.
        self.schema.wire_size() + self.values.iter().map(WireSize::wire_size).sum::<usize>() + 8
    }
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.table())?;
        for (i, (c, v)) in self.columns().iter().zip(&self.values).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}={v}")?;
        }
        write!(f, ")")
    }
}

/// A batch of tuples coalesced for one overlay transfer (the unit the
/// executor's rehash/exchange and partial-aggregate paths ship since the
/// batching change; see `pier_dht::DhtMessage::PutBatch` for the
/// per-destination grouping).  Tuples stay individually addressable — the
/// receiving node unpacks the batch back into per-tuple dataflow.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleBatch {
    tuples: Vec<Tuple>,
}

impl TupleBatch {
    /// Wrap a set of tuples headed for the same destination.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        TupleBatch { tuples }
    }

    /// The batched tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consume the batch.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl WireSize for TupleBatch {
    fn wire_size(&self) -> usize {
        // Dictionary encoding: each distinct schema's self-describing header
        // is charged once per batch; every tuple then pays a 2-byte schema
        // reference plus its values (+ the usual per-tuple overhead).
        let mut seen: Vec<*const Schema> = Vec::new();
        let mut size = 4;
        for t in &self.tuples {
            let ptr = Arc::as_ptr(&t.schema);
            if !seen.contains(&ptr) {
                seen.push(ptr);
                size += t.schema.wire_size();
            }
            size += 2 + t.values.iter().map(WireSize::wire_size).sum::<usize>() + 8;
        }
        size
    }
}

/// A multi-column resolver caching the column→index mapping per schema.
/// Operators construct one per column list and resolve **once per schema**
/// instead of once per tuple; the interned-schema pointer is the cache key.
#[derive(Debug, Clone)]
pub struct ColumnResolver {
    columns: Vec<String>,
    cached_schema: Option<Arc<Schema>>,
    /// `None` while `cached_schema` is `None`, or when the cached schema is
    /// missing at least one of the columns (the tuple is then malformed for
    /// this operator and discarded, per §3.3.4).
    cached: Option<Vec<usize>>,
}

impl ColumnResolver {
    /// A resolver for the given column list.
    pub fn new(columns: Vec<String>) -> Self {
        ColumnResolver {
            columns,
            cached_schema: None,
            cached: None,
        }
    }

    /// The column list being resolved.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    fn ensure(&mut self, tuple: &Tuple) {
        if self
            .cached_schema
            .as_ref()
            .is_some_and(|s| Arc::ptr_eq(s, tuple.schema()))
        {
            return;
        }
        self.cached = self
            .columns
            .iter()
            .map(|c| tuple.schema().position(c))
            .collect();
        self.cached_schema = Some(Arc::clone(tuple.schema()));
    }

    /// The indices of the columns in `tuple`'s schema; `None` when any is
    /// missing (discard the tuple).
    pub fn indices(&mut self, tuple: &Tuple) -> Option<&[usize]> {
        self.ensure(tuple);
        self.cached.as_deref()
    }

    /// Canonical partition/group key over the resolved columns.
    pub fn key(&mut self, tuple: &Tuple) -> Option<String> {
        self.ensure(tuple);
        Some(tuple.key_at(self.cached.as_deref()?))
    }

    /// Cloned values of the resolved columns, in column-list order.
    pub fn values(&mut self, tuple: &Tuple) -> Option<Vec<Value>> {
        self.ensure(tuple);
        let idxs = self.cached.as_deref()?;
        Some(idxs.iter().map(|&i| tuple.values()[i].clone()).collect())
    }
}

/// A single-column [`ColumnResolver`]: resolves one column per schema and
/// hands back the value (or `None` when the column is absent).
#[derive(Debug, Clone)]
pub struct ColumnRef {
    column: String,
    cached_schema: Option<Arc<Schema>>,
    cached: Option<usize>,
}

impl ColumnRef {
    /// A resolver for one column.
    pub fn new(column: impl Into<String>) -> Self {
        ColumnRef {
            column: column.into(),
            cached_schema: None,
            cached: None,
        }
    }

    /// The column being resolved.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// The column's value in `tuple`, if present.
    pub fn get<'t>(&mut self, tuple: &'t Tuple) -> Option<&'t Value> {
        if !self
            .cached_schema
            .as_ref()
            .is_some_and(|s| Arc::ptr_eq(s, tuple.schema()))
        {
            self.cached = tuple.schema().position(&self.column);
            self.cached_schema = Some(Arc::clone(tuple.schema()));
        }
        self.cached.map(|i| &tuple.values()[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        Tuple::new(
            "events",
            vec![
                ("src", Value::Str("10.0.0.1".into())),
                ("port", Value::Int(443)),
                ("blocked", Value::Bool(true)),
            ],
        )
    }

    #[test]
    fn get_by_name() {
        let tup = t();
        assert_eq!(tup.get("port"), Some(&Value::Int(443)));
        assert_eq!(tup.get("missing"), None);
        assert_eq!(tup.arity(), 3);
    }

    #[test]
    fn same_shape_shares_one_interned_schema() {
        let a = t();
        let b = t();
        assert!(Arc::ptr_eq(a.schema(), b.schema()));
        // Cloning shares too, and push re-interns to a distinct shape.
        let c = a.clone();
        assert!(Arc::ptr_eq(a.schema(), c.schema()));
        let mut d = a.clone();
        d.push("extra", Value::Int(1));
        assert!(!Arc::ptr_eq(a.schema(), d.schema()));
        assert_eq!(d.arity(), 4);
        // The same extended shape interns back to one schema.
        let mut e = b.clone();
        e.push("extra", Value::Int(2));
        assert!(Arc::ptr_eq(d.schema(), e.schema()));
    }

    #[test]
    fn wide_schemas_use_the_index_map() {
        let fields: Vec<(String, Value)> =
            (0..12).map(|i| (format!("c{i}"), Value::Int(i))).collect();
        let tup = Tuple::new(
            "wide",
            fields
                .iter()
                .map(|(c, v)| (c.as_str(), v.clone()))
                .collect(),
        );
        for i in 0..12 {
            assert_eq!(tup.get(&format!("c{i}")), Some(&Value::Int(i)));
        }
        assert_eq!(tup.get("c99"), None);
    }

    #[test]
    fn partition_key_is_canonical_and_requires_all_columns() {
        let tup = t();
        let k1 = tup.partition_key(&["src".to_string()]).unwrap();
        let k2 = tup.partition_key(&["src".to_string()]).unwrap();
        assert_eq!(k1, k2);
        assert!(tup
            .partition_key(&["src".to_string(), "missing".to_string()])
            .is_none());
        let multi = tup
            .partition_key(&["src".to_string(), "port".to_string()])
            .unwrap();
        assert!(multi.contains('|'));
    }

    #[test]
    fn resolver_key_matches_partition_key_across_schemas() {
        let cols = vec!["src".to_string(), "port".to_string()];
        let mut resolver = ColumnResolver::new(cols.clone());
        let a = t();
        assert_eq!(resolver.key(&a), a.partition_key(&cols));
        // A different schema re-resolves correctly.
        let b = Tuple::new(
            "other",
            vec![
                ("port", Value::Int(80)),
                ("src", Value::Str("10.9.9.9".into())),
            ],
        );
        assert_eq!(resolver.key(&b), b.partition_key(&cols));
        // Malformed tuples resolve to None (and that is cached too).
        let c = Tuple::new("other", vec![("port", Value::Int(80))]);
        assert_eq!(resolver.key(&c), None);
        assert_eq!(resolver.key(&c), None);
        assert_eq!(resolver.values(&a).unwrap().len(), 2);
    }

    #[test]
    fn column_ref_resolves_per_schema() {
        let mut port = ColumnRef::new("port");
        assert_eq!(port.get(&t()), Some(&Value::Int(443)));
        let other = Tuple::new("x", vec![("a", Value::Int(1))]);
        assert_eq!(port.get(&other), None);
        assert_eq!(port.get(&t()), Some(&Value::Int(443)));
        assert_eq!(port.column(), "port");
    }

    #[test]
    fn projection_fills_missing_with_null() {
        let tup = t();
        let p = tup.project(&["port".to_string(), "nope".to_string()]);
        assert_eq!(p.values(), &[Value::Int(443), Value::Null]);
        assert_eq!(p.columns().len(), 2);
    }

    #[test]
    fn join_concatenates_and_disambiguates() {
        let left = Tuple::new("r", vec![("id", Value::Int(1)), ("x", Value::Int(10))]);
        let right = Tuple::new("s", vec![("id", Value::Int(1)), ("y", Value::Int(20))]);
        let joined = left.join_with(&right, "r_s");
        assert_eq!(joined.table(), "r_s");
        assert_eq!(joined.get("x"), Some(&Value::Int(10)));
        assert_eq!(joined.get("y"), Some(&Value::Int(20)));
        assert_eq!(joined.get("s.id"), Some(&Value::Int(1)));
        assert_eq!(joined.arity(), 4);
    }

    #[test]
    fn wire_size_counts_schema_and_values() {
        let tup = t();
        assert!(tup.wire_size() > 30);
        let bigger = {
            let mut b = tup.clone();
            b.push("payload", Value::Bytes(vec![0; 500]));
            b
        };
        assert!(bigger.wire_size() > tup.wire_size() + 500);
    }

    #[test]
    fn batch_wire_size_charges_each_schema_once() {
        let tuples: Vec<Tuple> = (0..10)
            .map(|i| {
                Tuple::new(
                    "events",
                    vec![
                        ("src", Value::Str(format!("10.0.0.{i}"))),
                        ("port", Value::Int(i)),
                    ],
                )
            })
            .collect();
        let unbatched: usize = tuples.iter().map(WireSize::wire_size).sum();
        let batch = TupleBatch::new(tuples.clone());
        assert_eq!(batch.len(), 10);
        assert!(!batch.is_empty());
        assert!(
            batch.wire_size() < unbatched,
            "batch {} must undercut {} unbatched bytes",
            batch.wire_size(),
            unbatched
        );
        // The saving is the schema header repeated 9 extra times, minus the
        // per-tuple schema references and the batch count.
        let schema_bytes = tuples[0].schema().wire_size();
        assert!(batch.wire_size() <= unbatched - 9 * schema_bytes + 4 + 2 * 10);
        assert_eq!(batch.tuples().len(), batch.clone().into_tuples().len());
    }

    #[test]
    fn display_is_readable() {
        let s = t().to_string();
        assert!(s.starts_with("events("));
        assert!(s.contains("port=443"));
    }
}
