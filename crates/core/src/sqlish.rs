//! A naive SQL-like front end (§4.2).
//!
//! The paper notes that, contrary to the designers' expectations, many PIER
//! users preferred a compact SQL-like syntax over wiring UFL dataflow
//! diagrams, and that PIER therefore grew "a naive version of this
//! functionality".  This module reproduces that front end: a small
//! recursive-descent parser for
//!
//! ```sql
//! SELECT col [, col ...] | SELECT col, COUNT(*) ...
//! FROM table
//! [WHERE col op literal [AND ...]]
//! [GROUP BY col [, col ...]]
//! [TOP k BY col]
//! [WINDOW 30s [SLIDE 10s]] [EVERY 20s] [DELTAS]
//! ```
//!
//! and a *naive* planner that maps the statement onto a single-opgraph
//! [`QueryPlan`]: equality predicates on the partitioning column choose
//! equality-index dissemination, aggregates choose hierarchical aggregation,
//! everything else broadcasts — there is no cost-based optimisation, which
//! is exactly the state of the system the paper describes.
//!
//! The windowing clauses register a *continuous* query (the `pier-cq`
//! subsystem): `WINDOW` sets the window size (`SLIDE` defaults to tumbling),
//! `EVERY` sets the soft-state renewal period the proxy re-disseminates the
//! standing plan at, and `DELTAS` switches per-window output from snapshots
//! to insert/retract streams.  Durations accept `us`, `ms`, `s` and `m`
//! suffixes (a bare number is seconds).
//!
//! **Multi-query sharing.**  A windowed statement whose `WHERE` predicates
//! reference only `GROUP BY` columns — the shape of the multi-tenant
//! monitoring workload, `… WHERE src = '<mine>' GROUP BY src WINDOW …` —
//! compiles to a plan that `pier-mqo` normalizes into a **share group**:
//! constant-only-different statements installed by different users execute
//! as one shared dataflow on nodes configured with the sharing layer
//! (member-level `DELTAS` and `TOP k` clauses are preserved per user).
//! Nothing here changes for that: the planner emits the same plan either
//! way, and nodes without a sharing layer run it independently.

use crate::aggregate::AggFunc;
use crate::expr::{CmpOp, Expr};
use crate::plan::{
    CqSpec, Dissemination, OpGraph, OperatorSpec, PlanBuilder, QueryPlan, SinkSpec, SourceSpec,
};
use crate::value::Value;
use pier_cq::{DeltaMode, WindowSpec};
use pier_runtime::{Duration, NodeAddr};

/// A parse or planning error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError(pub String);

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL error: {}", self.0)
    }
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// Plain projection columns.
    pub columns: Vec<String>,
    /// Aggregate expressions.
    pub aggregates: Vec<AggFunc>,
    /// Source table.
    pub table: String,
    /// Conjunctive predicates.
    pub predicates: Vec<Expr>,
    /// GROUP BY columns.
    pub group_by: Vec<String>,
    /// Optional `TOP k BY col`.
    pub top: Option<(usize, String)>,
    /// Optional `WINDOW size [SLIDE slide]` (microseconds).
    pub window: Option<(Duration, Option<Duration>)>,
    /// Optional `EVERY renew-period` (microseconds).
    pub every: Option<Duration>,
    /// `DELTAS`: stream insert/retract refinements instead of snapshots.
    pub deltas: bool,
}

fn tokenize(input: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // Quoted string literal (kept with quotes for the parser).
                let mut lit = String::from("'");
                for c in chars.by_ref() {
                    if c == '\'' {
                        break;
                    }
                    lit.push(c);
                }
                lit.push('\'');
                tokens.push(lit);
            }
            ',' | '(' | ')' => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                tokens.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            '=' | '<' | '>' | '!' => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                let mut op = c.to_string();
                if let Some('=') = chars.peek() {
                    op.push('=');
                    chars.next();
                }
                tokens.push(op);
            }
            _ => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Option<String> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(t) if t.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(SqlError(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn peek_is_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.eq_ignore_ascii_case(kw))
    }

    /// Parse a duration literal: `500ms`, `30s`, `2m`, `1500us`; a bare
    /// number means seconds.  Returns microseconds.
    fn parse_duration(token: &str) -> Result<Duration, SqlError> {
        let (digits, unit) = match token.find(|c: char| !c.is_ascii_digit()) {
            Some(split) => token.split_at(split),
            None => (token, "s"),
        };
        let n: u64 = digits
            .parse()
            .map_err(|_| SqlError(format!("bad duration {token}")))?;
        let factor = match unit.to_ascii_lowercase().as_str() {
            "us" => 1,
            "ms" => 1_000,
            "s" => 1_000_000,
            "m" => 60_000_000,
            other => return Err(SqlError(format!("unknown duration unit {other}"))),
        };
        Ok(n.saturating_mul(factor).max(1))
    }

    fn parse_literal(token: &str) -> Value {
        if let Some(stripped) = token.strip_prefix('\'') {
            return Value::str(stripped.trim_end_matches('\''));
        }
        if token.eq_ignore_ascii_case("true") {
            return Value::Bool(true);
        }
        if token.eq_ignore_ascii_case("false") {
            return Value::Bool(false);
        }
        if let Ok(i) = token.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = token.parse::<f64>() {
            return Value::Float(f);
        }
        Value::str(token)
    }
}

/// Parse a SELECT statement.
pub fn parse(sql: &str) -> Result<SelectStatement, SqlError> {
    let mut p = Parser {
        tokens: tokenize(sql),
        pos: 0,
    };
    p.expect_kw("SELECT")?;
    let mut columns = Vec::new();
    let mut aggregates = Vec::new();
    loop {
        let token = p
            .next()
            .ok_or_else(|| SqlError("unexpected end of SELECT list".into()))?;
        let upper = token.to_ascii_uppercase();
        if ["COUNT", "SUM", "MIN", "MAX", "AVG"].contains(&upper.as_str()) {
            p.expect_kw("(")?;
            let arg = p
                .next()
                .ok_or_else(|| SqlError("aggregate missing argument".into()))?;
            p.expect_kw(")")?;
            let agg = match upper.as_str() {
                "COUNT" => AggFunc::Count,
                "SUM" => AggFunc::Sum(arg),
                "MIN" => AggFunc::Min(arg),
                "MAX" => AggFunc::Max(arg),
                _ => AggFunc::Avg(arg),
            };
            aggregates.push(agg);
        } else {
            columns.push(token);
        }
        if p.peek() == Some(",") {
            p.next();
            continue;
        }
        break;
    }
    p.expect_kw("FROM")?;
    let table = p
        .next()
        .ok_or_else(|| SqlError("missing table name".into()))?;
    let mut predicates = Vec::new();
    if p.peek_is_kw("WHERE") {
        p.next();
        loop {
            let col = p
                .next()
                .ok_or_else(|| SqlError("missing predicate column".into()))?;
            let op = p
                .next()
                .ok_or_else(|| SqlError("missing comparison operator".into()))?;
            let lit = p.next().ok_or_else(|| SqlError("missing literal".into()))?;
            let cmp = match op.as_str() {
                "=" | "==" => CmpOp::Eq,
                "!=" | "<>" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                other => return Err(SqlError(format!("unknown operator {other}"))),
            };
            predicates.push(Expr::cmp(
                cmp,
                Expr::col(&col),
                Expr::Const(Parser::parse_literal(&lit)),
            ));
            if p.peek_is_kw("AND") {
                p.next();
                continue;
            }
            break;
        }
    }
    let mut group_by = Vec::new();
    if p.peek_is_kw("GROUP") {
        p.next();
        p.expect_kw("BY")?;
        loop {
            group_by.push(
                p.next()
                    .ok_or_else(|| SqlError("missing GROUP BY column".into()))?,
            );
            if p.peek() == Some(",") {
                p.next();
                continue;
            }
            break;
        }
    }
    let mut top = None;
    if p.peek_is_kw("TOP") {
        p.next();
        let k: usize = p
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| SqlError("TOP requires a number".into()))?;
        p.expect_kw("BY")?;
        let col = p
            .next()
            .ok_or_else(|| SqlError("TOP ... BY requires a column".into()))?;
        top = Some((k, col));
    }
    let mut window = None;
    if p.peek_is_kw("WINDOW") {
        p.next();
        let size = p
            .next()
            .ok_or_else(|| SqlError("WINDOW requires a duration".into()))
            .and_then(|t| Parser::parse_duration(&t))?;
        let mut slide = None;
        if p.peek_is_kw("SLIDE") {
            p.next();
            slide = Some(
                p.next()
                    .ok_or_else(|| SqlError("SLIDE requires a duration".into()))
                    .and_then(|t| Parser::parse_duration(&t))?,
            );
        }
        window = Some((size, slide));
    }
    let mut every = None;
    if p.peek_is_kw("EVERY") {
        p.next();
        every = Some(
            p.next()
                .ok_or_else(|| SqlError("EVERY requires a duration".into()))
                .and_then(|t| Parser::parse_duration(&t))?,
        );
    }
    let mut deltas = false;
    if p.peek_is_kw("DELTAS") {
        p.next();
        deltas = true;
    }
    if let Some(trailing) = p.peek() {
        return Err(SqlError(format!("unexpected trailing token {trailing}")));
    }
    Ok(SelectStatement {
        columns,
        aggregates,
        table,
        predicates,
        group_by,
        top,
        window,
        every,
        deltas,
    })
}

/// Plan a parsed statement with the naive strategy described in §4.2.
/// Statements with windowing clauses must be planned through
/// [`plan_checked`]; this infallible variant keeps the historical signature
/// and maps windowed statements the same way (invalid combinations fall
/// back to ignoring the window).
pub fn plan(statement: &SelectStatement, proxy: NodeAddr, timeout: Duration) -> QueryPlan {
    plan_checked(statement, proxy, timeout).unwrap_or_else(|_| {
        let mut no_window = statement.clone();
        no_window.window = None;
        plan_checked(&no_window, proxy, timeout).expect("windowless plan is infallible")
    })
}

/// Plan a parsed statement, rejecting invalid windowing combinations
/// (a `WINDOW` clause requires at least one aggregate).
pub fn plan_checked(
    statement: &SelectStatement,
    proxy: NodeAddr,
    timeout: Duration,
) -> Result<QueryPlan, SqlError> {
    if statement.window.is_some() && statement.aggregates.is_empty() {
        return Err(SqlError(
            "WINDOW requires an aggregate (windowed raw streams are not supported)".into(),
        ));
    }
    let predicate = Expr::all(statement.predicates.clone());
    // Naive dissemination choice: an equality predicate on any column makes
    // the query routable to the partition holding that key (assuming the
    // table is published hashed on that column); otherwise broadcast.
    let dissemination = statement
        .columns
        .iter()
        .chain(statement.group_by.iter())
        .chain(std::iter::once(&statement.table))
        .find_map(|_| None)
        .unwrap_or_else(|| {
            for pred_col in collect_columns(&statement.predicates) {
                if let Some(v) = predicate.equality_constant(&pred_col) {
                    return Dissemination::ByKey {
                        namespace: statement.table.clone(),
                        key: v.key_string(),
                    };
                }
            }
            Dissemination::Broadcast
        });

    let mut ops = Vec::new();
    if !statement.predicates.is_empty() {
        ops.push(OperatorSpec::Selection(predicate));
    }
    let final_ops = statement
        .top
        .as_ref()
        .map(|(k, col)| {
            vec![OperatorSpec::TopK {
                k: *k,
                order_col: col.clone(),
            }]
        })
        .unwrap_or_default();
    let mut cq = None;
    let sink = if let Some((size, slide)) = statement.window {
        // A standing windowed aggregate: every node must see the stream, so
        // the plan broadcasts and the proxy keeps renewing it.
        let slide = slide.unwrap_or(size);
        let window = WindowSpec::sliding(size, slide).with_grace(slide / 2);
        cq = Some(
            statement
                .every
                .map(CqSpec::renewing_every)
                .unwrap_or_default(),
        );
        SinkSpec::WindowedAgg {
            window,
            group_cols: statement.group_by.clone(),
            aggs: statement.aggregates.clone(),
            time_col: Some("ts".to_string()),
            dedup_cols: vec![],
            delta: if statement.deltas {
                DeltaMode::Deltas
            } else {
                DeltaMode::Snapshot
            },
            final_ops,
        }
    } else if !statement.aggregates.is_empty() {
        SinkSpec::HierarchicalAgg {
            group_cols: statement.group_by.clone(),
            aggs: statement.aggregates.clone(),
            hold: 2_000_000,
            final_ops,
            flat: false,
        }
    } else {
        if !statement.columns.is_empty() && statement.columns != vec!["*".to_string()] {
            ops.push(OperatorSpec::Projection(statement.columns.clone()));
        }
        SinkSpec::ToProxy
    };
    let dissemination = if statement.window.is_some() {
        Dissemination::Broadcast
    } else {
        dissemination
    };
    let mut builder = PlanBuilder::new(proxy)
        .dissemination(dissemination)
        .timeout(timeout);
    if let Some(cq) = cq {
        builder = builder.cq(cq);
    }
    Ok(builder
        .opgraph(OpGraph {
            id: 0,
            source: SourceSpec::Table {
                namespace: statement.table.clone(),
            },
            join: None,
            ops,
            sink,
        })
        .build())
}

fn collect_columns(predicates: &[Expr]) -> Vec<String> {
    fn walk(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Column(c) => out.push(c.clone()),
            Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                walk(l, out);
                walk(r, out);
            }
            Expr::Not(inner) => walk(inner, out),
            Expr::Contains(c, _) => out.push(c.clone()),
            Expr::Const(_) => {}
        }
    }
    let mut out = Vec::new();
    for p in predicates {
        walk(p, &mut out);
    }
    out
}

/// Strip a leading `EXPLAIN ANALYZE` prefix (case-insensitive), returning
/// the remaining statement when present.
pub fn strip_explain_analyze(sql: &str) -> Option<&str> {
    let mut rest = sql.trim_start();
    for word in ["EXPLAIN", "ANALYZE"] {
        if rest.len() <= word.len()
            || !rest[..word.len()].eq_ignore_ascii_case(word)
            || !rest[word.len()..].starts_with(char::is_whitespace)
        {
            return None;
        }
        rest = rest[word.len()..].trim_start();
    }
    Some(rest)
}

/// Parse and plan in one step.
///
/// A statement prefixed with `EXPLAIN ANALYZE` compiles to the same plan
/// with [`QueryPlan::trace`] forced on: the query runs normally (same
/// results, same dissemination) while every participating node records
/// `pier-trace` spans, from which the harness assembles the measured
/// per-stage profile (see `pier_trace::QueryProfile`).
pub fn compile(sql: &str, proxy: NodeAddr, timeout: Duration) -> Result<QueryPlan, SqlError> {
    if let Some(inner) = strip_explain_analyze(sql) {
        let mut plan = plan_checked(&parse(inner)?, proxy, timeout)?;
        plan.trace = true;
        return Ok(plan);
    }
    plan_checked(&parse(sql)?, proxy, timeout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s =
            parse("SELECT file, size FROM files WHERE keyword = 'rock' AND size > 100").unwrap();
        assert_eq!(s.columns, vec!["file", "size"]);
        assert_eq!(s.table, "files");
        assert_eq!(s.predicates.len(), 2);
        assert!(s.aggregates.is_empty());
    }

    #[test]
    fn parses_aggregate_with_group_by_and_top() {
        let s = parse("SELECT src, COUNT(*) FROM events GROUP BY src TOP 10 BY count").unwrap();
        assert_eq!(s.columns, vec!["src"]);
        assert_eq!(s.aggregates, vec![AggFunc::Count]);
        assert_eq!(s.group_by, vec!["src"]);
        assert_eq!(s.top, Some((10, "count".to_string())));
    }

    #[test]
    fn explain_analyze_prefix_marks_the_plan_traced() {
        let plain = compile("SELECT file FROM files", NodeAddr(1), 5_000_000).unwrap();
        assert!(!plain.trace);
        for sql in [
            "EXPLAIN ANALYZE SELECT file FROM files",
            "  explain   analyze SELECT file FROM files",
            "Explain Analyze SELECT file FROM files",
        ] {
            let traced = compile(sql, NodeAddr(1), 5_000_000).unwrap();
            assert!(traced.trace, "{sql}");
            assert_eq!(traced.opgraphs, plain.opgraphs, "{sql}");
        }
        // Not a prefix: ordinary statements are untouched.
        assert!(strip_explain_analyze("SELECT x FROM explain").is_none());
        assert!(strip_explain_analyze("EXPLAINANALYZE SELECT x FROM t").is_none());
        assert!(strip_explain_analyze("EXPLAIN SELECT x FROM t").is_none());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELEC x FROM t").is_err());
        assert!(parse("SELECT x FROM").is_err());
        assert!(parse("SELECT x FROM t WHERE a ~ 3").is_err());
        assert!(parse("SELECT x FROM t TOP abc BY c").is_err());
    }

    #[test]
    fn equality_predicate_selects_bykey_dissemination() {
        let q = compile(
            "SELECT file FROM files WHERE keyword = 'rock'",
            NodeAddr(1),
            5_000_000,
        )
        .unwrap();
        match &q.dissemination {
            Dissemination::ByKey { namespace, key } => {
                assert_eq!(namespace, "files");
                assert_eq!(key, &Value::Str("rock".into()).key_string());
            }
            other => panic!("expected ByKey, got {other:?}"),
        }
        assert!(matches!(q.opgraphs[0].sink, SinkSpec::ToProxy));
    }

    #[test]
    fn range_only_predicate_broadcasts() {
        let q = compile("SELECT file FROM files WHERE size > 10", NodeAddr(1), 1_000).unwrap();
        assert!(matches!(q.dissemination, Dissemination::Broadcast));
    }

    #[test]
    fn aggregate_plans_use_hierarchical_aggregation() {
        let q = compile(
            "SELECT src, COUNT(*) FROM events GROUP BY src TOP 10 BY count",
            NodeAddr(2),
            30_000_000,
        )
        .unwrap();
        match &q.opgraphs[0].sink {
            SinkSpec::HierarchicalAgg {
                group_cols,
                aggs,
                final_ops,
                ..
            } => {
                assert_eq!(group_cols, &vec!["src".to_string()]);
                assert_eq!(aggs, &vec![AggFunc::Count]);
                assert_eq!(final_ops.len(), 1);
            }
            other => panic!("expected hierarchical aggregation, got {other:?}"),
        }
    }

    #[test]
    fn string_literals_and_numbers_parse_into_values() {
        assert_eq!(Parser::parse_literal("'abc'"), Value::Str("abc".into()));
        assert_eq!(Parser::parse_literal("42"), Value::Int(42));
        assert_eq!(Parser::parse_literal("2.5"), Value::Float(2.5));
        assert_eq!(Parser::parse_literal("true"), Value::Bool(true));
    }
}
