//! Typed columnar buffers.
//!
//! The batch path used to be columnar in *shape* only: every
//! [`ColumnChunk`](crate::tuple::ColumnChunk) column was a `Vec<Value>`, so
//! each kernel paid the enum tag per element and the compiler could not
//! autovectorise the inner loops.  This module re-lays columns as native
//! buffers — `Vec<i64>` / `Vec<f64>` for numerics, dictionary codes for
//! low-cardinality strings, offsets into a shared byte arena for
//! high-cardinality strings — with a validity [`Bitmap`] for nulls, and a
//! `Vec<Value>` fallback layout for mixed-type columns so self-describing
//! best-effort semantics (§3.3.1, §3.3.4) are preserved exactly.
//!
//! **Layout inference happens at ingest.**  A fresh column starts in the
//! fallback layout; the first non-null value promotes it to the matching
//! typed layout, and any later type mismatch degrades it back to the
//! fallback by materialising.  Strings start dictionary-encoded and spill to
//! the arena layout once the dictionary exceeds [`DICT_MAX`] distinct
//! entries.  Every kernel therefore needs a fallback arm, and the
//! differential oracle suite (tests/columnar_oracle.rs) pins each typed arm
//! to the fallback arm over arbitrary mixed chunks with nulls.
//!
//! **Reference layout.**  With the `reference-layout` feature enabled,
//! inference is disabled and every column stays in the `Vec<Value>` fallback
//! — running the whole test suite under that feature is a second,
//! independent differential check that no caller depends on a specific
//! layout.
//!
//! **Wire format.**  [`Column::encode_body`] / [`Column::decode_body`] give
//! each layout a real byte encoding (dictionary pages, arena + offsets,
//! packed validity words) used by the durable window snapshots in `pier-cq`
//! and charged by the batch wire accounting; `decode(encode(c))` re-encodes
//! bit for bit.

use crate::value::{Value, ValueRef};
use std::sync::Arc;

/// Maximum number of distinct dictionary entries before a string column
/// spills from dictionary encoding to the byte-arena layout.
pub const DICT_MAX: usize = 64;

/// When true (the `reference-layout` feature), every column is forced to the
/// `Vec<Value>` fallback layout at ingest.
const FORCE_REFERENCE: bool = cfg!(feature = "reference-layout");

/// Validity bitmap: bit `r` set ⇔ row `r` holds a (typed) value, clear ⇔ the
/// row is null.  Bits past `len` are always zero, so the packed words are a
/// canonical byte encoding.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// Bitmap of `len` bits, all set to `valid`.
    pub fn with_len(len: usize, valid: bool) -> Bitmap {
        let mut words = vec![if valid { u64::MAX } else { 0 }; len.div_ceil(64)];
        if valid {
            if let Some(last) = words.last_mut() {
                let tail = len % 64;
                if tail != 0 {
                    *last &= (1u64 << tail) - 1;
                }
            }
        }
        Bitmap { words, len }
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            self.words[self.len / 64] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Bit `r` (panics when out of range).
    pub fn get(&self, r: usize) -> bool {
        assert!(r < self.len, "bitmap index {r} out of range {}", self.len);
        self.words[r / 64] >> (r % 64) & 1 == 1
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set (valid) bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every bit is set.
    pub fn all_valid(&self) -> bool {
        self.count_ones() == self.len
    }

    /// The packed `u64` words (bits past [`len`](Bitmap::len) are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from packed words; `None` when the word count does not match
    /// `len` or a bit past `len` is set (non-canonical input is rejected so
    /// decode→re-encode is bit-stable).
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Bitmap> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        if let Some(last) = words.last() {
            let tail = len % 64;
            if tail != 0 && *last >> tail != 0 {
                return None;
            }
        }
        Some(Bitmap { words, len })
    }
}

/// One column of a chunk, laid out as typed native buffers.
///
/// The variant fields are public so kernels (including the predicate-index
/// kernels in `pier-mqo`) can match on the layout and run over raw slices.
/// Invariants (maintained by every constructor in this crate, assumed by the
/// kernels):
///
/// - `validity`, when present, has exactly `len()` bits; `None` means all
///   rows valid.  Rows with a clear bit hold an unspecified (but encoded as
///   zero) slot in the data buffer.
/// - `Dict`: every code indexes `dict`; `dict.len() <= 256` (ingest caps it
///   at [`DICT_MAX`]); entries are unique, in first-seen order.
/// - `Str`: `offsets.len() == len() + 1`, monotone, `offsets[0] == 0`,
///   `offsets[len()] == arena.len()`; row `r`'s bytes are
///   `arena[offsets[r]..offsets[r+1]]` and are valid UTF-8.
#[derive(Debug, Clone)]
pub enum Column {
    /// Native `i64` buffer.
    Int {
        /// Row values (zero at null rows).
        data: Vec<i64>,
        /// Null rows, if any.
        validity: Option<Bitmap>,
    },
    /// Native `f64` buffer.
    Float {
        /// Row values (zero at null rows).
        data: Vec<f64>,
        /// Null rows, if any.
        validity: Option<Bitmap>,
    },
    /// Boolean buffer.
    Bool {
        /// Row values (false at null rows).
        data: Vec<bool>,
        /// Null rows, if any.
        validity: Option<Bitmap>,
    },
    /// Dictionary-encoded strings (low cardinality).
    Dict {
        /// Per-row dictionary codes (0 at null rows).
        codes: Vec<u8>,
        /// Distinct values, first-seen order.
        dict: Vec<Arc<str>>,
        /// Null rows, if any.
        validity: Option<Bitmap>,
    },
    /// Arena-encoded strings (high cardinality).
    Str {
        /// Concatenated UTF-8 bytes of all rows.
        arena: Vec<u8>,
        /// Row `r` spans `arena[offsets[r]..offsets[r+1]]`.
        offsets: Vec<u32>,
        /// Null rows, if any.
        validity: Option<Bitmap>,
    },
    /// Fallback layout: one tagged [`Value`] per row (mixed-type columns,
    /// byte payloads, and the `reference-layout` differential oracle).
    Values(
        /// Row values.
        Vec<Value>,
    ),
}

impl Default for Column {
    fn default() -> Self {
        Column::new()
    }
}

fn is_all_null(vals: &[Value]) -> bool {
    vals.iter().all(Value::is_null)
}

/// Build the validity bitmap for a promotion of `nulls` leading nulls plus
/// one valid row, or `None` when there are no leading nulls.
fn promo_validity(nulls: usize) -> Option<Bitmap> {
    if nulls == 0 {
        return None;
    }
    let mut v = Bitmap::with_len(nulls, false);
    v.push(true);
    Some(v)
}

fn validity_push(validity: &mut Option<Bitmap>, len: usize, bit: bool) {
    match validity {
        Some(v) => v.push(bit),
        None if bit => {}
        None => {
            let mut v = Bitmap::with_len(len, true);
            v.push(false);
            *validity = Some(v);
        }
    }
}

impl Column {
    /// Fresh, empty column (fallback layout until the first value arrives).
    pub fn new() -> Column {
        Column::Values(Vec::new())
    }

    /// Force the `Vec<Value>` fallback layout — the reference path of the
    /// differential oracle suite.
    pub fn values_layout(vals: Vec<Value>) -> Column {
        Column::Values(vals)
    }

    /// Build a column from owned values, inferring the typed layout exactly
    /// as incremental ingest would.
    pub fn from_values(vals: Vec<Value>) -> Column {
        let mut col = Column::new();
        for v in vals {
            col.push_value(&v);
        }
        col
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { data, .. } => data.len(),
            Column::Float { data, .. } => data.len(),
            Column::Bool { data, .. } => data.len(),
            Column::Dict { codes, .. } => codes.len(),
            Column::Str { offsets, .. } => offsets.len() - 1,
            Column::Values(vals) => vals.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short layout name (`int`, `float`, `bool`, `dict`, `str`, `values`)
    /// for tests and trace output.
    pub fn layout_name(&self) -> &'static str {
        match self {
            Column::Int { .. } => "int",
            Column::Float { .. } => "float",
            Column::Bool { .. } => "bool",
            Column::Dict { .. } => "dict",
            Column::Str { .. } => "str",
            Column::Values(_) => "values",
        }
    }

    /// The validity bitmap of a typed layout (`None` for all-valid typed
    /// columns and for the fallback layout, which carries nulls inline).
    pub fn validity(&self) -> Option<&Bitmap> {
        match self {
            Column::Int { validity, .. }
            | Column::Float { validity, .. }
            | Column::Bool { validity, .. }
            | Column::Dict { validity, .. }
            | Column::Str { validity, .. } => validity.as_ref(),
            Column::Values(_) => None,
        }
    }

    /// True when row `r` holds a non-null value.
    pub fn is_valid(&self, r: usize) -> bool {
        match self {
            Column::Values(vals) => !vals[r].is_null(),
            _ => self.validity().is_none_or(|v| v.get(r)),
        }
    }

    /// Borrowed view of row `r` — allocation-free on every layout.
    pub fn value_ref(&self, r: usize) -> ValueRef<'_> {
        match self {
            Column::Int { data, validity } => match validity {
                Some(v) if !v.get(r) => ValueRef::Null,
                _ => ValueRef::Int(data[r]),
            },
            Column::Float { data, validity } => match validity {
                Some(v) if !v.get(r) => ValueRef::Null,
                _ => ValueRef::Float(data[r]),
            },
            Column::Bool { data, validity } => match validity {
                Some(v) if !v.get(r) => ValueRef::Null,
                _ => ValueRef::Bool(data[r]),
            },
            Column::Dict {
                codes,
                dict,
                validity,
            } => match validity {
                Some(v) if !v.get(r) => ValueRef::Null,
                _ => ValueRef::Str(&dict[codes[r] as usize]),
            },
            Column::Str {
                arena,
                offsets,
                validity,
            } => match validity {
                Some(v) if !v.get(r) => ValueRef::Null,
                _ => {
                    let bytes = &arena[offsets[r] as usize..offsets[r + 1] as usize];
                    // Invariant: arena bytes are valid UTF-8 (pushed from &str).
                    ValueRef::Str(std::str::from_utf8(bytes).expect("arena holds UTF-8"))
                }
            },
            Column::Values(vals) => vals[r].as_ref(),
        }
    }

    /// Owned value of row `r`.  Allocation-free for every layout except
    /// arena strings (which must materialise an `Arc<str>`); dictionary rows
    /// hand out the shared entry with a reference-count bump.
    pub fn value(&self, r: usize) -> Value {
        match self {
            Column::Dict {
                codes,
                dict,
                validity,
            } => match validity {
                Some(v) if !v.get(r) => Value::Null,
                _ => Value::Str(Arc::clone(&dict[codes[r] as usize])),
            },
            Column::Values(vals) => vals[r].clone(),
            _ => self.value_ref(r).to_value(),
        }
    }

    /// Materialise every row (the reference representation).
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|r| self.value(r)).collect()
    }

    /// Append a null row.
    pub fn push_null(&mut self) {
        let len = self.len();
        match self {
            Column::Values(vals) => vals.push(Value::Null),
            Column::Int { data, validity } => {
                data.push(0);
                validity_push(validity, len, false);
            }
            Column::Float { data, validity } => {
                data.push(0.0);
                validity_push(validity, len, false);
            }
            Column::Bool { data, validity } => {
                data.push(false);
                validity_push(validity, len, false);
            }
            Column::Dict {
                codes, validity, ..
            } => {
                codes.push(0);
                validity_push(validity, len, false);
            }
            Column::Str {
                offsets,
                validity,
                arena,
            } => {
                offsets.push(arena.len() as u32);
                validity_push(validity, len, false);
            }
        }
    }

    /// Append one owned value, promoting / degrading the layout as needed.
    /// String pushes get the dictionary's `Arc` pointer fast path.
    pub fn push_value(&mut self, v: &Value) {
        match v {
            Value::Str(s) => self.push_str_arc(s),
            other => self.push_ref(other.as_ref()),
        }
    }

    /// Append one borrowed value, promoting / degrading the layout as
    /// needed.
    pub fn push_ref(&mut self, v: ValueRef<'_>) {
        if FORCE_REFERENCE {
            self.degrade();
        }
        match v {
            ValueRef::Null => self.push_null(),
            ValueRef::Int(i) => self.push_int(i),
            ValueRef::Float(f) => self.push_float(f),
            ValueRef::Bool(b) => self.push_bool(b),
            ValueRef::Str(s) => self.push_str(s),
            ValueRef::Bytes(b) => {
                self.degrade();
                let Column::Values(vals) = self else {
                    unreachable!()
                };
                vals.push(Value::bytes(b));
            }
        }
    }

    fn push_int(&mut self, i: i64) {
        match self {
            Column::Int { data, validity } => {
                data.push(i);
                if let Some(v) = validity {
                    v.push(true);
                }
            }
            Column::Values(vals) if !FORCE_REFERENCE && is_all_null(vals) => {
                let nulls = vals.len();
                let mut data = vec![0i64; nulls];
                data.push(i);
                *self = Column::Int {
                    data,
                    validity: promo_validity(nulls),
                };
            }
            _ => {
                self.degrade();
                let Column::Values(vals) = self else {
                    unreachable!()
                };
                vals.push(Value::Int(i));
            }
        }
    }

    fn push_float(&mut self, f: f64) {
        match self {
            Column::Float { data, validity } => {
                data.push(f);
                if let Some(v) = validity {
                    v.push(true);
                }
            }
            Column::Values(vals) if !FORCE_REFERENCE && is_all_null(vals) => {
                let nulls = vals.len();
                let mut data = vec![0f64; nulls];
                data.push(f);
                *self = Column::Float {
                    data,
                    validity: promo_validity(nulls),
                };
            }
            _ => {
                self.degrade();
                let Column::Values(vals) = self else {
                    unreachable!()
                };
                vals.push(Value::Float(f));
            }
        }
    }

    fn push_bool(&mut self, b: bool) {
        match self {
            Column::Bool { data, validity } => {
                data.push(b);
                if let Some(v) = validity {
                    v.push(true);
                }
            }
            Column::Values(vals) if !FORCE_REFERENCE && is_all_null(vals) => {
                let nulls = vals.len();
                let mut data = vec![false; nulls];
                data.push(b);
                *self = Column::Bool {
                    data,
                    validity: promo_validity(nulls),
                };
            }
            _ => {
                self.degrade();
                let Column::Values(vals) = self else {
                    unreachable!()
                };
                vals.push(Value::Bool(b));
            }
        }
    }

    /// Find or insert `s` in the dictionary; `None` when the dictionary is
    /// full and `s` is new (the spill trigger).
    fn dict_code(dict: &mut Vec<Arc<str>>, s: &str, arc: Option<&Arc<str>>) -> Option<u8> {
        for (i, entry) in dict.iter().enumerate() {
            if let Some(a) = arc {
                if Arc::ptr_eq(a, entry) {
                    return Some(i as u8);
                }
            }
            if entry.as_ref() == s {
                return Some(i as u8);
            }
        }
        if dict.len() >= DICT_MAX {
            return None;
        }
        dict.push(arc.map_or_else(|| Arc::from(s), Arc::clone));
        Some((dict.len() - 1) as u8)
    }

    fn push_str(&mut self, s: &str) {
        self.push_str_inner(s, None);
    }

    fn push_str_arc(&mut self, s: &Arc<str>) {
        if FORCE_REFERENCE {
            self.degrade();
            let Column::Values(vals) = self else {
                unreachable!()
            };
            vals.push(Value::Str(Arc::clone(s)));
            return;
        }
        self.push_str_inner(s, Some(s));
    }

    fn push_str_inner(&mut self, s: &str, arc: Option<&Arc<str>>) {
        if FORCE_REFERENCE {
            self.degrade();
            let Column::Values(vals) = self else {
                unreachable!()
            };
            vals.push(Value::str(s));
            return;
        }
        match self {
            Column::Dict {
                codes,
                dict,
                validity,
            } => match Self::dict_code(dict, s, arc) {
                Some(code) => {
                    codes.push(code);
                    if let Some(v) = validity {
                        v.push(true);
                    }
                }
                None => {
                    self.spill_dict_to_arena();
                    self.push_str_inner(s, arc);
                }
            },
            Column::Str {
                arena,
                offsets,
                validity,
            } => {
                arena.extend_from_slice(s.as_bytes());
                offsets.push(arena.len() as u32);
                if let Some(v) = validity {
                    v.push(true);
                }
            }
            Column::Values(vals) if is_all_null(vals) => {
                let nulls = vals.len();
                let mut dict = Vec::new();
                let code = Self::dict_code(&mut dict, s, arc).expect("fresh dict");
                let mut codes = vec![0u8; nulls];
                codes.push(code);
                *self = Column::Dict {
                    codes,
                    dict,
                    validity: promo_validity(nulls),
                };
            }
            _ => {
                self.degrade();
                let Column::Values(vals) = self else {
                    unreachable!()
                };
                vals.push(arc.map_or_else(|| Value::str(s), |a| Value::Str(Arc::clone(a))));
            }
        }
    }

    /// Convert a full dictionary column to the arena layout in place.
    fn spill_dict_to_arena(&mut self) {
        let Column::Dict {
            codes,
            dict,
            validity,
        } = self
        else {
            return;
        };
        let mut arena = Vec::new();
        let mut offsets = Vec::with_capacity(codes.len() + 1);
        offsets.push(0u32);
        for (r, &code) in codes.iter().enumerate() {
            let valid = validity.as_ref().is_none_or(|v| v.get(r));
            if valid {
                arena.extend_from_slice(dict[code as usize].as_bytes());
            }
            offsets.push(arena.len() as u32);
        }
        *self = Column::Str {
            arena,
            offsets,
            validity: validity.take(),
        };
    }

    /// Degrade to the `Vec<Value>` fallback layout in place (type-mismatch
    /// escape hatch; a no-op when already there).
    pub fn degrade(&mut self) {
        if !matches!(self, Column::Values(_)) {
            *self = Column::Values(self.to_values());
        }
    }

    /// Gather rows by index into a new column, preserving the layout
    /// (dictionary columns share their `Arc<str>` entries; arena columns
    /// rebuild a compact arena).  Panics on out-of-range indices.
    pub fn gather(&self, idx: &[u32]) -> Column {
        let gather_validity = |validity: &Option<Bitmap>| -> Option<Bitmap> {
            validity.as_ref().map(|v| {
                let mut out = Bitmap::new();
                for &i in idx {
                    out.push(v.get(i as usize));
                }
                out
            })
        };
        match self {
            Column::Int { data, validity } => Column::Int {
                data: idx.iter().map(|&i| data[i as usize]).collect(),
                validity: gather_validity(validity),
            },
            Column::Float { data, validity } => Column::Float {
                data: idx.iter().map(|&i| data[i as usize]).collect(),
                validity: gather_validity(validity),
            },
            Column::Bool { data, validity } => Column::Bool {
                data: idx.iter().map(|&i| data[i as usize]).collect(),
                validity: gather_validity(validity),
            },
            Column::Dict {
                codes,
                dict,
                validity,
            } => Column::Dict {
                codes: idx.iter().map(|&i| codes[i as usize]).collect(),
                dict: dict.clone(),
                validity: gather_validity(validity),
            },
            Column::Str {
                arena,
                offsets,
                validity,
            } => {
                let mut out_arena = Vec::new();
                let mut out_offsets = Vec::with_capacity(idx.len() + 1);
                out_offsets.push(0u32);
                for &i in idx {
                    let (a, b) = (
                        offsets[i as usize] as usize,
                        offsets[i as usize + 1] as usize,
                    );
                    out_arena.extend_from_slice(&arena[a..b]);
                    out_offsets.push(out_arena.len() as u32);
                }
                Column::Str {
                    arena: out_arena,
                    offsets: out_offsets,
                    validity: gather_validity(validity),
                }
            }
            Column::Values(vals) => {
                Column::Values(idx.iter().map(|&i| vals[i as usize].clone()).collect())
            }
        }
    }

    /// Exact length in bytes of [`encode_body`](Column::encode_body)'s
    /// output, computed without encoding.
    pub fn encoded_len(&self) -> usize {
        let rows = self.len();
        let validity_len = |validity: &Option<Bitmap>| match validity {
            Some(_) => 1 + rows.div_ceil(64) * 8,
            None => 1,
        };
        1 + match self {
            Column::Int { validity, .. } | Column::Float { validity, .. } => {
                validity_len(validity) + rows * 8
            }
            Column::Bool { validity, .. } => validity_len(validity) + rows.div_ceil(64) * 8,
            Column::Dict { dict, validity, .. } => {
                validity_len(validity) + 2 + dict.iter().map(|s| 4 + s.len()).sum::<usize>() + rows
            }
            Column::Str {
                arena, validity, ..
            } => validity_len(validity) + 4 + arena.len() + (rows + 1) * 4,
            Column::Values(vals) => vals
                .iter()
                .map(pier_runtime::WireSize::wire_size)
                .sum::<usize>(),
        }
    }

    /// Append this column's byte encoding: a layout tag, the validity block
    /// (presence byte + packed `u64` LE words), then the layout payload —
    /// raw LE buffers for numerics, packed words for bools, dictionary page
    /// (entry count + length-prefixed entries) + codes for dictionaries,
    /// arena bytes + `u32` LE offsets for arena strings, tagged values for
    /// the fallback.  The row count is *not* encoded; it travels in the
    /// chunk header.
    pub fn encode_body(&self, buf: &mut Vec<u8>) {
        fn encode_validity(buf: &mut Vec<u8>, validity: &Option<Bitmap>) {
            match validity {
                None => buf.push(0),
                Some(v) => {
                    buf.push(1);
                    for w in v.words() {
                        buf.extend_from_slice(&w.to_le_bytes());
                    }
                }
            }
        }
        match self {
            Column::Int { data, validity } => {
                buf.push(1);
                encode_validity(buf, validity);
                for v in data {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            Column::Float { data, validity } => {
                buf.push(2);
                encode_validity(buf, validity);
                for v in data {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            Column::Bool { data, validity } => {
                buf.push(3);
                encode_validity(buf, validity);
                let mut packed = Bitmap::new();
                for &b in data {
                    packed.push(b);
                }
                for w in packed.words() {
                    buf.extend_from_slice(&w.to_le_bytes());
                }
            }
            Column::Dict {
                codes,
                dict,
                validity,
            } => {
                buf.push(4);
                encode_validity(buf, validity);
                buf.extend_from_slice(&(dict.len() as u16).to_le_bytes());
                for entry in dict {
                    buf.extend_from_slice(&(entry.len() as u32).to_le_bytes());
                    buf.extend_from_slice(entry.as_bytes());
                }
                buf.extend_from_slice(codes);
            }
            Column::Str {
                arena,
                offsets,
                validity,
            } => {
                buf.push(5);
                encode_validity(buf, validity);
                buf.extend_from_slice(&(arena.len() as u32).to_le_bytes());
                buf.extend_from_slice(arena);
                for o in offsets {
                    buf.extend_from_slice(&o.to_le_bytes());
                }
            }
            Column::Values(vals) => {
                buf.push(0);
                for v in vals {
                    v.encode(buf);
                }
            }
        }
    }

    /// Decode one column of `rows` rows from the front of `buf`, returning
    /// it and the bytes consumed.  `None` on truncated, non-canonical, or
    /// invariant-violating input.
    pub fn decode_body(rows: usize, buf: &[u8]) -> Option<(Column, usize)> {
        fn decode_validity(rows: usize, buf: &[u8]) -> Option<(Option<Bitmap>, usize)> {
            match *buf.first()? {
                0 => Some((None, 1)),
                1 => {
                    let nwords = rows.div_ceil(64);
                    let mut words = Vec::with_capacity(nwords);
                    let mut at = 1;
                    for _ in 0..nwords {
                        words.push(u64::from_le_bytes(buf.get(at..at + 8)?.try_into().ok()?));
                        at += 8;
                    }
                    Some((Some(Bitmap::from_words(words, rows)?), at))
                }
                _ => None,
            }
        }
        let tag = *buf.first()?;
        let rest = &buf[1..];
        match tag {
            0 => {
                let mut vals = Vec::with_capacity(rows);
                let mut at = 0;
                for _ in 0..rows {
                    let (v, used) = Value::decode(&rest[at.min(rest.len())..])?;
                    vals.push(v);
                    at += used;
                }
                Some((Column::Values(vals), 1 + at))
            }
            1 | 2 => {
                let (validity, mut at) = decode_validity(rows, rest)?;
                if tag == 1 {
                    let mut data = Vec::with_capacity(rows);
                    for _ in 0..rows {
                        data.push(i64::from_le_bytes(rest.get(at..at + 8)?.try_into().ok()?));
                        at += 8;
                    }
                    Some((Column::Int { data, validity }, 1 + at))
                } else {
                    let mut data = Vec::with_capacity(rows);
                    for _ in 0..rows {
                        data.push(f64::from_le_bytes(rest.get(at..at + 8)?.try_into().ok()?));
                        at += 8;
                    }
                    Some((Column::Float { data, validity }, 1 + at))
                }
            }
            3 => {
                let (validity, mut at) = decode_validity(rows, rest)?;
                let nwords = rows.div_ceil(64);
                let mut words = Vec::with_capacity(nwords);
                for _ in 0..nwords {
                    words.push(u64::from_le_bytes(rest.get(at..at + 8)?.try_into().ok()?));
                    at += 8;
                }
                let packed = Bitmap::from_words(words, rows)?;
                let data = (0..rows).map(|r| packed.get(r)).collect();
                Some((Column::Bool { data, validity }, 1 + at))
            }
            4 => {
                let (validity, mut at) = decode_validity(rows, rest)?;
                let dict_len = u16::from_le_bytes(rest.get(at..at + 2)?.try_into().ok()?) as usize;
                at += 2;
                if dict_len > 256 {
                    return None;
                }
                let mut dict = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    let len = u32::from_le_bytes(rest.get(at..at + 4)?.try_into().ok()?) as usize;
                    at += 4;
                    let s = std::str::from_utf8(rest.get(at..at + len)?).ok()?;
                    dict.push(Arc::<str>::from(s));
                    at += len;
                }
                let codes: Vec<u8> = rest.get(at..at + rows)?.to_vec();
                at += rows;
                if codes.iter().any(|&c| c as usize >= dict_len.max(1)) {
                    return None;
                }
                Some((
                    Column::Dict {
                        codes,
                        dict,
                        validity,
                    },
                    1 + at,
                ))
            }
            5 => {
                let (validity, mut at) = decode_validity(rows, rest)?;
                let arena_len = u32::from_le_bytes(rest.get(at..at + 4)?.try_into().ok()?) as usize;
                at += 4;
                let arena = rest.get(at..at + arena_len)?.to_vec();
                at += arena_len;
                let mut offsets = Vec::with_capacity(rows + 1);
                for _ in 0..rows + 1 {
                    offsets.push(u32::from_le_bytes(rest.get(at..at + 4)?.try_into().ok()?));
                    at += 4;
                }
                if offsets[0] != 0
                    || offsets[rows] as usize != arena.len()
                    || offsets.windows(2).any(|w| w[0] > w[1])
                {
                    return None;
                }
                for w in offsets.windows(2) {
                    if std::str::from_utf8(&arena[w[0] as usize..w[1] as usize]).is_err() {
                        return None;
                    }
                }
                Some((
                    Column::Str {
                        arena,
                        offsets,
                        validity,
                    },
                    1 + at,
                ))
            }
            _ => None,
        }
    }
}

/// Logical row-wise equality (same values in the same order, regardless of
/// layout) — matches the old `Vec<Value>` column equality, including its
/// float semantics (`NaN != NaN`).
impl PartialEq for Column {
    fn eq(&self, other: &Column) -> bool {
        self.len() == other.len()
            && (0..self.len()).all(|r| self.value_ref(r) == other.value_ref(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_push_get_and_canonical_words() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0);
        }
        assert_eq!(b.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
        let back = Bitmap::from_words(b.words().to_vec(), 130).unwrap();
        assert_eq!(back, b);
        // Non-canonical tail bit is rejected.
        let mut words = b.words().to_vec();
        let last = words.len() - 1;
        words[last] |= 1u64 << 63;
        assert!(Bitmap::from_words(words, 130).is_none());
        assert!(Bitmap::with_len(70, true).all_valid());
        assert_eq!(Bitmap::with_len(70, false).count_ones(), 0);
    }

    #[test]
    fn ingest_infers_typed_layouts() {
        let ints = Column::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]);
        if !FORCE_REFERENCE {
            assert_eq!(ints.layout_name(), "int");
            assert_eq!(ints.validity().unwrap().count_ones(), 2);
        }
        assert_eq!(
            ints.to_values(),
            vec![Value::Int(1), Value::Null, Value::Int(3)]
        );

        let strs = Column::from_values(vec![Value::str("a"), Value::str("b"), Value::str("a")]);
        if !FORCE_REFERENCE {
            assert_eq!(strs.layout_name(), "dict");
        }
        assert_eq!(strs.value(2), Value::str("a"));

        // Leading nulls then a float: promotion keeps the nulls.
        let floats = Column::from_values(vec![Value::Null, Value::Float(2.5)]);
        if !FORCE_REFERENCE {
            assert_eq!(floats.layout_name(), "float");
        }
        assert_eq!(floats.to_values(), vec![Value::Null, Value::Float(2.5)]);

        // Mixed types degrade to the fallback.
        let mixed = Column::from_values(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(mixed.layout_name(), "values");
        assert_eq!(mixed.to_values(), vec![Value::Int(1), Value::str("x")]);

        // Bytes always use the fallback.
        let bytes = Column::from_values(vec![Value::bytes([1, 2])]);
        assert_eq!(bytes.layout_name(), "values");
    }

    #[test]
    fn dict_spills_to_arena_past_the_cap() {
        let vals: Vec<Value> = (0..DICT_MAX as i64 + 5)
            .map(|i| Value::str(format!("s{i}")))
            .collect();
        let col = Column::from_values(vals.clone());
        if !FORCE_REFERENCE {
            assert_eq!(col.layout_name(), "str");
        }
        assert_eq!(col.to_values(), vals);
    }

    #[test]
    fn dict_push_shares_the_arc() {
        if FORCE_REFERENCE {
            return;
        }
        let s = Value::str("shared");
        let mut col = Column::new();
        col.push_value(&s);
        col.push_value(&s);
        match (&col.value(1), &s) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => panic!("expected dict layout"),
        }
    }

    #[test]
    fn gather_preserves_layout_and_values() {
        let vals = vec![Value::Int(10), Value::Null, Value::Int(30), Value::Int(40)];
        let col = Column::from_values(vals.clone());
        let picked = col.gather(&[3, 1, 0]);
        assert_eq!(picked.layout_name(), col.layout_name());
        assert_eq!(
            picked.to_values(),
            vec![Value::Int(40), Value::Null, Value::Int(10)]
        );

        let strs: Vec<Value> = (0..100).map(|i| Value::str(format!("v{i}"))).collect();
        let arena = Column::from_values(strs.clone());
        let picked = arena.gather(&[99, 0, 50]);
        assert_eq!(
            picked.to_values(),
            vec![strs[99].clone(), strs[0].clone(), strs[50].clone()]
        );
    }

    #[test]
    fn codec_round_trips_every_layout_bit_for_bit() {
        let columns = vec![
            Column::from_values(vec![Value::Int(1), Value::Null, Value::Int(-5)]),
            Column::from_values(vec![Value::Float(0.5), Value::Float(-0.0)]),
            Column::from_values(vec![Value::Bool(true), Value::Null, Value::Bool(false)]),
            Column::from_values(vec![Value::str("a"), Value::str("b"), Value::Null]),
            Column::from_values(
                (0..DICT_MAX as i64 + 2)
                    .map(|i| Value::str(format!("s{i}")))
                    .collect(),
            ),
            Column::values_layout(vec![Value::Int(1), Value::bytes([9, 9]), Value::Null]),
            Column::new(),
        ];
        for col in &columns {
            let mut buf = Vec::new();
            col.encode_body(&mut buf);
            assert_eq!(buf.len(), col.encoded_len(), "{}", col.layout_name());
            let (back, used) = Column::decode_body(col.len(), &buf).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(&back, col, "{}", col.layout_name());
            let mut again = Vec::new();
            back.encode_body(&mut again);
            assert_eq!(buf, again, "{}", col.layout_name());
        }
    }

    #[test]
    fn decode_rejects_torn_and_non_canonical_input() {
        let col = Column::from_values(vec![Value::Int(7), Value::Int(8)]);
        let mut buf = Vec::new();
        col.encode_body(&mut buf);
        assert!(Column::decode_body(2, &buf[..buf.len() - 1]).is_none());
        assert!(Column::decode_body(2, &[42]).is_none());
        // A dict code past the dictionary is rejected.
        let mut bad = Vec::new();
        Column::from_values(vec![Value::str("a")]).encode_body(&mut bad);
        if !FORCE_REFERENCE {
            let last = bad.len() - 1;
            bad[last] = 7;
            assert!(Column::decode_body(1, &bad).is_none());
        }
    }

    #[test]
    fn logical_equality_crosses_layouts() {
        let vals = vec![Value::str("x"), Value::Null, Value::str("y")];
        let typed = Column::from_values(vals.clone());
        let reference = Column::values_layout(vals);
        assert_eq!(typed, reference);
        let other = Column::values_layout(vec![Value::str("x"), Value::Null, Value::str("z")]);
        assert_ne!(typed, other);
    }
}
