//! Query plans: UFL opgraphs and their physical operator specifications.
//!
//! PIER queries are written in UFL, a "box-and-arrow" dataflow language
//! whose programs *are* physical execution plans (§3.3.2).  A plan is a set
//! of **opgraphs**; separate opgraphs are connected through the DHT (a
//! namespace acts as the rendezvous, like a distributed Exchange), and each
//! opgraph is the unit of dissemination — it is shipped only to the nodes
//! that must run it, using one of the three distributed indexes of §3.3.3
//! (the broadcast tree, the equality index, or — once integrated — the PHT
//! range index).
//!
//! These types are plain data: they travel across the network inside
//! [`QpObject`] values and are instantiated into runtime operator state by
//! the [`executor`](crate::node).

use crate::aggregate::AggFunc;
use crate::expr::Expr;
use crate::operators::{
    Distinct, GroupBy, Limit, LocalOperator, Projection, Queue, Selection, TopK,
};
use crate::tuple::{Tuple, TupleBatch};
use pier_cq::{CqBudget, DeltaMode, WindowSpec};
use pier_runtime::{Duration, NodeAddr, WireSize};

/// Serializable description of a local physical operator.
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorSpec {
    /// Filter by predicate.
    Selection(Expr),
    /// Project onto columns.
    Projection(Vec<String>),
    /// Duplicate elimination on key columns (all columns when empty).
    Distinct(Vec<String>),
    /// Grouped aggregation producing tuples in `output_table`.
    GroupBy {
        /// Grouping columns.
        group_cols: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggFunc>,
        /// Table name of the produced tuples.
        output_table: String,
    },
    /// Keep the `k` tuples with the largest `order_col`.
    TopK {
        /// Number of tuples to keep.
        k: usize,
        /// Column ordered on (descending).
        order_col: String,
    },
    /// Pass at most `n` tuples.
    Limit(usize),
    /// Explicit yield point (control returns to the scheduler).
    Queue,
    /// Distributed index join (Fetch Matches, §3.3.3): for every input tuple,
    /// fetch the objects published under `inner_namespace` with partitioning
    /// key equal to the probe column's value and join them.  Handled
    /// asynchronously by the executor; must be the last operator before the
    /// sink.
    FetchMatches {
        /// Namespace of the inner (index) relation.
        inner_namespace: String,
        /// Column of the outer tuple providing the probe key.
        probe_col: String,
        /// Table name of join-result tuples.
        output_table: String,
    },
    /// A Fetch Matches join whose probe column already holds the inner
    /// relation's exact partitioning-key string — the *tupleID* of a
    /// secondary-index entry (§3.3.3).  The index entry is the outer
    /// relation; the executor follows the tupleID with a DHT `get` to fetch
    /// the base tuples.  Like [`OperatorSpec::FetchMatches`], it is handled
    /// by the executor and must be the last operator before the sink.
    FetchByTupleId {
        /// Namespace of the base relation the tupleID points into.
        inner_namespace: String,
        /// Column of the outer tuple holding the tupleID (partition-key
        /// string) of the base tuple.
        id_col: String,
        /// Table name of join-result tuples.
        output_table: String,
    },
    /// An eddy (§4.2.2) wired over a set of named, commutative selection
    /// predicates: the operator reorders them at run time according to the
    /// chosen routing policy.
    Eddy {
        /// (name, predicate) pairs the eddy routes tuples through.
        predicates: Vec<(String, Expr)>,
        /// The routing policy.
        policy: crate::eddy::RoutingPolicy,
    },
}

impl OperatorSpec {
    /// Instantiate the operator.  `None` for [`OperatorSpec::FetchMatches`],
    /// which is coordinated by the executor rather than run locally.
    pub fn build(&self) -> Option<Box<dyn LocalOperator + Send>> {
        match self {
            OperatorSpec::Selection(p) => Some(Box::new(Selection::new(p.clone()))),
            OperatorSpec::Projection(cols) => Some(Box::new(Projection::new(cols.clone()))),
            OperatorSpec::Distinct(key) => Some(Box::new(Distinct::new(key.clone()))),
            OperatorSpec::GroupBy {
                group_cols,
                aggs,
                output_table,
            } => Some(Box::new(GroupBy::new(
                group_cols.clone(),
                aggs.clone(),
                output_table.clone(),
            ))),
            OperatorSpec::TopK { k, order_col } => Some(Box::new(TopK::new(*k, order_col.clone()))),
            OperatorSpec::Limit(n) => Some(Box::new(Limit::new(*n))),
            OperatorSpec::Queue => Some(Box::new(Queue::default())),
            OperatorSpec::Eddy { predicates, policy } => Some(Box::new(
                crate::eddy::Eddy::over_predicates(predicates.clone(), *policy, 0x0E001),
            )),
            OperatorSpec::FetchMatches { .. } | OperatorSpec::FetchByTupleId { .. } => None,
        }
    }
}

impl WireSize for OperatorSpec {
    fn wire_size(&self) -> usize {
        // A coarse but monotone estimate: specs are small compared to data.
        32
    }
}

/// Where an opgraph's input tuples come from.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceSpec {
    /// Tuples of a table: both rows stored locally at the node (the access
    /// method over node-local data such as its own firewall log) and rows of
    /// the DHT-published partition this node is responsible for, plus any
    /// new rows that arrive while the query runs.
    Table {
        /// Table namespace.
        namespace: String,
    },
}

impl SourceSpec {
    /// The namespace this source reads.
    pub fn namespace(&self) -> &str {
        match self {
            SourceSpec::Table { namespace } => namespace,
        }
    }
}

/// A two-input symmetric-hash join consumed from a rehash namespace: tuples
/// of `left_table` and `right_table` arrive interleaved and join on
/// `left_key = right_key`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSpec {
    /// Table name identifying left-side tuples.
    pub left_table: String,
    /// Table name identifying right-side tuples.
    pub right_table: String,
    /// Left join-key columns.
    pub left_key: Vec<String>,
    /// Right join-key columns.
    pub right_key: Vec<String>,
    /// Table name of join results.
    pub output_table: String,
}

/// Where an opgraph's output tuples go.
#[derive(Debug, Clone, PartialEq)]
pub enum SinkSpec {
    /// Send result tuples directly to the query's proxy node.
    ToProxy,
    /// Repartition by key through the DHT (the Put/Exchange operator): each
    /// tuple is published under `namespace` hashed on `key_cols`, where the
    /// consuming opgraph picks it up.
    Rehash {
        /// Rendezvous namespace.
        namespace: String,
        /// Hashing attributes.
        key_cols: Vec<String>,
    },
    /// Hierarchical aggregation (§3.3.4): aggregate locally, ship partials
    /// up an aggregation tree rooted at the query-specific root identifier,
    /// combine en route, and apply `final_ops` at the root before forwarding
    /// the answer to the proxy.
    HierarchicalAgg {
        /// Grouping columns.
        group_cols: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggFunc>,
        /// How long a node buffers partials before forwarding them up.
        hold: Duration,
        /// Operators applied to the merged result at the root (e.g. top-k).
        final_ops: Vec<OperatorSpec>,
        /// When true, partials are sent straight to the root's address
        /// (flat aggregation) instead of hop-by-hop combination; used as the
        /// baseline in the hierarchical-aggregation ablation.
        flat: bool,
    },
    /// Windowed continuous aggregation (the `pier-cq` subsystem): tuples are
    /// folded into tumbling/sliding time windows at each node; closed-window
    /// partials travel toward the query's window root (combining en route at
    /// upcall hops), and the root streams per-window results to the proxy as
    /// snapshots or insert/retract deltas.
    WindowedAgg {
        /// The tumbling/sliding window specification.
        window: WindowSpec,
        /// Grouping columns within each window.
        group_cols: Vec<String>,
        /// Aggregates to compute per window and group.
        aggs: Vec<AggFunc>,
        /// Column carrying the event time (virtual-time microseconds);
        /// tuples without it fall back to arrival time.
        time_col: Option<String>,
        /// Window-scoped duplicate-elimination columns (empty = none).
        dedup_cols: Vec<String>,
        /// Snapshot or insert/retract output semantics.
        delta: DeltaMode,
        /// Operators applied to each window's merged result at the root
        /// (e.g. top-k) before streaming to the proxy.
        final_ops: Vec<OperatorSpec>,
    },
}

/// How a plan (or a single opgraph) is shipped to the nodes that must run it.
#[derive(Debug, Clone, PartialEq)]
pub enum Dissemination {
    /// Broadcast over the distribution tree — the true-predicate index.
    Broadcast,
    /// Route to the single node responsible for `hash(namespace, key)` — the
    /// equality-predicate index.
    ByKey {
        /// Table namespace the predicate constrains.
        namespace: String,
        /// Canonical key string of the equality constant.
        key: String,
    },
    /// Route to the nodes responsible for the PHT-style range-index buckets
    /// overlapping a range predicate (§3.3.3 "Range Index Substrate"); the
    /// bucket keys are computed by
    /// [`range_index::RangeIndexConfig::buckets_for_range`](crate::range_index::RangeIndexConfig::buckets_for_range).
    ByRange {
        /// Table namespace the predicate constrains.
        namespace: String,
        /// Partition keys of the overlapping buckets.
        bucket_keys: Vec<String>,
    },
    /// Install only at the proxy (used for purely local queries and tests).
    Local,
}

/// One operator graph: source → local operators → sink.
#[derive(Debug, Clone, PartialEq)]
pub struct OpGraph {
    /// Identifier unique within the plan.
    pub id: u32,
    /// Input.
    pub source: SourceSpec,
    /// Optional two-input join fed by the source namespace.
    pub join: Option<JoinSpec>,
    /// Local operator pipeline.
    pub ops: Vec<OperatorSpec>,
    /// Output.
    pub sink: SinkSpec,
}

/// The soft-state lifecycle of a *continuous* query (the `pier-cq`
/// subsystem): how often the proxy re-disseminates the standing plan, how
/// long each (re)dissemination leases the query at a node, and the
/// work/state budget every node enforces for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CqSpec {
    /// Proxy re-dissemination (lease renewal) period.  Re-dissemination
    /// doubles as churn repair: nodes that joined or restarted after the
    /// original dissemination pick the query up on the next round.
    pub renew_every: Duration,
    /// Lease granted by each (re)dissemination; a node missing renewals
    /// uninstalls the query when the lease lapses.
    pub lease: Duration,
    /// Per-node work/state bound for the query's window state.
    pub budget: CqBudget,
    /// Refuse multi-query sharing: install with a private dataflow even
    /// when a sharing layer is configured.  Durable standing queries want
    /// this — shared group state lives outside the per-query window stores
    /// and is not persisted to segment logs, so only an exclusive query
    /// rehydrates warm after a restart.
    pub exclusive: bool,
}

impl Default for CqSpec {
    fn default() -> Self {
        let renew_every = 10_000_000; // 10 s
        CqSpec {
            renew_every,
            lease: renew_every * 3,
            budget: CqBudget::default(),
            exclusive: false,
        }
    }
}

impl CqSpec {
    /// Shortest accepted renewal period — a re-dissemination is a broadcast,
    /// so sub-second periods would flood the overlay.
    pub const MIN_RENEW_EVERY: Duration = 1_000_000;

    /// A lifecycle renewing every `renew_every` microseconds (clamped to
    /// [`CqSpec::MIN_RENEW_EVERY`]) with the conventional 3× lease.
    pub fn renewing_every(renew_every: Duration) -> Self {
        let renew_every = renew_every.max(Self::MIN_RENEW_EVERY);
        CqSpec {
            renew_every,
            lease: renew_every.saturating_mul(3),
            budget: CqBudget::default(),
            exclusive: false,
        }
    }

    /// Override the per-node budget.
    pub fn with_budget(mut self, budget: CqBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Opt out of multi-query sharing (see [`CqSpec::exclusive`]).
    pub fn exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }
}

impl WireSize for CqSpec {
    fn wire_size(&self) -> usize {
        16 + self.budget.wire_size()
    }
}

/// A complete query plan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Query identifier (assigned by the proxy when 0).
    pub query_id: u64,
    /// The proxy node results are forwarded to.
    pub proxy: NodeAddr,
    /// How the plan reaches the participating nodes.
    pub dissemination: Dissemination,
    /// The opgraphs making up the plan.
    pub opgraphs: Vec<OpGraph>,
    /// Lifetime of the query: execution stops when it expires (§3.3.2 uses
    /// timeouts for both snapshot and continuous queries).
    pub timeout: Duration,
    /// Continuous queries keep delivering results until the timeout; snapshot
    /// queries deliver what the timeout has collected.
    pub continuous: bool,
    /// Soft-state lifecycle for continuous queries; `None` for one-shot
    /// queries (install once, die at the timeout).
    pub cq: Option<CqSpec>,
    /// The tenant this query is billed to (admission control charges the
    /// plan's predicted cost against this tenant's SLO budget; `0` is the
    /// anonymous default tenant).
    pub tenant: u64,
    /// Shed-to-sampling modulus stamped by admission control before
    /// dissemination: every node keeps only one in `sample_every` source
    /// rows for this query.  `1` (the default) is full fidelity.  The
    /// counter is per query per node, so equal-seed runs thin identically.
    pub sample_every: u32,
    /// The query is traced: stamped **once at the proxy** (a deterministic
    /// 1-in-N draw from the proxy's seeded RNG, or forced by a sqlish
    /// `EXPLAIN ANALYZE` prefix) and disseminated with the plan, so every
    /// participating node agrees on the sampling decision without
    /// re-rolling.  Traced queries record `pier-trace` spans and attach
    /// wire trace contexts; untraced queries pay one boolean test.
    pub trace: bool,
}

impl QueryPlan {
    /// Namespace under which this query's partial aggregates travel.
    pub fn partial_namespace(&self) -> String {
        format!("q{}.partials", self.query_id)
    }

    /// The aggregation-tree root key for this query (hashing it yields the
    /// root identifier named in the query, §3.3.4).
    pub fn agg_root_key(&self) -> String {
        format!("q{}.agg-root", self.query_id)
    }

    /// Namespace under which this query's closed-window partials travel.
    pub fn window_namespace(&self) -> String {
        format!("q{}.windows", self.query_id)
    }

    /// The windowed-aggregation sink of this plan, if any.
    pub fn windowed_sink(&self) -> Option<(usize, &SinkSpec)> {
        self.opgraphs
            .iter()
            .enumerate()
            .find(|(_, g)| matches!(g.sink, SinkSpec::WindowedAgg { .. }))
            .map(|(i, g)| (i, &g.sink))
    }
}

impl WireSize for QueryPlan {
    fn wire_size(&self) -> usize {
        // 64 covers the fixed header (ids, proxy, timeout, tenant, the
        // sampling modulus and the trace flag); opgraphs are priced per
        // spec below.
        64 + self
            .opgraphs
            .iter()
            .map(|g| 48 + g.ops.iter().map(WireSize::wire_size).sum::<usize>())
            .sum::<usize>()
    }
}

/// Values stored in (and routed through) the DHT by the query processor.
#[derive(Debug, Clone, PartialEq)]
pub enum QpObject {
    /// A base or derived data tuple.
    Tuple(Tuple),
    /// A batch of same-destination tuples coalesced into one transfer (the
    /// executor's rehash/exchange and partial-aggregate paths); unpacked
    /// back into per-tuple dataflow at the receiving node.
    Batch(TupleBatch),
    /// A query plan being disseminated.
    Plan(QueryPlan),
}

impl QpObject {
    /// The tuple inside, if this is a single-tuple data object.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            QpObject::Tuple(t) => Some(t),
            QpObject::Batch(_) | QpObject::Plan(_) => None,
        }
    }

    /// Number of data tuples this object carries (0 for plans).
    pub fn tuple_count(&self) -> usize {
        match self {
            QpObject::Tuple(_) => 1,
            QpObject::Batch(b) => b.len(),
            QpObject::Plan(_) => 0,
        }
    }

    /// Iterate the data tuples this object carries: one for
    /// [`QpObject::Tuple`], all of them (materialised lazily from the
    /// columnar chunks; values are shared, not copied) for
    /// [`QpObject::Batch`], none for plans.  Batch-aware consumers should
    /// match on [`QpObject::Batch`] and walk the chunks instead.
    pub fn iter_tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        let (single, batch) = match self {
            QpObject::Tuple(t) => (Some(t.clone()), None),
            QpObject::Batch(b) => (None, Some(b.iter())),
            QpObject::Plan(_) => (None, None),
        };
        single.into_iter().chain(batch.into_iter().flatten())
    }

    /// Consume the object into its data tuples (empty for plans).
    pub fn into_tuples(self) -> Vec<Tuple> {
        match self {
            QpObject::Tuple(t) => vec![t],
            QpObject::Batch(b) => b.into_tuples(),
            QpObject::Plan(_) => Vec::new(),
        }
    }
}

impl WireSize for QpObject {
    fn wire_size(&self) -> usize {
        1 + match self {
            QpObject::Tuple(t) => t.wire_size(),
            QpObject::Batch(b) => b.wire_size(),
            QpObject::Plan(p) => p.wire_size(),
        }
    }
}

/// A convenience builder for the common single-table aggregation / selection
/// plans used by the examples and experiments.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    proxy: NodeAddr,
    dissemination: Dissemination,
    opgraphs: Vec<OpGraph>,
    timeout: Duration,
    continuous: bool,
    cq: Option<CqSpec>,
    tenant: u64,
}

impl PlanBuilder {
    /// Start building a plan whose results flow to `proxy`.
    pub fn new(proxy: NodeAddr) -> Self {
        PlanBuilder {
            proxy,
            dissemination: Dissemination::Broadcast,
            opgraphs: Vec::new(),
            timeout: 30_000_000,
            continuous: false,
            cq: None,
            tenant: 0,
        }
    }

    /// Bill the query to `tenant` (see [`QueryPlan::tenant`]).
    pub fn tenant(mut self, tenant: u64) -> Self {
        self.tenant = tenant;
        self
    }

    /// Set the dissemination strategy.
    pub fn dissemination(mut self, d: Dissemination) -> Self {
        self.dissemination = d;
        self
    }

    /// Set the query timeout.
    pub fn timeout(mut self, t: Duration) -> Self {
        self.timeout = t;
        self
    }

    /// Mark the query as continuous.
    pub fn continuous(mut self, yes: bool) -> Self {
        self.continuous = yes;
        self
    }

    /// Attach a continuous-query lifecycle (implies `continuous`).
    pub fn cq(mut self, spec: CqSpec) -> Self {
        self.cq = Some(spec);
        self.continuous = true;
        self
    }

    /// Add an opgraph.
    pub fn opgraph(mut self, graph: OpGraph) -> Self {
        self.opgraphs.push(graph);
        self
    }

    /// Finish building.
    pub fn build(self) -> QueryPlan {
        QueryPlan {
            query_id: 0,
            proxy: self.proxy,
            dissemination: self.dissemination,
            opgraphs: self.opgraphs,
            timeout: self.timeout,
            continuous: self.continuous,
            cq: self.cq,
            tenant: self.tenant,
            sample_every: 1,
            trace: false,
        }
    }

    /// Shorthand for a broadcast select-project query over one table.
    pub fn select(
        proxy: NodeAddr,
        table: &str,
        predicate: Expr,
        columns: Vec<String>,
        timeout: Duration,
    ) -> QueryPlan {
        let mut ops = vec![OperatorSpec::Selection(predicate)];
        if !columns.is_empty() {
            ops.push(OperatorSpec::Projection(columns));
        }
        PlanBuilder::new(proxy)
            .timeout(timeout)
            .opgraph(OpGraph {
                id: 0,
                source: SourceSpec::Table {
                    namespace: table.to_string(),
                },
                join: None,
                ops,
                sink: SinkSpec::ToProxy,
            })
            .build()
    }

    /// Shorthand for the continuous netmon query: a sliding-window grouped
    /// count over `table`, streamed per window to the proxy for as long as
    /// the proxy keeps renewing the query.
    pub fn windowed_group_count(
        proxy: NodeAddr,
        table: &str,
        group_col: &str,
        window: WindowSpec,
        cq: CqSpec,
        timeout: Duration,
    ) -> QueryPlan {
        PlanBuilder::new(proxy)
            .timeout(timeout)
            .cq(cq)
            .opgraph(OpGraph {
                id: 0,
                source: SourceSpec::Table {
                    namespace: table.to_string(),
                },
                join: None,
                ops: vec![],
                sink: SinkSpec::WindowedAgg {
                    window,
                    group_cols: vec![group_col.to_string()],
                    aggs: vec![AggFunc::Count],
                    time_col: Some("ts".to_string()),
                    dedup_cols: vec![],
                    delta: DeltaMode::Snapshot,
                    final_ops: vec![],
                },
            })
            .build()
    }

    /// Shorthand for one *tenant* of the multi-query monitoring workload: a
    /// windowed grouped count restricted to a single group constant
    /// (`WHERE group_col = watched`).  Plans built this way for different
    /// `watched` constants are identical up to the constant, so a sharing
    /// layer (`pier-mqo`) normalizes them into one share group; without a
    /// layer each runs as an independent continuous query.
    pub fn windowed_filtered_count(
        proxy: NodeAddr,
        table: &str,
        group_col: &str,
        watched: impl Into<crate::value::Value>,
        window: WindowSpec,
        cq: CqSpec,
        timeout: Duration,
    ) -> QueryPlan {
        PlanBuilder::new(proxy)
            .timeout(timeout)
            .cq(cq)
            .opgraph(OpGraph {
                id: 0,
                source: SourceSpec::Table {
                    namespace: table.to_string(),
                },
                join: None,
                ops: vec![OperatorSpec::Selection(Expr::eq(group_col, watched))],
                sink: SinkSpec::WindowedAgg {
                    window,
                    group_cols: vec![group_col.to_string()],
                    aggs: vec![AggFunc::Count],
                    time_col: Some("ts".to_string()),
                    dedup_cols: vec![],
                    delta: DeltaMode::Snapshot,
                    final_ops: vec![],
                },
            })
            .build()
    }

    /// Shorthand for the Figure-2 style "top-k grouped count" query computed
    /// with hierarchical aggregation.
    pub fn top_k_group_count(
        proxy: NodeAddr,
        table: &str,
        group_col: &str,
        k: usize,
        timeout: Duration,
    ) -> QueryPlan {
        PlanBuilder::new(proxy)
            .timeout(timeout)
            .opgraph(OpGraph {
                id: 0,
                source: SourceSpec::Table {
                    namespace: table.to_string(),
                },
                join: None,
                ops: vec![],
                sink: SinkSpec::HierarchicalAgg {
                    group_cols: vec![group_col.to_string()],
                    aggs: vec![AggFunc::Count],
                    hold: 2_000_000,
                    final_ops: vec![OperatorSpec::TopK {
                        k,
                        order_col: "count".to_string(),
                    }],
                    flat: false,
                },
            })
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn operator_specs_build_local_operators() {
        let specs = vec![
            OperatorSpec::Selection(Expr::eq("a", 1i64)),
            OperatorSpec::Projection(vec!["a".into()]),
            OperatorSpec::Distinct(vec![]),
            OperatorSpec::GroupBy {
                group_cols: vec!["a".into()],
                aggs: vec![AggFunc::Count],
                output_table: "g".into(),
            },
            OperatorSpec::TopK {
                k: 3,
                order_col: "count".into(),
            },
            OperatorSpec::Limit(5),
            OperatorSpec::Queue,
        ];
        for spec in &specs {
            assert!(spec.build().is_some(), "{spec:?} must build");
        }
        let fetch = OperatorSpec::FetchMatches {
            inner_namespace: "inv".into(),
            probe_col: "k".into(),
            output_table: "j".into(),
        };
        assert!(fetch.build().is_none(), "FetchMatches is executor-managed");
    }

    #[test]
    fn windowed_filtered_count_builds_a_share_eligible_shape() {
        use pier_cq::WindowSpec;
        let plan = PlanBuilder::windowed_filtered_count(
            NodeAddr(2),
            "packets",
            "src",
            "10.0.0.9",
            WindowSpec::sliding(2_000_000, 1_000_000),
            CqSpec::default(),
            60_000_000,
        );
        assert!(plan.cq.is_some());
        assert!(matches!(plan.dissemination, Dissemination::Broadcast));
        let graph = &plan.opgraphs[0];
        assert!(matches!(&graph.ops[..], [OperatorSpec::Selection(_)]));
        match &graph.sink {
            SinkSpec::WindowedAgg {
                group_cols,
                dedup_cols,
                ..
            } => {
                assert_eq!(group_cols, &vec!["src".to_string()]);
                assert!(dedup_cols.is_empty(), "dedup would block sharing");
            }
            other => panic!("unexpected sink {other:?}"),
        }
    }

    #[test]
    fn builder_shorthands_produce_expected_shapes() {
        let select = PlanBuilder::select(
            NodeAddr(3),
            "files",
            Expr::eq("keyword", "rock"),
            vec!["file".into()],
            10_000_000,
        );
        assert_eq!(select.opgraphs.len(), 1);
        assert_eq!(select.proxy, NodeAddr(3));
        assert!(matches!(select.opgraphs[0].sink, SinkSpec::ToProxy));
        assert_eq!(select.opgraphs[0].ops.len(), 2);

        let topk = PlanBuilder::top_k_group_count(NodeAddr(0), "events", "src", 10, 20_000_000);
        match &topk.opgraphs[0].sink {
            SinkSpec::HierarchicalAgg {
                group_cols,
                final_ops,
                flat,
                ..
            } => {
                assert_eq!(group_cols, &vec!["src".to_string()]);
                assert_eq!(final_ops.len(), 1);
                assert!(!flat);
            }
            other => panic!("unexpected sink {other:?}"),
        }
    }

    #[test]
    fn query_specific_names_include_the_query_id() {
        let mut plan = PlanBuilder::select(NodeAddr(0), "t", Expr::all(vec![]), vec![], 1_000);
        plan.query_id = 42;
        assert_eq!(plan.partial_namespace(), "q42.partials");
        assert_eq!(plan.agg_root_key(), "q42.agg-root");
    }

    #[test]
    fn qp_object_wire_size_scales_with_contents() {
        let small = QpObject::Tuple(Tuple::new("t", vec![("a", crate::value::Value::Int(1))]));
        let plan = QpObject::Plan(PlanBuilder::select(
            NodeAddr(0),
            "t",
            Expr::all(vec![]),
            vec![],
            1_000,
        ));
        assert!(small.wire_size() > 10);
        assert!(plan.wire_size() > 64);
        assert!(small.as_tuple().is_some());
        assert!(plan.as_tuple().is_none());
    }
}
