//! Predicate and scalar expressions.
//!
//! Expressions are evaluated against self-describing tuples with the
//! *best-effort* policy of §3.3.4: a missing field or an incompatible type
//! does not raise an error to the client — the evaluating operator simply
//! discards the tuple.  Evaluation therefore returns `Result` with
//! [`EvalError`] and operators map errors to "drop".
//!
//! **Compiled evaluation.**  [`Expr::eval`] resolves every column reference
//! by name, per tuple.  Operators on the hot path instead compile the
//! expression against an interned schema once ([`Expr::compile`]) — column
//! names become positional indices, mirroring what
//! [`ColumnResolver`](crate::tuple::ColumnResolver) does for key columns —
//! and then evaluate row after row by index, over either a row-major value
//! slice or a columnar [`ColumnChunk`](crate::tuple::ColumnChunk).
//! [`CompiledPredicate`] packages the per-schema compilation cache the way
//! selections and eddies use it.

use crate::tuple::{ChunkRow, ColumnChunk, Schema, Tuple};
use crate::value::Value;
use std::sync::Arc;

/// Why an expression could not be evaluated against a tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The tuple has no column with this name.
    MissingColumn(String),
    /// The operands had incompatible runtime types.
    TypeMismatch {
        /// Operation being attempted.
        op: &'static str,
        /// Left operand type.
        left: &'static str,
        /// Right operand type.
        right: &'static str,
    },
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (floating point).
    Div,
}

/// A scalar or boolean expression over a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Column(String),
    /// A literal constant.
    Const(Value),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic on two numeric sub-expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical AND (both sides must evaluate to booleans).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// True when the named string column contains the given substring
    /// (used by keyword-search queries).
    Contains(String, String),
}

impl Expr {
    /// Column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_string())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// `left op right` comparison.
    pub fn cmp(op: CmpOp, left: Expr, right: Expr) -> Expr {
        Expr::Cmp(op, Box::new(left), Box::new(right))
    }

    /// Convenience: `column = literal`.
    pub fn eq(column: &str, v: impl Into<Value>) -> Expr {
        Expr::cmp(CmpOp::Eq, Expr::col(column), Expr::lit(v))
    }

    /// Convenience: conjunction of a list of predicates (empty list = TRUE).
    pub fn all(preds: Vec<Expr>) -> Expr {
        preds
            .into_iter()
            .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
            .unwrap_or(Expr::Const(Value::Bool(true)))
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value, EvalError> {
        match self {
            Expr::Column(name) => tuple
                .get(name)
                .cloned()
                .ok_or_else(|| EvalError::MissingColumn(name.clone())),
            Expr::Const(v) => Ok(v.clone()),
            Expr::Cmp(op, l, r) => {
                let lv = l.eval(tuple)?;
                let rv = r.eval(tuple)?;
                match lv.compare(&rv) {
                    Some(ord) => Ok(Value::Bool(op.test(ord))),
                    None => Err(EvalError::TypeMismatch {
                        op: "compare",
                        left: lv.type_name(),
                        right: rv.type_name(),
                    }),
                }
            }
            Expr::Arith(op, l, r) => {
                let lv = l.eval(tuple)?;
                let rv = r.eval(tuple)?;
                match (lv.as_f64(), rv.as_f64()) {
                    (Some(a), Some(b)) => {
                        let out = match op {
                            ArithOp::Add => a + b,
                            ArithOp::Sub => a - b,
                            ArithOp::Mul => a * b,
                            ArithOp::Div => a / b,
                        };
                        // Preserve integer-ness when both inputs were ints
                        // and the operation is exact.
                        if matches!((&lv, &rv), (Value::Int(_), Value::Int(_)))
                            && out.fract() == 0.0
                            && !matches!(op, ArithOp::Div)
                        {
                            Ok(Value::Int(out as i64))
                        } else {
                            Ok(Value::Float(out))
                        }
                    }
                    _ => Err(EvalError::TypeMismatch {
                        op: "arith",
                        left: lv.type_name(),
                        right: rv.type_name(),
                    }),
                }
            }
            Expr::And(l, r) => {
                let lv = self.expect_bool(l.eval(tuple)?)?;
                if !lv {
                    return Ok(Value::Bool(false));
                }
                let rv = self.expect_bool(r.eval(tuple)?)?;
                Ok(Value::Bool(rv))
            }
            Expr::Or(l, r) => {
                let lv = self.expect_bool(l.eval(tuple)?)?;
                if lv {
                    return Ok(Value::Bool(true));
                }
                let rv = self.expect_bool(r.eval(tuple)?)?;
                Ok(Value::Bool(rv))
            }
            Expr::Not(e) => {
                let v = self.expect_bool(e.eval(tuple)?)?;
                Ok(Value::Bool(!v))
            }
            Expr::Contains(column, needle) => {
                let v = tuple
                    .get(column)
                    .cloned()
                    .ok_or_else(|| EvalError::MissingColumn(column.clone()))?;
                match v {
                    Value::Str(s) => Ok(Value::Bool(s.contains(needle.as_str()))),
                    other => Err(EvalError::TypeMismatch {
                        op: "contains",
                        left: other.type_name(),
                        right: "string",
                    }),
                }
            }
        }
    }

    fn expect_bool(&self, v: Value) -> Result<bool, EvalError> {
        v.as_bool().ok_or(EvalError::TypeMismatch {
            op: "bool",
            left: "non-bool",
            right: "bool",
        })
    }

    /// Evaluate as a predicate: `true` only when the expression cleanly
    /// evaluates to boolean true.  Missing columns and type mismatches count
    /// as "does not match" (the best-effort discard policy).
    pub fn matches(&self, tuple: &Tuple) -> bool {
        matches!(self.eval(tuple), Ok(Value::Bool(true)))
    }

    /// Compile against an interned schema: column names resolve to indices
    /// once, so evaluation is positional.  Columns the schema lacks compile
    /// to a node that reproduces [`EvalError::MissingColumn`] at evaluation
    /// time, preserving the best-effort discard semantics exactly.
    pub fn compile(&self, schema: &Arc<Schema>) -> CompiledExpr {
        CompiledExpr {
            schema: Arc::clone(schema),
            root: CompiledNode::build(self, schema),
        }
    }

    /// If this predicate constrains `column` to a single constant via
    /// equality (possibly inside a conjunction), return that constant.  Used
    /// by query dissemination to pick the equality index (§3.3.3).
    pub fn equality_constant(&self, column: &str) -> Option<Value> {
        match self {
            Expr::Cmp(CmpOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
                (Expr::Column(c), Expr::Const(v)) if c == column => Some(v.clone()),
                (Expr::Const(v), Expr::Column(c)) if c == column => Some(v.clone()),
                _ => None,
            },
            Expr::And(l, r) => l
                .equality_constant(column)
                .or_else(|| r.equality_constant(column)),
            _ => None,
        }
    }
}

/// An [`Expr`] with every column reference resolved to a positional index
/// in one specific interned schema.  Produced by [`Expr::compile`]; reusable
/// for every tuple or chunk carrying that schema (checked by pointer
/// identity via [`CompiledExpr::is_for`]).
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    schema: Arc<Schema>,
    root: CompiledNode,
}

#[derive(Debug, Clone)]
enum CompiledNode {
    /// Column resolved to its index in the schema.
    Col(usize),
    /// Column the schema lacks: evaluation reproduces
    /// [`EvalError::MissingColumn`].
    Missing(String),
    Const(Value),
    Cmp(CmpOp, Box<CompiledNode>, Box<CompiledNode>),
    Arith(ArithOp, Box<CompiledNode>, Box<CompiledNode>),
    And(Box<CompiledNode>, Box<CompiledNode>),
    Or(Box<CompiledNode>, Box<CompiledNode>),
    Not(Box<CompiledNode>),
    Contains(Box<CompiledNode>, String),
}

impl CompiledNode {
    fn build(expr: &Expr, schema: &Schema) -> CompiledNode {
        let col = |name: &str| match schema.position(name) {
            Some(i) => CompiledNode::Col(i),
            None => CompiledNode::Missing(name.to_string()),
        };
        match expr {
            Expr::Column(name) => col(name),
            Expr::Const(v) => CompiledNode::Const(v.clone()),
            Expr::Cmp(op, l, r) => CompiledNode::Cmp(
                *op,
                Box::new(Self::build(l, schema)),
                Box::new(Self::build(r, schema)),
            ),
            Expr::Arith(op, l, r) => CompiledNode::Arith(
                *op,
                Box::new(Self::build(l, schema)),
                Box::new(Self::build(r, schema)),
            ),
            Expr::And(l, r) => CompiledNode::And(
                Box::new(Self::build(l, schema)),
                Box::new(Self::build(r, schema)),
            ),
            Expr::Or(l, r) => CompiledNode::Or(
                Box::new(Self::build(l, schema)),
                Box::new(Self::build(r, schema)),
            ),
            Expr::Not(e) => CompiledNode::Not(Box::new(Self::build(e, schema))),
            Expr::Contains(column, needle) => {
                CompiledNode::Contains(Box::new(col(column)), needle.clone())
            }
        }
    }

    /// The value of a leaf node by reference — the clone-free fast path for
    /// comparisons over `column op constant` shapes, which dominate
    /// selection predicates.
    fn leaf_ref<'v>(&'v self, get: &impl Fn(usize) -> &'v Value) -> Option<&'v Value> {
        match self {
            CompiledNode::Col(i) => Some(get(*i)),
            CompiledNode::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Evaluate with `get(i)` supplying the value of column `i` — the same
    /// semantics (including short-circuiting and error cases) as
    /// [`Expr::eval`], minus the per-row name resolution.
    fn eval_with<'v>(&'v self, get: &impl Fn(usize) -> &'v Value) -> Result<Value, EvalError> {
        match self {
            CompiledNode::Col(i) => Ok(get(*i).clone()),
            CompiledNode::Missing(name) => Err(EvalError::MissingColumn(name.clone())),
            CompiledNode::Const(v) => Ok(v.clone()),
            CompiledNode::Cmp(op, l, r) => {
                // Leaf operands compare in place — no value clones at all on
                // the `column op constant` hot shape.
                if let (Some(lv), Some(rv)) = (l.leaf_ref(get), r.leaf_ref(get)) {
                    return match lv.compare(rv) {
                        Some(ord) => Ok(Value::Bool(op.test(ord))),
                        None => Err(EvalError::TypeMismatch {
                            op: "compare",
                            left: lv.type_name(),
                            right: rv.type_name(),
                        }),
                    };
                }
                let lv = l.eval_with(get)?;
                let rv = r.eval_with(get)?;
                match lv.compare(&rv) {
                    Some(ord) => Ok(Value::Bool(op.test(ord))),
                    None => Err(EvalError::TypeMismatch {
                        op: "compare",
                        left: lv.type_name(),
                        right: rv.type_name(),
                    }),
                }
            }
            CompiledNode::Arith(op, l, r) => {
                let lv = l.eval_with(get)?;
                let rv = r.eval_with(get)?;
                match (lv.as_f64(), rv.as_f64()) {
                    (Some(a), Some(b)) => {
                        let out = match op {
                            ArithOp::Add => a + b,
                            ArithOp::Sub => a - b,
                            ArithOp::Mul => a * b,
                            ArithOp::Div => a / b,
                        };
                        if matches!((&lv, &rv), (Value::Int(_), Value::Int(_)))
                            && out.fract() == 0.0
                            && !matches!(op, ArithOp::Div)
                        {
                            Ok(Value::Int(out as i64))
                        } else {
                            Ok(Value::Float(out))
                        }
                    }
                    _ => Err(EvalError::TypeMismatch {
                        op: "arith",
                        left: lv.type_name(),
                        right: rv.type_name(),
                    }),
                }
            }
            CompiledNode::And(l, r) => {
                if !expect_bool(l.eval_with(get)?)? {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(expect_bool(r.eval_with(get)?)?))
            }
            CompiledNode::Or(l, r) => {
                if expect_bool(l.eval_with(get)?)? {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(expect_bool(r.eval_with(get)?)?))
            }
            CompiledNode::Not(e) => Ok(Value::Bool(!expect_bool(e.eval_with(get)?)?)),
            CompiledNode::Contains(column, needle) => {
                let v = column.eval_with(get)?;
                match v {
                    Value::Str(s) => Ok(Value::Bool(s.contains(needle.as_str()))),
                    other => Err(EvalError::TypeMismatch {
                        op: "contains",
                        left: other.type_name(),
                        right: "string",
                    }),
                }
            }
        }
    }
}

fn expect_bool(v: Value) -> Result<bool, EvalError> {
    v.as_bool().ok_or(EvalError::TypeMismatch {
        op: "bool",
        left: "non-bool",
        right: "bool",
    })
}

impl CompiledExpr {
    /// The schema this expression was compiled against.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// True when this compilation is valid for `schema` (pointer identity —
    /// sound because schemas are interned).
    pub fn is_for(&self, schema: &Arc<Schema>) -> bool {
        Arc::ptr_eq(&self.schema, schema)
    }

    /// Evaluate over a row-major value slice (parallel to the compiled
    /// schema's columns).
    pub fn eval(&self, values: &[Value]) -> Result<Value, EvalError> {
        self.root.eval_with(&|i| &values[i])
    }

    /// Evaluate row `r` of a columnar chunk without materialising the row.
    pub fn eval_row(&self, chunk: &ColumnChunk, r: usize) -> Result<Value, EvalError> {
        debug_assert!(self.is_for(chunk.schema()));
        self.root.eval_with(&|i| &chunk.column(i)[r])
    }

    /// Evaluate a borrowed [`ChunkRow`] view (positional, allocation-free on
    /// the leaf-compare fast path — the survivor-path entry point).
    pub fn eval_view(&self, row: &ChunkRow<'_>) -> Result<Value, EvalError> {
        debug_assert!(self.is_for(row.schema()));
        self.root.eval_with(&|i| row.get(i))
    }

    /// Predicate view over a row-major value slice: `true` only on a clean
    /// boolean true (the best-effort discard policy).
    pub fn matches(&self, values: &[Value]) -> bool {
        matches!(self.eval(values), Ok(Value::Bool(true)))
    }

    /// Predicate view over row `r` of a columnar chunk.
    pub fn matches_row(&self, chunk: &ColumnChunk, r: usize) -> bool {
        matches!(self.eval_row(chunk, r), Ok(Value::Bool(true)))
    }

    /// Predicate view over a borrowed [`ChunkRow`].
    pub fn matches_view(&self, row: &ChunkRow<'_>) -> bool {
        matches!(self.eval_view(row), Ok(Value::Bool(true)))
    }
}

/// A predicate plus its per-schema compilation cache: the expression is
/// compiled against each schema it meets exactly once (single-entry cache
/// keyed by schema pointer, like `ColumnResolver`) and evaluated by index
/// thereafter.  This is what [`Selection`](crate::operators::Selection) and
/// the eddy filters hold instead of a raw [`Expr`].
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    expr: Expr,
    cache: Option<CompiledExpr>,
}

impl CompiledPredicate {
    /// Wrap a predicate expression.
    pub fn new(expr: Expr) -> Self {
        CompiledPredicate { expr, cache: None }
    }

    /// The wrapped expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The compilation for `schema`, compiling on first sight.
    pub fn for_schema(&mut self, schema: &Arc<Schema>) -> &CompiledExpr {
        if !self.cache.as_ref().is_some_and(|c| c.is_for(schema)) {
            self.cache = Some(self.expr.compile(schema));
        }
        self.cache.as_ref().expect("cache populated above")
    }

    /// Predicate test against one tuple (compiles on schema change only).
    pub fn matches_tuple(&mut self, tuple: &Tuple) -> bool {
        self.for_schema(tuple.schema()).matches(tuple.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup() -> Tuple {
        Tuple::new(
            "t",
            vec![
                ("a", Value::Int(5)),
                ("b", Value::Float(2.5)),
                ("name", Value::Str("alpha beta".into())),
                ("ok", Value::Bool(true)),
            ],
        )
    }

    #[test]
    fn comparisons() {
        assert!(Expr::eq("a", 5i64).matches(&tup()));
        assert!(!Expr::eq("a", 6i64).matches(&tup()));
        assert!(Expr::cmp(CmpOp::Gt, Expr::col("a"), Expr::lit(2.0)).matches(&tup()));
        assert!(Expr::cmp(CmpOp::Le, Expr::col("b"), Expr::col("a")).matches(&tup()));
        assert!(Expr::cmp(CmpOp::Ne, Expr::col("a"), Expr::lit(1i64)).matches(&tup()));
    }

    #[test]
    fn boolean_connectives_and_shortcut() {
        let e = Expr::And(
            Box::new(Expr::eq("a", 5i64)),
            Box::new(Expr::cmp(CmpOp::Lt, Expr::col("b"), Expr::lit(3.0))),
        );
        assert!(e.matches(&tup()));
        // Short-circuit: the right side of AND is not evaluated (and thus
        // cannot cause a discard) when the left side is already false.
        let short = Expr::And(
            Box::new(Expr::eq("a", 99i64)),
            Box::new(Expr::col("missing")),
        );
        assert_eq!(short.eval(&tup()), Ok(Value::Bool(false)));
    }

    #[test]
    fn or_and_not() {
        let e = Expr::Or(Box::new(Expr::eq("a", 99i64)), Box::new(Expr::col("ok")));
        assert!(e.matches(&tup()));
        assert!(Expr::Not(Box::new(Expr::eq("a", 99i64))).matches(&tup()));
    }

    #[test]
    fn arithmetic() {
        let e = Expr::cmp(
            CmpOp::Eq,
            Expr::Arith(
                ArithOp::Add,
                Box::new(Expr::col("a")),
                Box::new(Expr::lit(1i64)),
            ),
            Expr::lit(6i64),
        );
        assert!(e.matches(&tup()));
        let div = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::col("a")),
            Box::new(Expr::lit(2i64)),
        );
        assert_eq!(div.eval(&tup()), Ok(Value::Float(2.5)));
    }

    #[test]
    fn best_effort_discard_on_missing_or_mismatched() {
        // Missing column: predicate simply does not match.
        assert!(!Expr::eq("nope", 1i64).matches(&tup()));
        assert!(matches!(
            Expr::col("nope").eval(&tup()),
            Err(EvalError::MissingColumn(_))
        ));
        // Type mismatch: string vs int.
        let e = Expr::cmp(CmpOp::Eq, Expr::col("name"), Expr::lit(5i64));
        assert!(!e.matches(&tup()));
        assert!(matches!(
            e.eval(&tup()),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn contains_for_keyword_search() {
        assert!(Expr::Contains("name".into(), "beta".into()).matches(&tup()));
        assert!(!Expr::Contains("name".into(), "gamma".into()).matches(&tup()));
        assert!(!Expr::Contains("a".into(), "5".into()).matches(&tup()));
    }

    #[test]
    fn equality_constant_extraction_for_dissemination() {
        let pred = Expr::all(vec![
            Expr::cmp(CmpOp::Gt, Expr::col("b"), Expr::lit(0i64)),
            Expr::eq("name", "rock"),
        ]);
        assert_eq!(
            pred.equality_constant("name"),
            Some(Value::Str("rock".into()))
        );
        assert_eq!(pred.equality_constant("b"), None);
        assert_eq!(
            Expr::eq("x", 3i64).equality_constant("x"),
            Some(Value::Int(3))
        );
    }

    #[test]
    fn all_of_empty_list_is_true() {
        assert!(Expr::all(vec![]).matches(&tup()));
    }

    #[test]
    fn compiled_eval_agrees_with_interpreted_eval() {
        let t = tup();
        let exprs = vec![
            Expr::eq("a", 5i64),
            Expr::eq("a", 6i64),
            Expr::cmp(CmpOp::Gt, Expr::col("a"), Expr::lit(2.0)),
            Expr::Arith(
                ArithOp::Add,
                Box::new(Expr::col("a")),
                Box::new(Expr::lit(1i64)),
            ),
            Expr::Arith(
                ArithOp::Div,
                Box::new(Expr::col("a")),
                Box::new(Expr::lit(2i64)),
            ),
            Expr::And(
                Box::new(Expr::eq("a", 99i64)),
                Box::new(Expr::col("missing")),
            ),
            Expr::Or(Box::new(Expr::eq("a", 99i64)), Box::new(Expr::col("ok"))),
            Expr::Not(Box::new(Expr::col("ok"))),
            Expr::Contains("name".into(), "beta".into()),
            Expr::Contains("a".into(), "5".into()),
            Expr::col("nope"),
            Expr::cmp(CmpOp::Eq, Expr::col("name"), Expr::lit(5i64)),
        ];
        for e in exprs {
            let compiled = e.compile(t.schema());
            assert_eq!(
                compiled.eval(t.values()),
                e.eval(&t),
                "compiled and interpreted eval must agree for {e:?}"
            );
        }
    }

    #[test]
    fn compiled_predicate_caches_per_schema_and_rechecks_on_change() {
        let mut pred = CompiledPredicate::new(Expr::eq("a", 5i64));
        assert!(pred.matches_tuple(&tup()));
        assert!(pred.matches_tuple(&tup()));
        // A schema without `a` compiles to a missing-column node: no match.
        let other = Tuple::new("other", vec![("z", Value::Int(5))]);
        assert!(!pred.matches_tuple(&other));
        assert!(pred.matches_tuple(&tup()));
        assert_eq!(pred.expr(), &Expr::eq("a", 5i64));
    }

    #[test]
    fn compiled_eval_scans_columnar_chunks() {
        use crate::tuple::TupleBatch;
        let rows: Vec<Tuple> = (0..20)
            .map(|i| {
                Tuple::new(
                    "t",
                    vec![("a", Value::Int(i)), ("b", Value::Float(i as f64 / 2.0))],
                )
            })
            .collect();
        let pred = Expr::cmp(CmpOp::Ge, Expr::col("a"), Expr::lit(10i64));
        let batch = TupleBatch::new(rows.clone());
        let chunk = &batch.chunks()[0];
        let compiled = pred.compile(chunk.schema());
        let columnar: Vec<bool> = (0..chunk.rows())
            .map(|r| compiled.matches_row(chunk, r))
            .collect();
        let row_major: Vec<bool> = rows.iter().map(|t| pred.matches(t)).collect();
        assert_eq!(columnar, row_major);
        assert_eq!(columnar.iter().filter(|b| **b).count(), 10);
    }
}
