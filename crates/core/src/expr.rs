//! Predicate and scalar expressions.
//!
//! Expressions are evaluated against self-describing tuples with the
//! *best-effort* policy of §3.3.4: a missing field or an incompatible type
//! does not raise an error to the client — the evaluating operator simply
//! discards the tuple.  Evaluation therefore returns `Result` with
//! [`EvalError`] and operators map errors to "drop".
//!
//! **Compiled evaluation.**  [`Expr::eval`] resolves every column reference
//! by name, per tuple.  Operators on the hot path instead compile the
//! expression against an interned schema once ([`Expr::compile`]) — column
//! names become positional indices, mirroring what
//! [`ColumnResolver`](crate::tuple::ColumnResolver) does for key columns —
//! and then evaluate row after row by index, over either a row-major value
//! slice or a columnar [`ColumnChunk`](crate::tuple::ColumnChunk).
//! [`CompiledPredicate`] packages the per-schema compilation cache the way
//! selections and eddies use it.

use crate::column::{Bitmap, Column};
use crate::tuple::{ChunkRow, ColumnChunk, Schema, Tuple};
use crate::value::{Value, ValueRef};
use std::sync::Arc;

/// Why an expression could not be evaluated against a tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The tuple has no column with this name.
    MissingColumn(String),
    /// The operands had incompatible runtime types.
    TypeMismatch {
        /// Operation being attempted.
        op: &'static str,
        /// Left operand type.
        left: &'static str,
        /// Right operand type.
        right: &'static str,
    },
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Whether an ordering outcome satisfies this comparison (used by the
    /// row and column evaluation kernels here and by `pier-mqo`'s predicate
    /// index).
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The comparison that holds for `b ? a` whenever `self` holds for
    /// `a ? b` — rewrites `const op col` into `col op' const` so both shapes
    /// share one column kernel (comparability is symmetric, so the error
    /// rows are identical).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (floating point).
    Div,
}

/// A scalar or boolean expression over a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Column(String),
    /// A literal constant.
    Const(Value),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic on two numeric sub-expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Logical AND (both sides must evaluate to booleans).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// True when the named string column contains the given substring
    /// (used by keyword-search queries).
    Contains(String, String),
}

impl Expr {
    /// Column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_string())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// `left op right` comparison.
    pub fn cmp(op: CmpOp, left: Expr, right: Expr) -> Expr {
        Expr::Cmp(op, Box::new(left), Box::new(right))
    }

    /// Convenience: `column = literal`.
    pub fn eq(column: &str, v: impl Into<Value>) -> Expr {
        Expr::cmp(CmpOp::Eq, Expr::col(column), Expr::lit(v))
    }

    /// Convenience: conjunction of a list of predicates (empty list = TRUE).
    pub fn all(preds: Vec<Expr>) -> Expr {
        preds
            .into_iter()
            .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
            .unwrap_or(Expr::Const(Value::Bool(true)))
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value, EvalError> {
        match self {
            Expr::Column(name) => tuple
                .get(name)
                .cloned()
                .ok_or_else(|| EvalError::MissingColumn(name.clone())),
            Expr::Const(v) => Ok(v.clone()),
            Expr::Cmp(op, l, r) => {
                let lv = l.eval(tuple)?;
                let rv = r.eval(tuple)?;
                match lv.compare(&rv) {
                    Some(ord) => Ok(Value::Bool(op.test(ord))),
                    None => Err(EvalError::TypeMismatch {
                        op: "compare",
                        left: lv.type_name(),
                        right: rv.type_name(),
                    }),
                }
            }
            Expr::Arith(op, l, r) => {
                let lv = l.eval(tuple)?;
                let rv = r.eval(tuple)?;
                match (lv.as_f64(), rv.as_f64()) {
                    (Some(a), Some(b)) => {
                        let out = match op {
                            ArithOp::Add => a + b,
                            ArithOp::Sub => a - b,
                            ArithOp::Mul => a * b,
                            ArithOp::Div => a / b,
                        };
                        // Preserve integer-ness when both inputs were ints
                        // and the operation is exact.
                        if matches!((&lv, &rv), (Value::Int(_), Value::Int(_)))
                            && out.fract() == 0.0
                            && !matches!(op, ArithOp::Div)
                        {
                            Ok(Value::Int(out as i64))
                        } else {
                            Ok(Value::Float(out))
                        }
                    }
                    _ => Err(EvalError::TypeMismatch {
                        op: "arith",
                        left: lv.type_name(),
                        right: rv.type_name(),
                    }),
                }
            }
            Expr::And(l, r) => {
                let lv = self.expect_bool(l.eval(tuple)?)?;
                if !lv {
                    return Ok(Value::Bool(false));
                }
                let rv = self.expect_bool(r.eval(tuple)?)?;
                Ok(Value::Bool(rv))
            }
            Expr::Or(l, r) => {
                let lv = self.expect_bool(l.eval(tuple)?)?;
                if lv {
                    return Ok(Value::Bool(true));
                }
                let rv = self.expect_bool(r.eval(tuple)?)?;
                Ok(Value::Bool(rv))
            }
            Expr::Not(e) => {
                let v = self.expect_bool(e.eval(tuple)?)?;
                Ok(Value::Bool(!v))
            }
            Expr::Contains(column, needle) => {
                let v = tuple
                    .get(column)
                    .cloned()
                    .ok_or_else(|| EvalError::MissingColumn(column.clone()))?;
                match v {
                    Value::Str(s) => Ok(Value::Bool(s.contains(needle.as_str()))),
                    other => Err(EvalError::TypeMismatch {
                        op: "contains",
                        left: other.type_name(),
                        right: "string",
                    }),
                }
            }
        }
    }

    fn expect_bool(&self, v: Value) -> Result<bool, EvalError> {
        v.as_bool().ok_or(EvalError::TypeMismatch {
            op: "bool",
            left: "non-bool",
            right: "bool",
        })
    }

    /// Evaluate as a predicate: `true` only when the expression cleanly
    /// evaluates to boolean true.  Missing columns and type mismatches count
    /// as "does not match" (the best-effort discard policy).
    pub fn matches(&self, tuple: &Tuple) -> bool {
        matches!(self.eval(tuple), Ok(Value::Bool(true)))
    }

    /// Compile against an interned schema: column names resolve to indices
    /// once, so evaluation is positional.  Columns the schema lacks compile
    /// to a node that reproduces [`EvalError::MissingColumn`] at evaluation
    /// time, preserving the best-effort discard semantics exactly.
    pub fn compile(&self, schema: &Arc<Schema>) -> CompiledExpr {
        CompiledExpr {
            schema: Arc::clone(schema),
            root: CompiledNode::build(self, schema),
        }
    }

    /// If this predicate constrains `column` to a single constant via
    /// equality (possibly inside a conjunction), return that constant.  Used
    /// by query dissemination to pick the equality index (§3.3.3).
    pub fn equality_constant(&self, column: &str) -> Option<Value> {
        match self {
            Expr::Cmp(CmpOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
                (Expr::Column(c), Expr::Const(v)) if c == column => Some(v.clone()),
                (Expr::Const(v), Expr::Column(c)) if c == column => Some(v.clone()),
                _ => None,
            },
            Expr::And(l, r) => l
                .equality_constant(column)
                .or_else(|| r.equality_constant(column)),
            _ => None,
        }
    }
}

/// An [`Expr`] with every column reference resolved to a positional index
/// in one specific interned schema.  Produced by [`Expr::compile`]; reusable
/// for every tuple or chunk carrying that schema (checked by pointer
/// identity via [`CompiledExpr::is_for`]).
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    schema: Arc<Schema>,
    root: CompiledNode,
}

#[derive(Debug, Clone)]
enum CompiledNode {
    /// Column resolved to its index in the schema.
    Col(usize),
    /// Column the schema lacks: evaluation reproduces
    /// [`EvalError::MissingColumn`].
    Missing(String),
    Const(Value),
    Cmp(CmpOp, Box<CompiledNode>, Box<CompiledNode>),
    Arith(ArithOp, Box<CompiledNode>, Box<CompiledNode>),
    And(Box<CompiledNode>, Box<CompiledNode>),
    Or(Box<CompiledNode>, Box<CompiledNode>),
    Not(Box<CompiledNode>),
    Contains(Box<CompiledNode>, String),
}

impl CompiledNode {
    fn build(expr: &Expr, schema: &Schema) -> CompiledNode {
        let col = |name: &str| match schema.position(name) {
            Some(i) => CompiledNode::Col(i),
            None => CompiledNode::Missing(name.to_string()),
        };
        match expr {
            Expr::Column(name) => col(name),
            Expr::Const(v) => CompiledNode::Const(v.clone()),
            Expr::Cmp(op, l, r) => CompiledNode::Cmp(
                *op,
                Box::new(Self::build(l, schema)),
                Box::new(Self::build(r, schema)),
            ),
            Expr::Arith(op, l, r) => CompiledNode::Arith(
                *op,
                Box::new(Self::build(l, schema)),
                Box::new(Self::build(r, schema)),
            ),
            Expr::And(l, r) => CompiledNode::And(
                Box::new(Self::build(l, schema)),
                Box::new(Self::build(r, schema)),
            ),
            Expr::Or(l, r) => CompiledNode::Or(
                Box::new(Self::build(l, schema)),
                Box::new(Self::build(r, schema)),
            ),
            Expr::Not(e) => CompiledNode::Not(Box::new(Self::build(e, schema))),
            Expr::Contains(column, needle) => {
                CompiledNode::Contains(Box::new(col(column)), needle.clone())
            }
        }
    }

    /// The value of a leaf node as a borrowed view — the clone-free fast
    /// path for comparisons over `column op constant` shapes, which dominate
    /// selection predicates.
    fn leaf_ref<'v>(&'v self, get: &impl Fn(usize) -> ValueRef<'v>) -> Option<ValueRef<'v>> {
        match self {
            CompiledNode::Col(i) => Some(get(*i)),
            CompiledNode::Const(v) => Some(v.as_ref()),
            _ => None,
        }
    }

    /// Evaluate with `get(i)` supplying a borrowed view of column `i` — the
    /// same semantics (including short-circuiting and error cases) as
    /// [`Expr::eval`], minus the per-row name resolution.  Views come
    /// straight from the typed column buffers, so the leaf-compare fast path
    /// never materialises a [`Value`].
    fn eval_with<'v>(&'v self, get: &impl Fn(usize) -> ValueRef<'v>) -> Result<Value, EvalError> {
        match self {
            CompiledNode::Col(i) => Ok(get(*i).to_value()),
            CompiledNode::Missing(name) => Err(EvalError::MissingColumn(name.clone())),
            CompiledNode::Const(v) => Ok(v.clone()),
            CompiledNode::Cmp(op, l, r) => {
                // Leaf operands compare in place — no value clones at all on
                // the `column op constant` hot shape.
                if let (Some(lv), Some(rv)) = (l.leaf_ref(get), r.leaf_ref(get)) {
                    return match lv.compare(&rv) {
                        Some(ord) => Ok(Value::Bool(op.test(ord))),
                        None => Err(EvalError::TypeMismatch {
                            op: "compare",
                            left: lv.type_name(),
                            right: rv.type_name(),
                        }),
                    };
                }
                let lv = l.eval_with(get)?;
                let rv = r.eval_with(get)?;
                match lv.compare(&rv) {
                    Some(ord) => Ok(Value::Bool(op.test(ord))),
                    None => Err(EvalError::TypeMismatch {
                        op: "compare",
                        left: lv.type_name(),
                        right: rv.type_name(),
                    }),
                }
            }
            CompiledNode::Arith(op, l, r) => {
                let lv = l.eval_with(get)?;
                let rv = r.eval_with(get)?;
                match (lv.as_f64(), rv.as_f64()) {
                    (Some(a), Some(b)) => {
                        let out = match op {
                            ArithOp::Add => a + b,
                            ArithOp::Sub => a - b,
                            ArithOp::Mul => a * b,
                            ArithOp::Div => a / b,
                        };
                        if matches!((&lv, &rv), (Value::Int(_), Value::Int(_)))
                            && out.fract() == 0.0
                            && !matches!(op, ArithOp::Div)
                        {
                            Ok(Value::Int(out as i64))
                        } else {
                            Ok(Value::Float(out))
                        }
                    }
                    _ => Err(EvalError::TypeMismatch {
                        op: "arith",
                        left: lv.type_name(),
                        right: rv.type_name(),
                    }),
                }
            }
            CompiledNode::And(l, r) => {
                if !expect_bool(l.eval_with(get)?)? {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(expect_bool(r.eval_with(get)?)?))
            }
            CompiledNode::Or(l, r) => {
                if expect_bool(l.eval_with(get)?)? {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(expect_bool(r.eval_with(get)?)?))
            }
            CompiledNode::Not(e) => Ok(Value::Bool(!expect_bool(e.eval_with(get)?)?)),
            CompiledNode::Contains(column, needle) => {
                let v = column.eval_with(get)?;
                match v {
                    Value::Str(s) => Ok(Value::Bool(s.contains(needle.as_str()))),
                    other => Err(EvalError::TypeMismatch {
                        op: "contains",
                        left: other.type_name(),
                        right: "string",
                    }),
                }
            }
        }
    }

    /// Vectorised evaluation over a whole chunk: fill `truth`/`err` with the
    /// three-valued per-row outcome (`err[r]` set ⇔ per-row evaluation of
    /// this node errors on row `r`; otherwise `truth[r]` is the boolean
    /// value).  Returns `false` when this node's shape is not vectorisable —
    /// the caller then falls back to the per-row walk for the whole
    /// expression, so partial vectorisation never changes semantics.
    ///
    /// Nodes that evaluate to non-boolean scalars (bare columns holding
    /// ints, non-boolean constants) are represented as *boolean operands*:
    /// a non-boolean value is an error in every context this mask feeds
    /// (`matches` at the root, `expect_bool` under a connective), so the
    /// three-valued encoding is exact.
    fn eval_column(&self, chunk: &ColumnChunk, truth: &mut [bool], err: &mut [bool]) -> bool {
        match self {
            CompiledNode::Const(Value::Bool(b)) => {
                truth.fill(*b);
                err.fill(false);
                true
            }
            // A non-boolean constant as a predicate / boolean operand is a
            // type mismatch on every row.
            CompiledNode::Const(_) | CompiledNode::Missing(_) => {
                truth.fill(false);
                err.fill(true);
                true
            }
            CompiledNode::Col(i) => {
                match chunk.col(*i) {
                    Column::Bool { data, validity } => {
                        for (r, &b) in data.iter().enumerate() {
                            truth[r] = b;
                        }
                        mask_invalid(validity.as_ref(), truth, err);
                    }
                    Column::Values(vals) => {
                        for (r, v) in vals.iter().enumerate() {
                            match v {
                                Value::Bool(b) => truth[r] = *b,
                                _ => err[r] = true,
                            }
                        }
                    }
                    // A typed non-boolean column errors every row.
                    _ => {
                        truth.fill(false);
                        err.fill(true);
                    }
                }
                true
            }
            CompiledNode::Cmp(op, l, r) => match (l.as_ref(), r.as_ref()) {
                (_, _)
                    if matches!(l.as_ref(), CompiledNode::Missing(_))
                        || matches!(r.as_ref(), CompiledNode::Missing(_)) =>
                {
                    // A missing column in either operand errors every row.
                    truth.fill(false);
                    err.fill(true);
                    true
                }
                (CompiledNode::Col(i), CompiledNode::Const(c)) => {
                    cmp_col_const(*op, chunk.col(*i), c, truth, err);
                    true
                }
                (CompiledNode::Const(c), CompiledNode::Col(i)) => {
                    // `const op col` ⇔ `col op' const` with the comparison
                    // swapped (comparability is symmetric, so error rows
                    // are identical).
                    cmp_col_const(op.swapped(), chunk.col(*i), c, truth, err);
                    true
                }
                (CompiledNode::Col(a), CompiledNode::Col(b)) => {
                    cmp_col_col(*op, chunk.col(*a), chunk.col(*b), truth, err);
                    true
                }
                (CompiledNode::Const(a), CompiledNode::Const(b)) => {
                    match a.compare(b) {
                        Some(ord) => truth.fill(op.test(ord)),
                        None => {
                            truth.fill(false);
                            err.fill(true);
                        }
                    }
                    true
                }
                _ => false, // nested comparison operands: fall back
            },
            CompiledNode::And(l, r) => {
                if !l.eval_column(chunk, truth, err) {
                    return false;
                }
                let mut rt = vec![false; truth.len()];
                let mut re = vec![false; truth.len()];
                if !r.eval_column(chunk, &mut rt, &mut re) {
                    return false;
                }
                // Short-circuit semantics: the right side's error counts
                // only when the left side was cleanly true.
                for i in 0..truth.len() {
                    let e = err[i] || (truth[i] && re[i]);
                    truth[i] = !e && truth[i] && rt[i];
                    err[i] = e;
                }
                true
            }
            CompiledNode::Or(l, r) => {
                if !l.eval_column(chunk, truth, err) {
                    return false;
                }
                let mut rt = vec![false; truth.len()];
                let mut re = vec![false; truth.len()];
                if !r.eval_column(chunk, &mut rt, &mut re) {
                    return false;
                }
                // A cleanly-true left side short-circuits past any error on
                // the right.
                for i in 0..truth.len() {
                    let e = err[i] || (!truth[i] && re[i]);
                    truth[i] = !e && (truth[i] || rt[i]);
                    err[i] = e;
                }
                true
            }
            CompiledNode::Not(e) => {
                if !e.eval_column(chunk, truth, err) {
                    return false;
                }
                for i in 0..truth.len() {
                    truth[i] = !err[i] && !truth[i];
                }
                true
            }
            CompiledNode::Contains(col, needle) => match col.as_ref() {
                CompiledNode::Col(i) => {
                    match chunk.col(*i) {
                        Column::Dict {
                            codes,
                            dict,
                            validity,
                        } => {
                            // One substring scan per *distinct* value, then a
                            // code-indexed table lookup per row.
                            let verdicts: Vec<bool> =
                                dict.iter().map(|s| s.contains(needle.as_str())).collect();
                            for (r, &code) in codes.iter().enumerate() {
                                truth[r] = verdicts[code as usize];
                            }
                            mask_invalid(validity.as_ref(), truth, err);
                        }
                        Column::Str {
                            arena,
                            offsets,
                            validity,
                        } => {
                            // One arena-wide UTF-8 validation, then
                            // per-row slicing (as in `cmp_col_const`).
                            let arena = std::str::from_utf8(arena).expect("arena holds UTF-8");
                            for r in 0..offsets.len() - 1 {
                                let s = &arena[offsets[r] as usize..offsets[r + 1] as usize];
                                truth[r] = s.contains(needle.as_str());
                            }
                            mask_invalid(validity.as_ref(), truth, err);
                        }
                        Column::Values(vals) => {
                            for (r, v) in vals.iter().enumerate() {
                                match v {
                                    Value::Str(s) => truth[r] = s.contains(needle.as_str()),
                                    _ => err[r] = true,
                                }
                            }
                        }
                        _ => {
                            truth.fill(false);
                            err.fill(true);
                        }
                    }
                    true
                }
                CompiledNode::Missing(_) => {
                    truth.fill(false);
                    err.fill(true);
                    true
                }
                _ => false,
            },
            CompiledNode::Arith(..) => false,
        }
    }
}

fn expect_bool(v: Value) -> Result<bool, EvalError> {
    v.as_bool().ok_or(EvalError::TypeMismatch {
        op: "bool",
        left: "non-bool",
        right: "bool",
    })
}

impl CompiledExpr {
    /// The schema this expression was compiled against.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// True when this compilation is valid for `schema` (pointer identity —
    /// sound because schemas are interned).
    pub fn is_for(&self, schema: &Arc<Schema>) -> bool {
        Arc::ptr_eq(&self.schema, schema)
    }

    /// Evaluate over a row-major value slice (parallel to the compiled
    /// schema's columns).
    pub fn eval(&self, values: &[Value]) -> Result<Value, EvalError> {
        self.root.eval_with(&|i| values[i].as_ref())
    }

    /// Evaluate row `r` of a columnar chunk without materialising the row.
    pub fn eval_row(&self, chunk: &ColumnChunk, r: usize) -> Result<Value, EvalError> {
        debug_assert!(self.is_for(chunk.schema()));
        self.root.eval_with(&|i| chunk.col(i).value_ref(r))
    }

    /// Evaluate a borrowed [`ChunkRow`] view (positional, allocation-free on
    /// the leaf-compare fast path — the survivor-path entry point).
    pub fn eval_view(&self, row: &ChunkRow<'_>) -> Result<Value, EvalError> {
        debug_assert!(self.is_for(row.schema()));
        self.root.eval_with(&|i| row.get(i))
    }

    /// Predicate view over a row-major value slice: `true` only on a clean
    /// boolean true (the best-effort discard policy).
    pub fn matches(&self, values: &[Value]) -> bool {
        matches!(self.eval(values), Ok(Value::Bool(true)))
    }

    /// Predicate view over row `r` of a columnar chunk.
    pub fn matches_row(&self, chunk: &ColumnChunk, r: usize) -> bool {
        matches!(self.eval_row(chunk, r), Ok(Value::Bool(true)))
    }

    /// Predicate view over a borrowed [`ChunkRow`].
    pub fn matches_view(&self, row: &ChunkRow<'_>) -> bool {
        matches!(self.eval_view(row), Ok(Value::Bool(true)))
    }

    /// **Column-at-a-time** predicate evaluation: the per-row outcomes of
    /// [`CompiledExpr::matches_row`] over the whole chunk, computed by
    /// layout-specialised inner loops over each referenced column's typed
    /// buffers (raw `i64`/`f64` slices, dictionary code tables, validity
    /// words) and combined with bitwise mask operations — no per-row
    /// expression-tree walk and no per-element enum dispatch on the
    /// comparison shapes that dominate selection predicates
    /// (`column op constant`, conjunctions/disjunctions thereof,
    /// `Contains`, boolean columns).
    ///
    /// Shapes the vectoriser does not cover (arithmetic, nested comparisons)
    /// fall back to the row-at-a-time walk, so the returned mask is always
    /// exactly what per-row evaluation would produce — including the
    /// best-effort discard semantics: a row whose evaluation errors (missing
    /// column, type mismatch, non-boolean operand) does not match.  This is
    /// the selection mask [`Selection`](crate::operators::Selection) filters
    /// chunks with, and the kernel layer `pier-mqo`'s predicate index fans
    /// out across member queries.
    pub fn eval_column(&self, chunk: &ColumnChunk) -> Vec<bool> {
        debug_assert!(self.is_for(chunk.schema()));
        let rows = chunk.rows();
        let mut truth = vec![false; rows];
        let mut err = vec![false; rows];
        if self.root.eval_column(chunk, &mut truth, &mut err) {
            // A clean boolean true is the only "match": error rows are
            // masked out bitwise.
            for (t, e) in truth.iter_mut().zip(&err) {
                *t = *t && !*e;
            }
            truth
        } else {
            (0..rows).map(|r| self.matches_row(chunk, r)).collect()
        }
    }
}

/// Overwrite the outcome of every null row with "error" (null compares to
/// nothing — the discard-on-mismatch policy).  No-op when the column has no
/// validity bitmap.
fn mask_invalid(validity: Option<&Bitmap>, truth: &mut [bool], err: &mut [bool]) {
    if let Some(v) = validity {
        for r in 0..truth.len() {
            if !v.get(r) {
                truth[r] = false;
                err[r] = true;
            }
        }
    }
}

/// Compare a typed column against one constant with a kernel specialised to
/// the column's *layout* (the innermost kernel of
/// [`CompiledExpr::eval_column`], also reused by `pier-mqo`'s predicate
/// index so the two never drift).  Native `i64`/`f64` buffers compare in a
/// branch-free loop over raw slices; dictionary columns compare each
/// *distinct* value once and broadcast through the code table; the fallback
/// layout keeps the per-value loop.  `truth[r]`/`err[r]` receive the
/// three-valued outcome exactly as per-row [`Value::compare`] would decide
/// it: `err` rows are incomparable (type mismatch / NaN / null), matching
/// the discard-on-mismatch policy.  Both slices must be parallel to `col`
/// and are overwritten per row.
pub fn cmp_col_const(
    op: CmpOp,
    col: &Column,
    constant: &Value,
    truth: &mut [bool],
    err: &mut [bool],
) {
    match (col, constant) {
        (Column::Int { data, validity }, Value::Int(k)) => {
            for (r, x) in data.iter().enumerate() {
                truth[r] = op.test(x.cmp(k));
                err[r] = false;
            }
            mask_invalid(validity.as_ref(), truth, err);
        }
        (Column::Int { data, validity }, Value::Float(k)) => {
            for (r, x) in data.iter().enumerate() {
                match (*x as f64).partial_cmp(k) {
                    Some(ord) => {
                        truth[r] = op.test(ord);
                        err[r] = false;
                    }
                    None => {
                        truth[r] = false;
                        err[r] = true;
                    }
                }
            }
            mask_invalid(validity.as_ref(), truth, err);
        }
        (Column::Float { data, validity }, k) if matches!(k, Value::Int(_) | Value::Float(_)) => {
            let k = k.as_f64().expect("numeric constant");
            for (r, f) in data.iter().enumerate() {
                match f.partial_cmp(&k) {
                    Some(ord) => {
                        truth[r] = op.test(ord);
                        err[r] = false;
                    }
                    None => {
                        truth[r] = false;
                        err[r] = true;
                    }
                }
            }
            mask_invalid(validity.as_ref(), truth, err);
        }
        (Column::Bool { data, validity }, Value::Bool(k)) => {
            for (r, b) in data.iter().enumerate() {
                truth[r] = op.test(b.cmp(k));
                err[r] = false;
            }
            mask_invalid(validity.as_ref(), truth, err);
        }
        (
            Column::Dict {
                codes,
                dict,
                validity,
            },
            Value::Str(k),
        ) => {
            // Compare each distinct dictionary entry once, then broadcast
            // the verdicts through the code table.
            let verdicts: Vec<bool> = dict
                .iter()
                .map(|s| op.test(s.as_ref().cmp(k.as_ref())))
                .collect();
            for (r, &code) in codes.iter().enumerate() {
                truth[r] = verdicts[code as usize];
                err[r] = false;
            }
            mask_invalid(validity.as_ref(), truth, err);
        }
        (
            Column::Str {
                arena,
                offsets,
                validity,
            },
            Value::Str(k),
        ) => {
            // Validate the arena once, then slice per row — a per-row
            // `from_utf8` would re-walk every string on every scan.
            let arena = std::str::from_utf8(arena).expect("arena holds UTF-8");
            let k = k.as_ref();
            for r in 0..offsets.len() - 1 {
                let v = &arena[offsets[r] as usize..offsets[r + 1] as usize];
                truth[r] = op.test(v.cmp(k));
                err[r] = false;
            }
            mask_invalid(validity.as_ref(), truth, err);
        }
        (Column::Values(vals), constant) => {
            cmp_values_const(op, vals, constant, truth, err);
        }
        // Typed layout vs a constant of an incompatible type: every row is
        // a mismatch (nulls included).
        _ => {
            truth.fill(false);
            err.fill(true);
        }
    }
}

/// The fallback-layout arm of [`cmp_col_const`]: a per-value loop
/// specialised to the constant's runtime type.
fn cmp_values_const(
    op: CmpOp,
    col: &[Value],
    constant: &Value,
    truth: &mut [bool],
    err: &mut [bool],
) {
    match constant {
        Value::Int(k) => {
            for (r, v) in col.iter().enumerate() {
                match v {
                    Value::Int(x) => truth[r] = op.test(x.cmp(k)),
                    Value::Float(f) => match f.partial_cmp(&(*k as f64)) {
                        Some(ord) => truth[r] = op.test(ord),
                        None => err[r] = true,
                    },
                    _ => err[r] = true,
                }
            }
        }
        Value::Float(k) => {
            for (r, v) in col.iter().enumerate() {
                let ord = match v {
                    Value::Int(x) => (*x as f64).partial_cmp(k),
                    Value::Float(f) => f.partial_cmp(k),
                    _ => {
                        err[r] = true;
                        continue;
                    }
                };
                match ord {
                    Some(ord) => truth[r] = op.test(ord),
                    None => err[r] = true,
                }
            }
        }
        Value::Str(k) => {
            for (r, v) in col.iter().enumerate() {
                match v {
                    Value::Str(s) => truth[r] = op.test(s.as_ref().cmp(k.as_ref())),
                    _ => err[r] = true,
                }
            }
        }
        other => {
            for (r, v) in col.iter().enumerate() {
                match v.compare(other) {
                    Some(ord) => truth[r] = op.test(ord),
                    None => err[r] = true,
                }
            }
        }
    }
}

/// Column-vs-column comparison kernel: native loops when both sides share a
/// typed all-valid layout, the borrowed-view walk otherwise.
fn cmp_col_col(op: CmpOp, ca: &Column, cb: &Column, truth: &mut [bool], err: &mut [bool]) {
    match (ca, cb) {
        (
            Column::Int {
                data: a,
                validity: None,
            },
            Column::Int {
                data: b,
                validity: None,
            },
        ) => {
            for r in 0..a.len() {
                truth[r] = op.test(a[r].cmp(&b[r]));
            }
        }
        (
            Column::Float {
                data: a,
                validity: None,
            },
            Column::Float {
                data: b,
                validity: None,
            },
        ) => {
            for r in 0..a.len() {
                match a[r].partial_cmp(&b[r]) {
                    Some(ord) => truth[r] = op.test(ord),
                    None => err[r] = true,
                }
            }
        }
        _ => {
            for r in 0..ca.len() {
                match ca.value_ref(r).compare(&cb.value_ref(r)) {
                    Some(ord) => truth[r] = op.test(ord),
                    None => err[r] = true,
                }
            }
        }
    }
}

/// A predicate plus its per-schema compilation cache: the expression is
/// compiled against each schema it meets exactly once (single-entry cache
/// keyed by schema pointer, like `ColumnResolver`) and evaluated by index
/// thereafter.  This is what [`Selection`](crate::operators::Selection) and
/// the eddy filters hold instead of a raw [`Expr`].
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    expr: Expr,
    cache: Option<CompiledExpr>,
}

impl CompiledPredicate {
    /// Wrap a predicate expression.
    pub fn new(expr: Expr) -> Self {
        CompiledPredicate { expr, cache: None }
    }

    /// The wrapped expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The compilation for `schema`, compiling on first sight.
    pub fn for_schema(&mut self, schema: &Arc<Schema>) -> &CompiledExpr {
        if !self.cache.as_ref().is_some_and(|c| c.is_for(schema)) {
            self.cache = Some(self.expr.compile(schema));
        }
        self.cache.as_ref().expect("cache populated above")
    }

    /// Predicate test against one tuple (compiles on schema change only).
    pub fn matches_tuple(&mut self, tuple: &Tuple) -> bool {
        self.for_schema(tuple.schema()).matches(tuple.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tup() -> Tuple {
        Tuple::new(
            "t",
            vec![
                ("a", Value::Int(5)),
                ("b", Value::Float(2.5)),
                ("name", Value::Str("alpha beta".into())),
                ("ok", Value::Bool(true)),
            ],
        )
    }

    #[test]
    fn comparisons() {
        assert!(Expr::eq("a", 5i64).matches(&tup()));
        assert!(!Expr::eq("a", 6i64).matches(&tup()));
        assert!(Expr::cmp(CmpOp::Gt, Expr::col("a"), Expr::lit(2.0)).matches(&tup()));
        assert!(Expr::cmp(CmpOp::Le, Expr::col("b"), Expr::col("a")).matches(&tup()));
        assert!(Expr::cmp(CmpOp::Ne, Expr::col("a"), Expr::lit(1i64)).matches(&tup()));
    }

    #[test]
    fn boolean_connectives_and_shortcut() {
        let e = Expr::And(
            Box::new(Expr::eq("a", 5i64)),
            Box::new(Expr::cmp(CmpOp::Lt, Expr::col("b"), Expr::lit(3.0))),
        );
        assert!(e.matches(&tup()));
        // Short-circuit: the right side of AND is not evaluated (and thus
        // cannot cause a discard) when the left side is already false.
        let short = Expr::And(
            Box::new(Expr::eq("a", 99i64)),
            Box::new(Expr::col("missing")),
        );
        assert_eq!(short.eval(&tup()), Ok(Value::Bool(false)));
    }

    #[test]
    fn or_and_not() {
        let e = Expr::Or(Box::new(Expr::eq("a", 99i64)), Box::new(Expr::col("ok")));
        assert!(e.matches(&tup()));
        assert!(Expr::Not(Box::new(Expr::eq("a", 99i64))).matches(&tup()));
    }

    #[test]
    fn arithmetic() {
        let e = Expr::cmp(
            CmpOp::Eq,
            Expr::Arith(
                ArithOp::Add,
                Box::new(Expr::col("a")),
                Box::new(Expr::lit(1i64)),
            ),
            Expr::lit(6i64),
        );
        assert!(e.matches(&tup()));
        let div = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::col("a")),
            Box::new(Expr::lit(2i64)),
        );
        assert_eq!(div.eval(&tup()), Ok(Value::Float(2.5)));
    }

    #[test]
    fn best_effort_discard_on_missing_or_mismatched() {
        // Missing column: predicate simply does not match.
        assert!(!Expr::eq("nope", 1i64).matches(&tup()));
        assert!(matches!(
            Expr::col("nope").eval(&tup()),
            Err(EvalError::MissingColumn(_))
        ));
        // Type mismatch: string vs int.
        let e = Expr::cmp(CmpOp::Eq, Expr::col("name"), Expr::lit(5i64));
        assert!(!e.matches(&tup()));
        assert!(matches!(
            e.eval(&tup()),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn contains_for_keyword_search() {
        assert!(Expr::Contains("name".into(), "beta".into()).matches(&tup()));
        assert!(!Expr::Contains("name".into(), "gamma".into()).matches(&tup()));
        assert!(!Expr::Contains("a".into(), "5".into()).matches(&tup()));
    }

    #[test]
    fn equality_constant_extraction_for_dissemination() {
        let pred = Expr::all(vec![
            Expr::cmp(CmpOp::Gt, Expr::col("b"), Expr::lit(0i64)),
            Expr::eq("name", "rock"),
        ]);
        assert_eq!(
            pred.equality_constant("name"),
            Some(Value::Str("rock".into()))
        );
        assert_eq!(pred.equality_constant("b"), None);
        assert_eq!(
            Expr::eq("x", 3i64).equality_constant("x"),
            Some(Value::Int(3))
        );
    }

    #[test]
    fn all_of_empty_list_is_true() {
        assert!(Expr::all(vec![]).matches(&tup()));
    }

    #[test]
    fn compiled_eval_agrees_with_interpreted_eval() {
        let t = tup();
        let exprs = vec![
            Expr::eq("a", 5i64),
            Expr::eq("a", 6i64),
            Expr::cmp(CmpOp::Gt, Expr::col("a"), Expr::lit(2.0)),
            Expr::Arith(
                ArithOp::Add,
                Box::new(Expr::col("a")),
                Box::new(Expr::lit(1i64)),
            ),
            Expr::Arith(
                ArithOp::Div,
                Box::new(Expr::col("a")),
                Box::new(Expr::lit(2i64)),
            ),
            Expr::And(
                Box::new(Expr::eq("a", 99i64)),
                Box::new(Expr::col("missing")),
            ),
            Expr::Or(Box::new(Expr::eq("a", 99i64)), Box::new(Expr::col("ok"))),
            Expr::Not(Box::new(Expr::col("ok"))),
            Expr::Contains("name".into(), "beta".into()),
            Expr::Contains("a".into(), "5".into()),
            Expr::col("nope"),
            Expr::cmp(CmpOp::Eq, Expr::col("name"), Expr::lit(5i64)),
        ];
        for e in exprs {
            let compiled = e.compile(t.schema());
            assert_eq!(
                compiled.eval(t.values()),
                e.eval(&t),
                "compiled and interpreted eval must agree for {e:?}"
            );
        }
    }

    #[test]
    fn compiled_predicate_caches_per_schema_and_rechecks_on_change() {
        let mut pred = CompiledPredicate::new(Expr::eq("a", 5i64));
        assert!(pred.matches_tuple(&tup()));
        assert!(pred.matches_tuple(&tup()));
        // A schema without `a` compiles to a missing-column node: no match.
        let other = Tuple::new("other", vec![("z", Value::Int(5))]);
        assert!(!pred.matches_tuple(&other));
        assert!(pred.matches_tuple(&tup()));
        assert_eq!(pred.expr(), &Expr::eq("a", 5i64));
    }

    #[test]
    fn eval_column_agrees_with_per_row_evaluation() {
        use crate::tuple::TupleBatch;
        // A deliberately messy chunk: ints, floats (incl. NaN), strings,
        // bools and NULLs interleaved in every column the predicates read.
        let rows: Vec<Tuple> = (0..64)
            .map(|i| {
                let a = match i % 5 {
                    0 => Value::Int(i),
                    1 => Value::Float(i as f64 / 2.0),
                    2 => Value::Str(format!("s{i}").into()),
                    3 => Value::Null,
                    _ => Value::Float(f64::NAN),
                };
                Tuple::new(
                    "t",
                    vec![
                        ("a", a),
                        ("b", Value::Int(i % 7)),
                        ("name", Value::Str(format!("row {i} beta").into())),
                        (
                            "ok",
                            if i % 3 == 0 {
                                Value::Bool(true)
                            } else {
                                Value::Int(1)
                            },
                        ),
                    ],
                )
            })
            .collect();
        let exprs = vec![
            Expr::eq("a", 10i64),
            Expr::cmp(CmpOp::Ge, Expr::col("a"), Expr::lit(3.0)),
            Expr::cmp(CmpOp::Lt, Expr::lit(4i64), Expr::col("b")),
            Expr::cmp(CmpOp::Ne, Expr::col("a"), Expr::col("b")),
            Expr::cmp(CmpOp::Eq, Expr::lit(1i64), Expr::lit(1.0)),
            Expr::eq("name", "row 7 beta"),
            Expr::And(
                Box::new(Expr::cmp(CmpOp::Ge, Expr::col("b"), Expr::lit(2i64))),
                Box::new(Expr::col("ok")),
            ),
            Expr::Or(
                Box::new(Expr::col("missing")),
                Box::new(Expr::eq("b", 3i64)),
            ),
            Expr::Or(
                Box::new(Expr::eq("b", 3i64)),
                Box::new(Expr::col("missing")),
            ),
            Expr::Not(Box::new(Expr::eq("b", 1i64))),
            Expr::Contains("name".into(), "7 be".into()),
            Expr::Contains("a".into(), "s1".into()),
            Expr::Contains("missing".into(), "x".into()),
            Expr::col("ok"),
            Expr::col("missing"),
            Expr::Const(Value::Int(3)),
            Expr::eq("missing", 1i64),
            // Arithmetic forces the row-at-a-time fallback path.
            Expr::cmp(
                CmpOp::Eq,
                Expr::Arith(
                    ArithOp::Add,
                    Box::new(Expr::col("b")),
                    Box::new(Expr::lit(1i64)),
                ),
                Expr::lit(3i64),
            ),
        ];
        let batch = TupleBatch::new(rows.clone());
        for e in exprs {
            for chunk in batch.chunks() {
                let compiled = e.compile(chunk.schema());
                let mask = compiled.eval_column(chunk);
                let per_row: Vec<bool> = (0..chunk.rows())
                    .map(|r| compiled.matches_row(chunk, r))
                    .collect();
                assert_eq!(mask, per_row, "column and row evaluation diverge for {e:?}");
            }
        }
    }

    #[test]
    fn compiled_eval_scans_columnar_chunks() {
        use crate::tuple::TupleBatch;
        let rows: Vec<Tuple> = (0..20)
            .map(|i| {
                Tuple::new(
                    "t",
                    vec![("a", Value::Int(i)), ("b", Value::Float(i as f64 / 2.0))],
                )
            })
            .collect();
        let pred = Expr::cmp(CmpOp::Ge, Expr::col("a"), Expr::lit(10i64));
        let batch = TupleBatch::new(rows.clone());
        let chunk = &batch.chunks()[0];
        let compiled = pred.compile(chunk.schema());
        let columnar: Vec<bool> = (0..chunk.rows())
            .map(|r| compiled.matches_row(chunk, r))
            .collect();
        let row_major: Vec<bool> = rows.iter().map(|t| pred.matches(t)).collect();
        assert_eq!(columnar, row_major);
        assert_eq!(columnar.iter().filter(|b| **b).count(), 10);
    }
}
