//! Virtual time.
//!
//! The simulator and the rest of the system measure time in integer
//! microseconds since the start of the run.  Using a plain integer (rather
//! than `std::time::Instant`) is what lets the same node code run under the
//! discrete-event simulator and the physical runtime: the physical runtime
//! simply reports elapsed wall-clock microseconds through the same type.

/// A point in virtual time, in microseconds since the start of the run.
pub type SimTime = u64;

/// A span of virtual time, in microseconds.
pub type Duration = u64;

/// Number of microseconds in one millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// Convenience constructor: a [`Duration`] of `ms` milliseconds.
pub const fn millis(ms: u64) -> Duration {
    ms * MICROS_PER_MILLI
}

/// Convenience constructor: a [`Duration`] of `s` seconds.
pub const fn secs(s: u64) -> Duration {
    s * MICROS_PER_SEC
}

/// Format a [`SimTime`] as fractional seconds for human-readable reports.
pub fn as_secs_f64(t: SimTime) -> f64 {
    t as f64 / MICROS_PER_SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(millis(1), 1_000);
        assert_eq!(secs(2), 2_000_000);
        assert_eq!(secs(1), millis(1000));
    }

    #[test]
    fn as_secs_formats_fractions() {
        assert!((as_secs_f64(1_500_000) - 1.5).abs() < 1e-9);
        assert_eq!(as_secs_f64(0), 0.0);
    }
}
