//! # pier-runtime — Virtual Runtime Interface and execution environments
//!
//! This crate is the lowest layer of the PIER reproduction.  It provides the
//! *Virtual Runtime Interface* (VRI) described in §3.1 of the paper: a narrow
//! abstraction over the clock, timers, the network, and the main scheduler,
//! together with two bindings of that interface:
//!
//! * the [`sim::Simulator`] — a discrete-event **Simulation Environment**
//!   capable of running thousands of virtual nodes in a single process, with
//!   pluggable network [`topology`](sim::topology) and
//!   [`congestion`](sim::congestion) models and node-failure injection, and
//! * the [`physical::PhysicalRuntime`] — a **Physical Runtime Environment**
//!   that runs each node on its own OS thread against the real clock, using
//!   in-process channels as the transport.
//!
//! Node logic is written once as an event-driven state machine implementing
//! the [`Program`] trait and runs unmodified under either environment — the
//! property the paper calls *native simulation* (§2.1.3, §3.1.2).
//!
//! The programming model mirrors the paper exactly:
//!
//! * a single logical thread per node: handlers are invoked for message
//!   arrivals and timer expirations and must return quickly,
//! * handlers never block; all state lives in the node struct,
//! * all interaction with the outside world goes through a [`Context`],
//!   which records *actions* (send a message, set a timer, emit output to
//!   the local client) that the runtime then performs.
//!
//! The crate also contains [`udpcc`], a reimplementation of the UdpCC
//! reliable-delivery layer used by PIER on top of UDP (acknowledgements,
//! retransmission, and TCP-style AIMD congestion control), and [`rng`], a
//! small deterministic PRNG used throughout the workspace so that every
//! simulation run is reproducible from a seed.

pub mod metrics;
pub mod node;
pub mod physical;
pub mod rng;
pub mod sim;
pub mod time;
pub mod udpcc;
pub mod wire;

pub use metrics::{percentile_rank, weighted_percentile, LatencyCdf, NetStats, NodeStats};
pub use node::{Action, Context, NodeAddr, Program, ProgramContext};
pub use rng::{Rng64, Zipf};
pub use sim::{FaultCounts, FaultKind, FaultPlan, FaultRecord, SimConfig, Simulator, StormEvent};
pub use time::{Duration, SimTime, MICROS_PER_MILLI, MICROS_PER_SEC};
pub use wire::WireSize;
