//! The Virtual Runtime Interface: node programs, contexts and actions.
//!
//! A PIER node is written as an event-driven state machine (the paper's
//! "Program" box in Figures 3 and 4).  The runtime invokes the handlers of
//! the [`Program`] trait — never concurrently, never re-entrantly — and the
//! program responds by recording [`Action`]s on its [`Context`]: messages to
//! send, timers to set, and results to hand to the locally attached client.
//!
//! This is the Rust rendering of Table 1 of the paper.  The correspondence:
//!
//! | Paper (VRI)                         | Here                                   |
//! |-------------------------------------|----------------------------------------|
//! | `getCurrentTime()`                  | [`Context::now`]                       |
//! | `scheduleEvent(delay, data, client)`| [`Context::set_timer`]                 |
//! | `handleTimer(data)`                 | [`Program::on_timer`]                  |
//! | UDP `send(src, dst, payload, …)`    | [`Context::send`]                      |
//! | `handleUDP(source, payload)`        | [`Program::on_message`]                |
//! | `handleUDPAck(data, success)`       | [`crate::udpcc`] delivery callbacks    |
//! | TCP client connection               | [`Context::output`] (proxy → client)   |
//!
//! Handlers must not block and must not loop for long periods: long-running
//! work is broken up by re-scheduling continuation timers, exactly as §3.1.2
//! requires.

use crate::time::{Duration, SimTime};
use crate::wire::WireSize;
use std::fmt::Debug;

/// The address of a node on the (virtual or physical) network.
///
/// Addresses identify transport endpoints (the analogue of an IP address +
/// port); they are distinct from DHT identifiers, which name points in the
/// overlay's identifier space and are mapped onto addresses by routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeAddr(pub u32);

impl NodeAddr {
    /// Convenience accessor for indexing node-keyed tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl WireSize for NodeAddr {
    fn wire_size(&self) -> usize {
        // IPv4 address + port.
        6
    }
}

/// An effect requested by a node handler.
///
/// Actions are applied by the runtime *after* the handler returns, which is
/// what guarantees the single-threaded, non-reentrant execution model.
#[derive(Debug, Clone)]
pub enum Action<M, T, O> {
    /// Send `msg` to the node at `to`.  Delivery latency (and whether the
    /// message is delayed by congestion) is decided by the environment.
    Send { to: NodeAddr, msg: M },
    /// Ask to be woken up with `timer` after `delay` has elapsed.
    SetTimer { delay: Duration, timer: T },
    /// Deliver a value to the client application attached to this node
    /// (in the real system: the TCP connection to the user's proxy client).
    Output(O),
}

/// The handle through which a node program interacts with its runtime.
///
/// A fresh context is passed to every handler invocation; it exposes the
/// current virtual time and the node's own address, and buffers the actions
/// the handler requests.
pub struct Context<M, T, O> {
    now: SimTime,
    me: NodeAddr,
    actions: Vec<Action<M, T, O>>,
}

impl<M, T, O> Context<M, T, O> {
    /// Create a context for a handler invocation at time `now` on node `me`.
    pub fn new(now: SimTime, me: NodeAddr) -> Self {
        Context {
            now,
            me,
            actions: Vec::new(),
        }
    }

    /// Current virtual time (paper: `getCurrentTime`).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's network address.
    pub fn me(&self) -> NodeAddr {
        self.me
    }

    /// Queue a message for delivery to `to` (paper: UDP `send`).
    pub fn send(&mut self, to: NodeAddr, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Schedule a timer `delay` microseconds in the future
    /// (paper: `scheduleEvent`).
    pub fn set_timer(&mut self, delay: Duration, timer: T) {
        self.actions.push(Action::SetTimer { delay, timer });
    }

    /// Deliver a value to the locally attached client application.
    pub fn output(&mut self, out: O) {
        self.actions.push(Action::Output(out));
    }

    /// Number of actions recorded so far (useful in tests).
    pub fn pending(&self) -> usize {
        self.actions.len()
    }

    /// Consume the context, returning the recorded actions in order.
    pub fn into_actions(self) -> Vec<Action<M, T, O>> {
        self.actions
    }
}

/// An event-driven node program.
///
/// Programs are written once and executed under either the
/// [`Simulator`](crate::sim::Simulator) or the
/// [`PhysicalRuntime`](crate::physical::PhysicalRuntime).
pub trait Program: Sized {
    /// Network message type exchanged between nodes running this program.
    type Msg: Clone + Debug + WireSize;
    /// Timer token type; carries whatever state the continuation needs.
    type Timer: Clone + Debug;
    /// Values delivered to the locally attached client application.
    type Out: Clone + Debug;

    /// Invoked once when the node boots (joins the network).
    fn on_start(&mut self, ctx: &mut Context<Self::Msg, Self::Timer, Self::Out>);

    /// Invoked when a message from `from` arrives.
    fn on_message(
        &mut self,
        ctx: &mut Context<Self::Msg, Self::Timer, Self::Out>,
        from: NodeAddr,
        msg: Self::Msg,
    );

    /// Invoked when a previously set timer expires.
    fn on_timer(
        &mut self,
        ctx: &mut Context<Self::Msg, Self::Timer, Self::Out>,
        timer: Self::Timer,
    );

    /// Invoked when the runtime removes the node (fail-stop).  Most programs
    /// need no cleanup because soft state at other nodes expires on its own.
    fn on_stop(&mut self, _ctx: &mut Context<Self::Msg, Self::Timer, Self::Out>) {}
}

/// Convenience alias for the context type of a given program.
pub type ProgramContext<P> =
    Context<<P as Program>::Msg, <P as Program>::Timer, <P as Program>::Out>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_records_actions_in_order() {
        let mut ctx: Context<u64, u8, String> = Context::new(10, NodeAddr(3));
        assert_eq!(ctx.now(), 10);
        assert_eq!(ctx.me(), NodeAddr(3));
        ctx.send(NodeAddr(1), 99);
        ctx.set_timer(5, 7);
        ctx.output("hello".to_string());
        assert_eq!(ctx.pending(), 3);
        let actions = ctx.into_actions();
        assert_eq!(actions.len(), 3);
        match &actions[0] {
            Action::Send { to, msg } => {
                assert_eq!(*to, NodeAddr(1));
                assert_eq!(*msg, 99);
            }
            _ => panic!("expected send first"),
        }
        match &actions[1] {
            Action::SetTimer { delay, timer } => {
                assert_eq!(*delay, 5);
                assert_eq!(*timer, 7);
            }
            _ => panic!("expected timer second"),
        }
        match &actions[2] {
            Action::Output(o) => assert_eq!(o, "hello"),
            _ => panic!("expected output third"),
        }
    }

    #[test]
    fn node_addr_display_and_index() {
        let a = NodeAddr(17);
        assert_eq!(a.to_string(), "n17");
        assert_eq!(a.index(), 17);
        assert_eq!(a.wire_size(), 6);
    }
}
