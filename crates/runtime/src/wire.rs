//! Wire-size accounting.
//!
//! The paper's evaluation metrics are dominated by *network bandwidth*
//! (§2.1.1 "PIER is designed for the Internet, and assumes that the network
//! is the key bottleneck").  Rather than paying for real serialisation in the
//! simulator, every message type implements [`WireSize`], which reports how
//! many bytes the message would occupy on the wire.  The simulator adds a
//! fixed per-message header overhead (UDP/IP + overlay header) on top.
//!
//! The estimates are deliberately simple and conservative; what matters for
//! reproducing the paper's figures is that the *relative* cost of strategies
//! (e.g. Symmetric Hash join vs. Fetch Matches join, flat vs. hierarchical
//! aggregation) is preserved.

/// Types that know their approximate encoded size in bytes.
pub trait WireSize {
    /// Approximate number of payload bytes this value occupies on the wire.
    fn wire_size(&self) -> usize;
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl WireSize for u8 {
    fn wire_size(&self) -> usize {
        1
    }
}

impl WireSize for u16 {
    fn wire_size(&self) -> usize {
        2
    }
}

impl WireSize for u32 {
    fn wire_size(&self) -> usize {
        4
    }
}

impl WireSize for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSize for i64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSize for f64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSize for bool {
    fn wire_size(&self) -> usize {
        1
    }
}

impl WireSize for String {
    fn wire_size(&self) -> usize {
        // Length prefix + UTF-8 bytes.
        4 + self.len()
    }
}

impl WireSize for &str {
    fn wire_size(&self) -> usize {
        4 + self.len()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        4 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<T: WireSize> WireSize for Box<T> {
    fn wire_size(&self) -> usize {
        self.as_ref().wire_size()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(42u64.wire_size(), 8);
        assert_eq!(1u8.wire_size(), 1);
        assert_eq!(true.wire_size(), 1);
        assert_eq!(3.5f64.wire_size(), 8);
    }

    #[test]
    fn string_sizes_include_length_prefix() {
        assert_eq!(String::from("abc").wire_size(), 7);
        assert_eq!("".wire_size(), 4);
    }

    #[test]
    fn container_sizes_sum_elements() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(v.wire_size(), 4 + 24);
        let o: Option<u32> = Some(1);
        assert_eq!(o.wire_size(), 5);
        let n: Option<u32> = None;
        assert_eq!(n.wire_size(), 1);
        assert_eq!((1u64, String::from("ab")).wire_size(), 8 + 6);
    }
}
