//! UdpCC — acknowledged UDP with TCP-style congestion control.
//!
//! The paper (§3.1.3) uses UDP as the primary transport because of its low
//! per-message cost, and layers the *UdpCC* library on top to obtain
//! delivery acknowledgements and TCP-style congestion control.  UdpCC tracks
//! every message and either delivers it reliably or notifies the sender of
//! failure; it does **not** guarantee in-order delivery, and PIER's query
//! operators are written not to rely on ordering.
//!
//! This module reimplements that contract as a pure state machine,
//! [`UdpCc`], that a node program can embed.  The host program feeds it
//! three kinds of stimuli — application sends, received packets, and clock
//! ticks — and it emits [`CcEvent`]s describing what to put on the wire and
//! which messages were delivered, received, or failed.
//!
//! Congestion control is a classic AIMD scheme per destination: slow start
//! up to `ssthresh`, additive increase afterwards, multiplicative decrease
//! (and window reset to 1) on a retransmission timeout.
//!
//! The window is **byte-aware**: a payload is charged
//! `ceil(wire_size / mss)` window *segments* rather than a flat one, so a
//! jumbo `PutBatch` occupies the window share its bytes actually consume
//! instead of being priced like a tiny lookup (it is "fragmented against
//! the congestion window").  The head-of-line message always transmits when
//! nothing is in flight, so an oversized payload caps at the whole window
//! but can never deadlock behind it.

use crate::node::NodeAddr;
use crate::time::{Duration, SimTime};
use crate::wire::WireSize;
use std::collections::{HashMap, HashSet, VecDeque};

/// An opaque token the application uses to correlate delivery notifications
/// with the messages it sent (the paper's `callbackData`).
pub type CcToken = u64;

/// A packet exchanged between two UdpCC endpoints.
#[derive(Debug, Clone)]
pub enum CcPacket<M> {
    /// A data packet carrying an application payload.
    Data {
        /// Per-destination sequence number.
        seq: u64,
        /// Application payload.
        payload: M,
    },
    /// An acknowledgement for a previously received data packet.
    Ack {
        /// Sequence number being acknowledged.
        seq: u64,
    },
}

impl<M: WireSize> WireSize for CcPacket<M> {
    fn wire_size(&self) -> usize {
        match self {
            CcPacket::Data { payload, .. } => 8 + payload.wire_size(),
            CcPacket::Ack { .. } => 8,
        }
    }
}

/// Events emitted by the [`UdpCc`] state machine for the host to act on.
#[derive(Debug, Clone)]
pub enum CcEvent<M> {
    /// Put this packet on the wire towards `to`.
    Transmit {
        /// Destination endpoint.
        to: NodeAddr,
        /// Packet to transmit.
        packet: CcPacket<M>,
    },
    /// A message previously submitted with this token was acknowledged.
    Delivered {
        /// Destination it was sent to.
        to: NodeAddr,
        /// Token supplied by the application at send time.
        token: CcToken,
    },
    /// A message could not be delivered after the maximum number of retries
    /// (paper: "notifies the sender on failure").
    Failed {
        /// Destination it was sent to.
        to: NodeAddr,
        /// Token supplied by the application at send time.
        token: CcToken,
    },
    /// A payload arrived from `from` and should be handed to the application.
    Receive {
        /// Originating endpoint.
        from: NodeAddr,
        /// The payload.
        payload: M,
    },
}

#[derive(Debug, Clone)]
struct InFlight<M> {
    payload: M,
    token: CcToken,
    sent_at: SimTime,
    retries: u32,
    /// Window segments this payload occupies (`ceil(wire_size / mss)`).
    segments: usize,
}

#[derive(Debug, Clone)]
struct PeerState<M> {
    next_seq: u64,
    cwnd: f64,
    ssthresh: f64,
    in_flight: HashMap<u64, InFlight<M>>,
    /// Sum of `segments` over `in_flight` — the byte-aware window load.
    flight_segments: usize,
    backlog: VecDeque<(M, CcToken)>,
    seen: HashSet<u64>,
}

impl<M> Default for PeerState<M> {
    fn default() -> Self {
        PeerState {
            next_seq: 0,
            cwnd: 1.0,
            ssthresh: 16.0,
            in_flight: HashMap::new(),
            flight_segments: 0,
            backlog: VecDeque::new(),
            seen: HashSet::new(),
        }
    }
}

/// Configuration knobs for [`UdpCc`].
#[derive(Debug, Clone, Copy)]
pub struct CcConfig {
    /// Retransmission timeout for the first attempt, microseconds.
    pub rto: Duration,
    /// Multiplier applied to the timeout after each retry (exponential
    /// backoff).
    pub backoff: u32,
    /// Give up and report failure after this many retransmissions.
    pub max_retries: u32,
    /// Maximum segment size, bytes: a payload is charged
    /// `ceil(wire_size / mss)` congestion-window segments, so oversized
    /// batches are paced by their size rather than their message count.
    pub mss: usize,
}

impl Default for CcConfig {
    fn default() -> Self {
        CcConfig {
            rto: 500_000,
            backoff: 2,
            max_retries: 4,
            mss: 1_400,
        }
    }
}

/// Cumulative transport counters for one [`UdpCc`] instance.
///
/// A host embedding UdpCC syncs these into its telemetry hub (gauges under
/// the `udpcc.*` prefix — see `docs/OBSERVABILITY.md`); the struct itself
/// has no telemetry dependency so the transport stays layered below it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CcStats {
    /// First-attempt data transmissions.
    pub transmits: u64,
    /// Timeout-driven retransmissions.
    pub retransmits: u64,
    /// Messages acknowledged end-to-end.
    pub delivered: u64,
    /// Messages dropped after exhausting the retry budget.
    pub failed: u64,
    /// Distinct payloads handed to the application.
    pub receives: u64,
    /// Data packets discarded as duplicates (still re-acked).
    pub duplicates: u64,
    /// Retransmission-timeout events (each collapses the window back to
    /// slow start) — the transport-health signal hosts alarm on.
    pub timeouts: u64,
}

/// Reliable-delivery + congestion-control state machine (one per node).
#[derive(Debug, Clone)]
pub struct UdpCc<M> {
    config: CcConfig,
    peers: HashMap<NodeAddr, PeerState<M>>,
    stats: CcStats,
}

/// Window segments a payload of `size` bytes occupies.
fn segments_for(size: usize, mss: usize) -> usize {
    size.div_ceil(mss.max(1)).max(1)
}

impl<M: Clone + WireSize> Default for UdpCc<M> {
    fn default() -> Self {
        Self::new(CcConfig::default())
    }
}

impl<M: Clone + WireSize> UdpCc<M> {
    /// Create a state machine with the given configuration.
    pub fn new(config: CcConfig) -> Self {
        UdpCc {
            config,
            peers: HashMap::new(),
            stats: CcStats::default(),
        }
    }

    /// Current congestion window towards `to` (messages), for diagnostics.
    pub fn cwnd(&self, to: NodeAddr) -> f64 {
        self.peers.get(&to).map_or(1.0, |p| p.cwnd)
    }

    /// Cumulative transport counters since construction.
    pub fn stats(&self) -> CcStats {
        self.stats
    }

    /// Total messages waiting in per-destination backlogs (not yet on the
    /// wire because the congestion window is closed).
    pub fn queue_depth(&self) -> usize {
        self.peers.values().map(|p| p.backlog.len()).sum()
    }

    /// Total messages on the wire awaiting acknowledgement.
    pub fn in_flight_total(&self) -> usize {
        self.peers.values().map(|p| p.in_flight.len()).sum()
    }

    /// Number of messages queued or in flight towards `to`.
    pub fn outstanding(&self, to: NodeAddr) -> usize {
        self.peers
            .get(&to)
            .map_or(0, |p| p.in_flight.len() + p.backlog.len())
    }

    /// Window segments currently in flight towards `to` (the byte-aware
    /// window load), for diagnostics.
    pub fn flight_segments(&self, to: NodeAddr) -> usize {
        self.peers.get(&to).map_or(0, |p| p.flight_segments)
    }

    /// Submit an application message for reliable delivery to `to`.
    pub fn send(
        &mut self,
        to: NodeAddr,
        payload: M,
        token: CcToken,
        now: SimTime,
    ) -> Vec<CcEvent<M>> {
        let mss = self.config.mss;
        let peer = self.peers.entry(to).or_default();
        peer.backlog.push_back((payload, token));
        Self::drain_backlog(peer, to, now, &mut self.stats, mss)
    }

    fn drain_backlog(
        peer: &mut PeerState<M>,
        to: NodeAddr,
        now: SimTime,
        stats: &mut CcStats,
        mss: usize,
    ) -> Vec<CcEvent<M>> {
        let mut events = Vec::new();
        // Charge the head message by its size before committing to it: an
        // oversized payload may cap out the whole window, but when nothing
        // is in flight it always goes (no head-of-line deadlock).
        while let Some((head, _)) = peer.backlog.front() {
            let segments = segments_for(head.wire_size(), mss);
            let budget = peer.cwnd as usize + 1;
            if peer.flight_segments > 0 && peer.flight_segments + segments > budget {
                break;
            }
            let (payload, token) = peer.backlog.pop_front().expect("front was just peeked");
            let seq = peer.next_seq;
            peer.next_seq += 1;
            peer.flight_segments += segments;
            peer.in_flight.insert(
                seq,
                InFlight {
                    payload: payload.clone(),
                    token,
                    sent_at: now,
                    retries: 0,
                    segments,
                },
            );
            stats.transmits += 1;
            events.push(CcEvent::Transmit {
                to,
                packet: CcPacket::Data { seq, payload },
            });
        }
        events
    }

    /// Handle a packet received from `from`.
    pub fn on_packet(
        &mut self,
        from: NodeAddr,
        packet: CcPacket<M>,
        now: SimTime,
    ) -> Vec<CcEvent<M>> {
        let mut events = Vec::new();
        match packet {
            CcPacket::Data { seq, payload } => {
                // Always (re-)acknowledge so lost acks get repaired.
                events.push(CcEvent::Transmit {
                    to: from,
                    packet: CcPacket::Ack { seq },
                });
                let peer = self.peers.entry(from).or_default();
                if peer.seen.insert(seq) {
                    self.stats.receives += 1;
                    events.push(CcEvent::Receive { from, payload });
                } else {
                    self.stats.duplicates += 1;
                }
            }
            CcPacket::Ack { seq } => {
                let mss = self.config.mss;
                if let Some(peer) = self.peers.get_mut(&from) {
                    if let Some(flight) = peer.in_flight.remove(&seq) {
                        peer.flight_segments = peer.flight_segments.saturating_sub(flight.segments);
                        self.stats.delivered += 1;
                        events.push(CcEvent::Delivered {
                            to: from,
                            token: flight.token,
                        });
                        // Slow start then additive increase.
                        if peer.cwnd < peer.ssthresh {
                            peer.cwnd += 1.0;
                        } else {
                            peer.cwnd += 1.0 / peer.cwnd;
                        }
                    }
                    events.extend(Self::drain_backlog(peer, from, now, &mut self.stats, mss));
                }
            }
        }
        events
    }

    /// Advance the clock: retransmit timed-out packets (with exponential
    /// backoff and multiplicative decrease) and fail messages that exceeded
    /// the retry budget.  Call this periodically, e.g. every RTO/2.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<CcEvent<M>> {
        let mut events = Vec::new();
        let config = self.config;
        for (&to, peer) in &mut self.peers {
            let mut failed: Vec<u64> = Vec::new();
            let mut retransmit: Vec<u64> = Vec::new();
            for (&seq, flight) in &peer.in_flight {
                let timeout = config.rto * (config.backoff as u64).pow(flight.retries);
                if now >= flight.sent_at + timeout {
                    if flight.retries >= config.max_retries {
                        failed.push(seq);
                    } else {
                        retransmit.push(seq);
                    }
                }
            }
            if !failed.is_empty() || !retransmit.is_empty() {
                // Timeout => multiplicative decrease, back to slow start.
                peer.ssthresh = (peer.cwnd / 2.0).max(1.0);
                peer.cwnd = 1.0;
                self.stats.timeouts += 1;
            }
            for seq in failed {
                let flight = peer.in_flight.remove(&seq).expect("failed seq present");
                peer.flight_segments = peer.flight_segments.saturating_sub(flight.segments);
                self.stats.failed += 1;
                events.push(CcEvent::Failed {
                    to,
                    token: flight.token,
                });
            }
            for seq in retransmit {
                let flight = peer
                    .in_flight
                    .get_mut(&seq)
                    .expect("retransmit seq present");
                flight.retries += 1;
                flight.sent_at = now;
                self.stats.retransmits += 1;
                events.push(CcEvent::Transmit {
                    to,
                    packet: CcPacket::Data {
                        seq,
                        payload: flight.payload.clone(),
                    },
                });
            }
            events.extend(Self::drain_backlog(
                peer,
                to,
                now,
                &mut self.stats,
                config.mss,
            ));
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeAddr = NodeAddr(1);
    const B: NodeAddr = NodeAddr(2);

    fn transmits<M: Clone>(events: &[CcEvent<M>]) -> Vec<CcPacket<M>> {
        events
            .iter()
            .filter_map(|e| match e {
                CcEvent::Transmit { packet, .. } => Some(packet.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn reliable_round_trip_delivers_and_acknowledges() {
        let mut a: UdpCc<String> = UdpCc::default();
        let mut b: UdpCc<String> = UdpCc::default();

        let out = a.send(B, "hello".into(), 7, 0);
        let pkts = transmits(&out);
        assert_eq!(pkts.len(), 1);

        // Deliver the data packet to B.
        let b_events = b.on_packet(A, pkts[0].clone(), 10);
        assert!(b_events.iter().any(
            |e| matches!(e, CcEvent::Receive { from, payload } if *from == A && payload == "hello")
        ));
        let acks = transmits(&b_events);
        assert_eq!(acks.len(), 1);

        // Deliver the ack back to A.
        let a_events = a.on_packet(B, acks[0].clone(), 20);
        assert!(a_events
            .iter()
            .any(|e| matches!(e, CcEvent::Delivered { to, token } if *to == B && *token == 7)));
        assert_eq!(a.outstanding(B), 0);
    }

    #[test]
    fn duplicate_data_is_acked_but_delivered_once() {
        let mut b: UdpCc<u32> = UdpCc::default();
        let data = CcPacket::Data {
            seq: 0,
            payload: 42,
        };
        let first = b.on_packet(A, data.clone(), 0);
        let second = b.on_packet(A, data, 1);
        let receives = |ev: &[CcEvent<u32>]| {
            ev.iter()
                .filter(|e| matches!(e, CcEvent::Receive { .. }))
                .count()
        };
        assert_eq!(receives(&first), 1);
        assert_eq!(receives(&second), 0, "duplicate must not be re-delivered");
        assert_eq!(transmits(&second).len(), 1, "duplicate must be re-acked");
    }

    #[test]
    fn retransmission_then_failure_after_max_retries() {
        let config = CcConfig {
            rto: 100,
            backoff: 2,
            max_retries: 2,
            ..CcConfig::default()
        };
        let mut a: UdpCc<u32> = UdpCc::new(config);
        let out = a.send(B, 5, 99, 0);
        assert_eq!(transmits(&out).len(), 1);

        // First timeout at t=100 -> retransmit #1.
        let e1 = a.on_tick(150);
        assert_eq!(transmits(&e1).len(), 1);
        // Backoff doubles: next timeout at 150 + 200.
        assert!(transmits(&a.on_tick(200)).is_empty());
        let e2 = a.on_tick(400);
        assert_eq!(transmits(&e2).len(), 1);
        // Retries exhausted: next tick reports failure, no more transmits.
        let e3 = a.on_tick(5_000);
        assert!(e3
            .iter()
            .any(|e| matches!(e, CcEvent::Failed { to, token } if *to == B && *token == 99)));
        assert_eq!(transmits(&e3).len(), 0);
        assert_eq!(a.outstanding(B), 0);
    }

    #[test]
    fn congestion_window_limits_in_flight_messages() {
        let mut a: UdpCc<u32> = UdpCc::default();
        let mut transmitted = 0usize;
        for i in 0..10 {
            transmitted += transmits(&a.send(B, i, i as u64, 0)).len();
        }
        // Initial cwnd is 1 (plus one in-flight slack), so most messages wait
        // in the backlog.
        assert!(transmitted <= 2, "transmitted {transmitted} with cwnd=1");
        assert_eq!(a.outstanding(B), 10);

        // Acking the first message opens the window and releases more.
        let mut b: UdpCc<u32> = UdpCc::default();
        let first = CcPacket::Data { seq: 0, payload: 0 };
        let acks = transmits(&b.on_packet(A, first, 5));
        let more = a.on_packet(B, acks[0].clone(), 10);
        assert!(!transmits(&more).is_empty());
        assert!(a.cwnd(B) > 1.0);
    }

    #[test]
    fn stats_count_transport_events() {
        let config = CcConfig {
            rto: 100,
            backoff: 2,
            max_retries: 1,
            ..CcConfig::default()
        };
        let mut a: UdpCc<u32> = UdpCc::new(config);
        let mut b: UdpCc<u32> = UdpCc::default();

        // One delivered round trip.
        let out = a.send(B, 1, 1, 0);
        let b_events = b.on_packet(A, transmits(&out)[0].clone(), 5);
        let acks = transmits(&b_events);
        a.on_packet(B, acks[0].clone(), 10);
        // Duplicate data at B.
        b.on_packet(A, CcPacket::Data { seq: 0, payload: 1 }, 15);
        // One message that retransmits once, then fails.
        a.send(B, 2, 2, 20);
        assert_eq!(a.queue_depth(), 0);
        assert_eq!(a.in_flight_total(), 1);
        a.on_tick(200);
        a.on_tick(10_000);

        assert_eq!(
            a.stats(),
            CcStats {
                transmits: 2,
                retransmits: 1,
                delivered: 1,
                failed: 1,
                receives: 0,
                duplicates: 0,
                // One RTO event for the retransmission, one for the failure.
                timeouts: 2,
            }
        );
        assert_eq!(b.stats().receives, 1);
        assert_eq!(b.stats().duplicates, 1);
        assert_eq!(a.in_flight_total(), 0);
    }

    #[test]
    fn jumbo_payloads_are_charged_by_size_not_count() {
        // mss 100: a 450-byte string payload occupies 5 window segments.
        let mut a: UdpCc<String> = UdpCc::new(CcConfig {
            mss: 100,
            ..CcConfig::default()
        });
        let jumbo = "x".repeat(450);
        let out = a.send(B, jumbo, 1, 0);
        assert_eq!(
            transmits(&out).len(),
            1,
            "head-of-line jumbo transmits even though it exceeds the window"
        );
        assert!(a.flight_segments(B) >= 5);

        // A small follow-up is blocked: the jumbo's segments cap the window.
        let out = a.send(B, "tiny".into(), 2, 1);
        assert!(transmits(&out).is_empty(), "window full of jumbo segments");
        assert_eq!(a.queue_depth(), 1);

        // Acking the jumbo frees its segments and releases the backlog.
        let more = a.on_packet(B, CcPacket::Ack { seq: 0 }, 10);
        assert_eq!(transmits(&more).len(), 1);
        assert_eq!(a.queue_depth(), 0);

        // By contrast, small payloads still pack the window by count.
        let mut c: UdpCc<String> = UdpCc::new(CcConfig {
            mss: 100,
            ..CcConfig::default()
        });
        let first = c.send(B, "a".into(), 1, 0);
        let second = c.send(B, "b".into(), 2, 0);
        assert_eq!(transmits(&first).len() + transmits(&second).len(), 2);
    }

    #[test]
    fn window_collapses_on_timeout() {
        let mut a: UdpCc<u32> = UdpCc::default();
        // Grow the window artificially by acking a few messages.
        let mut seqs = Vec::new();
        for i in 0..5u32 {
            for ev in a.send(B, i, i as u64, 0) {
                if let CcEvent::Transmit {
                    packet: CcPacket::Data { seq, .. },
                    ..
                } = ev
                {
                    seqs.push(seq);
                }
            }
            if let Some(&seq) = seqs.last() {
                a.on_packet(B, CcPacket::Ack { seq }, 1);
            }
        }
        assert!(a.cwnd(B) > 2.0);
        // Leave one message unacked and let it time out.
        a.send(B, 100, 100, 10);
        a.on_tick(10_000_000);
        assert!((a.cwnd(B) - 1.0).abs() < f64::EPSILON);
    }
}
