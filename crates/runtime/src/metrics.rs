//! Per-node and aggregate network statistics.
//!
//! The experiments in the paper are reported in terms of messages and bytes
//! sent/received per node (in-bandwidth and out-bandwidth, §3.3.4) and
//! query latency.  The runtime maintains these counters transparently for
//! every message it delivers.

use crate::node::NodeAddr;
use crate::time::SimTime;
use std::collections::HashMap;

/// Counters for a single node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Messages sent by this node.
    pub msgs_sent: u64,
    /// Payload + header bytes sent by this node.
    pub bytes_sent: u64,
    /// Messages received by this node.
    pub msgs_recv: u64,
    /// Payload + header bytes received by this node.
    pub bytes_recv: u64,
}

impl NodeStats {
    /// Total bytes moved through this node in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_sent + self.bytes_recv
    }
}

/// Aggregate statistics for a run.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    per_node: HashMap<NodeAddr, NodeStats>,
    /// Total messages delivered.
    pub total_msgs: u64,
    /// Total bytes delivered (payload + per-message header overhead).
    pub total_bytes: u64,
    /// Virtual time of the last delivered event.
    pub last_event_time: SimTime,
}

impl NetStats {
    /// Create empty statistics.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Record a message of `bytes` bytes sent from `from` to `to`.
    pub fn record_send(&mut self, from: NodeAddr, to: NodeAddr, bytes: usize) {
        let b = bytes as u64;
        {
            let s = self.per_node.entry(from).or_default();
            s.msgs_sent += 1;
            s.bytes_sent += b;
        }
        {
            let r = self.per_node.entry(to).or_default();
            r.msgs_recv += 1;
            r.bytes_recv += b;
        }
        self.total_msgs += 1;
        self.total_bytes += b;
    }

    /// Statistics for one node (zeros if the node never communicated).
    pub fn node(&self, addr: NodeAddr) -> NodeStats {
        self.per_node.get(&addr).copied().unwrap_or_default()
    }

    /// Iterate over all nodes with non-zero counters.
    pub fn iter(&self) -> impl Iterator<Item = (NodeAddr, &NodeStats)> {
        self.per_node.iter().map(|(a, s)| (*a, s))
    }

    /// The maximum inbound byte count over all nodes — the "in-bandwidth"
    /// hot-spot metric used when evaluating hierarchical aggregation.
    pub fn max_in_bytes(&self) -> u64 {
        self.per_node
            .values()
            .map(|s| s.bytes_recv)
            .max()
            .unwrap_or(0)
    }

    /// The maximum outbound byte count over all nodes.
    pub fn max_out_bytes(&self) -> u64 {
        self.per_node
            .values()
            .map(|s| s.bytes_sent)
            .max()
            .unwrap_or(0)
    }

    /// Mean bytes received per participating node.
    pub fn mean_in_bytes(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.per_node.values().map(|s| s.bytes_recv).sum();
        sum as f64 / self.per_node.len() as f64
    }

    /// Reset all counters (used between experiment phases so that setup
    /// traffic, e.g. DHT bootstrap, is not charged to the measured query).
    pub fn reset(&mut self) {
        self.per_node.clear();
        self.total_msgs = 0;
        self.total_bytes = 0;
        self.last_event_time = 0;
    }
}

/// Index of the sample holding percentile `p` (in `[0, 100]`) among `total`
/// rank-ordered samples — the nearest-rank rule used by every percentile
/// reporter in the workspace ([`LatencyCdf`] and pier-telemetry's
/// fixed-bucket histogram).
pub fn percentile_rank(total: u64, p: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((p / 100.0).clamp(0.0, 1.0) * (total - 1) as f64).round() as u64;
    rank.min(total - 1)
}

/// Value at percentile `p` over `(value, weight)` pairs sorted by value.
///
/// This is the weighted counterpart of [`LatencyCdf::percentile`]: each pair
/// stands for `weight` identical samples.  Returns `None` when the total
/// weight is zero.
pub fn weighted_percentile(pairs: &[(f64, u64)], p: f64) -> Option<f64> {
    let total: u64 = pairs.iter().map(|(_, w)| w).sum();
    if total == 0 {
        return None;
    }
    let rank = percentile_rank(total, p);
    let mut seen = 0u64;
    for (value, weight) in pairs {
        seen += weight;
        if seen > rank {
            return Some(*value);
        }
    }
    pairs.last().map(|(v, _)| *v)
}

/// An online latency/percentile accumulator used for CDF-style figures.
#[derive(Debug, Clone, Default)]
pub struct LatencyCdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl LatencyCdf {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        LatencyCdf::default()
    }

    /// Add one latency sample (any unit; callers should stay consistent).
    pub fn add(&mut self, value: f64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
    }

    /// Value at percentile `p` in `[0, 100]`; `None` if empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let rank = percentile_rank(self.samples.len() as u64, p) as usize;
        Some(self.samples[rank])
    }

    /// Fraction of samples ≤ `value`, in `[0, 1]`.
    pub fn fraction_at_most(&mut self, value: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let count = self.samples.partition_point(|v| *v <= value);
        count as f64 / self.samples.len() as f64
    }

    /// Produce `(x, cdf(x))` rows for a set of evaluation points; this is the
    /// series plotted in Figure 1 of the paper.
    pub fn series(&mut self, points: &[f64]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&x| (x, self.fraction_at_most(x)))
            .collect()
    }

    /// Mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_updates_both_sides() {
        let mut s = NetStats::new();
        s.record_send(NodeAddr(1), NodeAddr(2), 100);
        s.record_send(NodeAddr(1), NodeAddr(3), 50);
        assert_eq!(s.node(NodeAddr(1)).msgs_sent, 2);
        assert_eq!(s.node(NodeAddr(1)).bytes_sent, 150);
        assert_eq!(s.node(NodeAddr(2)).bytes_recv, 100);
        assert_eq!(s.node(NodeAddr(3)).msgs_recv, 1);
        assert_eq!(s.total_msgs, 2);
        assert_eq!(s.total_bytes, 150);
        assert_eq!(s.max_in_bytes(), 100);
        assert_eq!(s.max_out_bytes(), 150);
    }

    #[test]
    fn reset_clears_counters() {
        let mut s = NetStats::new();
        s.record_send(NodeAddr(1), NodeAddr(2), 10);
        s.last_event_time = 42;
        s.reset();
        assert_eq!(s.total_msgs, 0);
        assert_eq!(s.node(NodeAddr(1)), NodeStats::default());
        assert_eq!(s.last_event_time, 0);
    }

    #[test]
    fn weighted_percentile_matches_expanded_samples() {
        // (value, weight) pairs must select exactly what a LatencyCdf over
        // the expanded sample list would.
        let pairs = [(1.0, 3), (5.0, 2), (9.0, 5)];
        let mut cdf = LatencyCdf::new();
        for (v, w) in pairs {
            for _ in 0..w {
                cdf.add(v);
            }
        }
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            assert_eq!(weighted_percentile(&pairs, p), cdf.percentile(p));
        }
        assert_eq!(weighted_percentile(&[], 50.0), None);
        assert_eq!(weighted_percentile(&[(2.0, 0)], 50.0), None);
    }

    #[test]
    fn cdf_percentiles() {
        let mut c = LatencyCdf::new();
        for i in 1..=100 {
            c.add(i as f64);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.percentile(0.0), Some(1.0));
        assert_eq!(c.percentile(100.0), Some(100.0));
        let median = c.percentile(50.0).unwrap();
        assert!((49.0..=52.0).contains(&median));
        assert!((c.fraction_at_most(50.0) - 0.5).abs() < 0.02);
        assert!((c.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_series_monotone() {
        let mut c = LatencyCdf::new();
        for v in [5.0, 1.0, 9.0, 3.0, 7.0] {
            c.add(v);
        }
        let series = c.series(&[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let mut c = LatencyCdf::new();
        assert!(c.is_empty());
        assert_eq!(c.percentile(50.0), None);
        assert_eq!(c.fraction_at_most(10.0), 0.0);
        assert_eq!(c.mean(), 0.0);
    }
}
