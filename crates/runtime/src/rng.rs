//! A small, deterministic pseudo-random number generator.
//!
//! Every experiment in the reproduction must be replayable from a single
//! seed, so rather than pulling a full RNG crate into every layer we use a
//! tiny SplitMix64/xorshift-style generator.  It is emphatically **not**
//! cryptographic; it is used for suffix uniquifiers, workload generation,
//! topology generation and tie-breaking.

/// Deterministic 64-bit PRNG (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Create a generator from a seed.  Two generators created from the same
    /// seed produce identical streams.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point by mixing in a constant.
        Rng64 {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derive an independent child generator; useful for giving each node or
    /// each workload phase its own stream while staying reproducible.
    pub fn fork(&mut self, salt: u64) -> Rng64 {
        let s = self.next_u64() ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        Rng64::new(s)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.  `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be positive");
        // Multiplicative range reduction; bias is negligible for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_below(hi - lo)
    }

    /// Uniform `usize` index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Uniform floating point value in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.is_empty() {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }
}

/// A Zipf distribution over ranks `1..=n` with exponent `theta`; rank 1 is
/// the most popular element.
///
/// Used by the workload generators (file-sharing keyword popularity and
/// firewall-log source addresses), where heavy-tailed popularity is the
/// property the paper's figures rely on.  The cumulative weights are
/// precomputed once so sampling is a binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf distribution over `n ≥ 1` ranks with exponent `theta`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "Zipf requires at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(theta);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `[1, n]` using the supplied generator.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.f64();
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }

    /// Probability mass of a rank (1-based), for assertions in tests.
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!(rank >= 1 && rank <= self.cdf.len());
        if rank == 1 {
            self.cdf[0]
        } else {
            self.cdf[rank - 1] - self.cdf[rank - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(3);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_in_bounds_and_skewed() {
        let mut r = Rng64::new(11);
        let n = 1000;
        let zipf = Zipf::new(n, 1.0);
        let mut rank1 = 0usize;
        let mut total = 0usize;
        for _ in 0..20_000 {
            let k = zipf.sample(&mut r);
            assert!((1..=n).contains(&k));
            total += 1;
            if k == 1 {
                rank1 += 1;
            }
        }
        // Rank 1 of a Zipf(1.0) over 1000 items captures ~13% of the mass,
        // far more than the uniform share (0.1%).
        let observed = rank1 as f64 / total as f64;
        assert!(observed > 0.08, "rank-1 share {observed}");
        assert!((zipf.pmf(1) - observed).abs() < 0.03);
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_monotone() {
        let zipf = Zipf::new(50, 1.2);
        let total: f64 = (1..=50).map(|k| zipf.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..50 {
            assert!(zipf.pmf(k) >= zipf.pmf(k + 1));
        }
        assert_eq!(zipf.len(), 50);
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = Rng64::new(13);
        let mean = 50.0;
        let samples = 20_000;
        let sum: f64 = (0..samples).map(|_| r.exponential(mean)).sum();
        let observed = sum / samples as f64;
        assert!((observed - mean).abs() < mean * 0.1);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng64::new(5);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(matches < 4);
    }
}
