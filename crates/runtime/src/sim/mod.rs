//! The Simulation Environment (Figure 4 of the paper).
//!
//! A single [`Simulator`] drives thousands of virtual nodes with one global
//! discrete-event priority queue.  Events are annotated with the virtual
//! node that must handle them and demultiplexed to the corresponding
//! [`Program`] instance; outbound messages are passed through the network
//! model (topology + congestion) to decide their delivery time.  The program
//! code is identical to what the [`crate::physical::PhysicalRuntime`] runs —
//! that is the point of native simulation.

pub mod congestion;
pub mod faults;
pub mod topology;

pub use congestion::{CongestionKind, CongestionState};
pub use faults::{FaultCounts, FaultKind, FaultPlan, FaultRecord, StormEvent};
pub use topology::{NetworkTopology, TopologyConfig};

use crate::metrics::NetStats;
use crate::node::{Action, Context, NodeAddr, Program, ProgramContext};
use crate::time::{Duration, SimTime};
use crate::wire::WireSize;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for topology parameters and any runtime tie-breaking.
    pub seed: u64,
    /// Network topology model.
    pub topology: TopologyConfig,
    /// Congestion model applied to every message.
    pub congestion: CongestionKind,
    /// Fixed per-message header overhead in bytes (UDP/IP + overlay header).
    pub header_overhead: usize,
    /// Maximum segment size: an application message larger than this is
    /// charged as `ceil(wire / mss)` fragments, each paying
    /// `header_overhead` again.  Matches `CcConfig::mss` so UdpCC window
    /// segments and the congestion models price a large `PutBatch`
    /// consistently instead of as a single oversized packet.
    pub mss: usize,
    /// Safety valve: the run aborts (panics) after this many events, which
    /// catches runaway message storms in buggy experiments.
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            topology: TopologyConfig::lan(),
            congestion: CongestionKind::None,
            header_overhead: 48,
            mss: 1_400,
            max_events: 200_000_000,
        }
    }
}

impl SimConfig {
    /// LAN-like configuration with a given seed — the default for tests.
    pub fn lan(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// Wide-area transit-stub configuration with FIFO access-link queuing —
    /// the default for experiments that reproduce the paper's figures.
    pub fn internet(seed: u64) -> Self {
        SimConfig {
            seed,
            topology: TopologyConfig::internet_like(),
            congestion: CongestionKind::Fifo,
            ..SimConfig::default()
        }
    }
}

enum EventKind<P: Program> {
    Start,
    Deliver { from: NodeAddr, msg: P::Msg },
    Timer { timer: P::Timer },
    Fail,
    Restart { program: Box<P> },
}

struct Event<P: Program> {
    time: SimTime,
    seq: u64,
    node: NodeAddr,
    kind: EventKind<P>,
}

impl<P: Program> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P: Program> Eq for Event<P> {}
impl<P: Program> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: Program> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A value produced by a node for its locally attached client, with the time
/// and node at which it was produced.
#[derive(Debug, Clone)]
pub struct SimOutput<O> {
    /// Virtual time at which the output was produced.
    pub time: SimTime,
    /// Node that produced the output.
    pub node: NodeAddr,
    /// The output value itself.
    pub value: O,
}

/// Discrete-event simulator for node programs.
pub struct Simulator<P: Program> {
    config: SimConfig,
    nodes: Vec<Option<P>>,
    alive: Vec<bool>,
    queue: BinaryHeap<Event<P>>,
    now: SimTime,
    seq: u64,
    events_processed: u64,
    topology: NetworkTopology,
    congestion: CongestionState,
    stats: NetStats,
    outputs: Vec<SimOutput<P::Out>>,
    faults: Option<FaultPlan>,
    fault_sink: Option<FaultSink>,
}

/// Callback journaling every injected fault (see [`Simulator::set_fault_sink`]).
pub type FaultSink = Box<dyn FnMut(&FaultRecord)>;

impl<P: Program> Simulator<P> {
    /// Create an empty simulator.
    pub fn new(config: SimConfig) -> Self {
        let topology = NetworkTopology::new(config.topology.clone(), config.seed);
        let congestion = CongestionState::new(config.congestion);
        Simulator {
            config,
            nodes: Vec::new(),
            alive: Vec::new(),
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            events_processed: 0,
            topology,
            congestion,
            stats: NetStats::new(),
            outputs: Vec::new(),
            faults: None,
            fault_sink: None,
        }
    }

    /// Install a fault plan.  Subsequent sends and dispatches consult it; the
    /// schedule is replayed identically for equal seeds and plans.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any (its log records every injection).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Install a callback invoked once per injected fault, in injection
    /// order.  The harness uses this to mirror faults into telemetry.
    pub fn set_fault_sink(&mut self, sink: impl FnMut(&FaultRecord) + 'static) {
        self.fault_sink = Some(Box::new(sink));
    }

    fn flush_fault_records(&mut self) {
        if let Some(plan) = self.faults.as_mut() {
            let new = plan.drain_new();
            if let Some(sink) = self.fault_sink.as_mut() {
                for rec in &new {
                    sink(rec);
                }
            }
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology in use (read-only).
    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    /// Network statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable access to statistics, e.g. to reset them between phases.
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// Number of nodes ever added (alive or failed).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Addresses of all currently live nodes.
    pub fn alive_nodes(&self) -> Vec<NodeAddr> {
        (0..self.nodes.len())
            .filter(|&i| self.alive[i])
            .map(|i| NodeAddr(i as u32))
            .collect()
    }

    /// Whether a node is currently alive.
    pub fn is_alive(&self, addr: NodeAddr) -> bool {
        self.alive.get(addr.index()).copied().unwrap_or(false)
    }

    /// Read-only access to a node's program state (available even after the
    /// node has failed; useful for assertions in tests).
    pub fn node(&self, addr: NodeAddr) -> Option<&P> {
        self.nodes.get(addr.index()).and_then(|n| n.as_ref())
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Add a node that boots immediately (its `on_start` runs at the current
    /// virtual time).  Returns the node's address.
    pub fn add_node(&mut self, program: P) -> NodeAddr {
        self.add_node_at(program, self.now)
    }

    /// Add a node that boots at virtual time `at` (must not be in the past).
    pub fn add_node_at(&mut self, program: P, at: SimTime) -> NodeAddr {
        let addr = NodeAddr(self.nodes.len() as u32);
        self.nodes.push(Some(program));
        self.alive.push(true);
        let seq = self.next_seq();
        self.queue.push(Event {
            time: at.max(self.now),
            seq,
            node: addr,
            kind: EventKind::Start,
        });
        addr
    }

    /// Schedule a fail-stop crash of `node` at time `at`.  A failed node
    /// silently drops all subsequent messages and timers.
    pub fn fail_node_at(&mut self, node: NodeAddr, at: SimTime) {
        let seq = self.next_seq();
        self.queue.push(Event {
            time: at.max(self.now),
            seq,
            node,
            kind: EventKind::Fail,
        });
    }

    /// Schedule an in-place restart of a previously failed node at time `at`:
    /// the address is re-occupied by `program`, whose `on_start` runs then.
    /// Durable state (e.g. a window-segment store shared with the replaced
    /// program) is how a restarted node comes back warm — the simulator
    /// itself hands over nothing.
    pub fn restart_node_at(&mut self, node: NodeAddr, program: P, at: SimTime) {
        assert!(
            node.index() < self.nodes.len(),
            "restart_node_at: unknown node {node}"
        );
        let seq = self.next_seq();
        self.queue.push(Event {
            time: at.max(self.now),
            seq,
            node,
            kind: EventKind::Restart {
                program: Box::new(program),
            },
        });
    }

    /// Immediately and gracefully remove a node: `on_stop` runs and its
    /// actions (e.g. goodbye messages) are applied, then the node is dead.
    pub fn remove_node(&mut self, node: NodeAddr) {
        if !self.is_alive(node) {
            return;
        }
        self.dispatch(node, super::node::Program::on_stop);
        self.alive[node.index()] = false;
    }

    /// Invoke a closure against a live node's program, applying any actions
    /// it records.  This models an external client request arriving at the
    /// node (e.g. a query submitted over the proxy's TCP connection).
    pub fn invoke<F>(&mut self, node: NodeAddr, f: F)
    where
        F: FnOnce(&mut P, &mut ProgramContext<P>),
    {
        if self.is_alive(node) {
            self.dispatch(node, f);
        }
    }

    /// Inspect a live node mutably without a context (no actions possible).
    pub fn with_node_mut<R>(&mut self, node: NodeAddr, f: impl FnOnce(&mut P) -> R) -> Option<R> {
        match self.nodes.get_mut(node.index()) {
            Some(Some(p)) => Some(f(p)),
            _ => None,
        }
    }

    /// All outputs produced so far.
    pub fn outputs(&self) -> &[SimOutput<P::Out>] {
        &self.outputs
    }

    /// Remove and return all outputs produced so far.
    pub fn drain_outputs(&mut self) -> Vec<SimOutput<P::Out>> {
        std::mem::take(&mut self.outputs)
    }

    fn dispatch<F>(&mut self, node: NodeAddr, f: F)
    where
        F: FnOnce(&mut P, &mut ProgramContext<P>),
    {
        let idx = node.index();
        let Some(mut program) = self.nodes.get_mut(idx).and_then(Option::take) else {
            return;
        };
        let mut ctx: ProgramContext<P> = Context::new(self.now, node);
        f(&mut program, &mut ctx);
        self.nodes[idx] = Some(program);
        let actions = ctx.into_actions();
        for action in actions {
            self.apply_action(node, action);
        }
    }

    fn apply_action(&mut self, node: NodeAddr, action: Action<P::Msg, P::Timer, P::Out>) {
        match action {
            Action::Send { to, msg } => {
                // A message longer than one MSS goes on the wire as several
                // fragments, each with its own header: a multi-MSS `PutBatch`
                // must pay transmission time and stats for every fragment,
                // not for one fictitious jumbo packet.
                let wire = msg.wire_size();
                let frags = wire.div_ceil(self.config.mss.max(1)).max(1);
                let bytes = wire + frags * self.config.header_overhead;
                self.stats.record_send(node, to, bytes);
                // The fault plan decides how many copies arrive and with how
                // much extra delay; an empty set means the message was lost
                // in the network (the sender still paid for the send).
                let copies = match self.faults.as_mut() {
                    Some(plan) => {
                        let copies = plan.on_send(self.now, node, to, &self.topology);
                        self.flush_fault_records();
                        copies
                    }
                    None => vec![0],
                };
                if copies.is_empty() {
                    return;
                }
                let arrival =
                    self.congestion
                        .delivery_time(self.now, node, to, bytes, &self.topology);
                let n = copies.len();
                let mut msg = Some(msg);
                for (i, extra) in copies.into_iter().enumerate() {
                    let payload = if i + 1 == n {
                        msg.take().expect("last copy consumes the original")
                    } else {
                        msg.as_ref().expect("copies remain").clone()
                    };
                    let seq = self.next_seq();
                    self.queue.push(Event {
                        time: arrival + extra,
                        seq,
                        node: to,
                        kind: EventKind::Deliver {
                            from: node,
                            msg: payload,
                        },
                    });
                }
            }
            Action::SetTimer { delay, timer } => {
                let seq = self.next_seq();
                self.queue.push(Event {
                    time: self.now + delay,
                    seq,
                    node,
                    kind: EventKind::Timer { timer },
                });
            }
            Action::Output(value) => {
                self.outputs.push(SimOutput {
                    time: self.now,
                    node,
                    value,
                });
            }
        }
    }

    /// Process a single event.  Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        self.events_processed += 1;
        assert!(
            self.events_processed <= self.config.max_events,
            "simulation exceeded max_events = {}; likely a message storm",
            self.config.max_events
        );
        self.now = self.now.max(event.time);
        self.stats.last_event_time = self.now;
        if let Some(plan) = self.faults.as_mut() {
            plan.observe(self.now);
        }
        self.flush_fault_records();
        let node = event.node;
        // A stalled node is alive but silent: its deliveries and timers are
        // deferred (re-queued) until the stall ends, then fire in a burst —
        // the GC-pause / overloaded-node failure mode.
        if matches!(
            event.kind,
            EventKind::Deliver { .. } | EventKind::Timer { .. }
        ) {
            let stall_until = self
                .faults
                .as_ref()
                .and_then(|plan| plan.stall_until(node, self.now));
            if let Some(until) = stall_until {
                let seq = self.next_seq();
                self.queue.push(Event {
                    time: until,
                    seq,
                    node,
                    kind: event.kind,
                });
                return true;
            }
        }
        match event.kind {
            EventKind::Start => {
                if self.is_alive(node) {
                    self.dispatch(node, super::node::Program::on_start);
                }
            }
            EventKind::Deliver { from, msg } => {
                if self.is_alive(node) {
                    self.dispatch(node, |p, ctx| p.on_message(ctx, from, msg));
                }
            }
            EventKind::Timer { timer } => {
                if self.is_alive(node) {
                    self.dispatch(node, |p, ctx| p.on_timer(ctx, timer));
                }
            }
            EventKind::Fail => {
                if node.index() < self.alive.len() && self.alive[node.index()] {
                    self.alive[node.index()] = false;
                    if let Some(plan) = self.faults.as_mut() {
                        plan.record_crash(self.now, node);
                    }
                    self.flush_fault_records();
                }
            }
            EventKind::Restart { program } => {
                let idx = node.index();
                if idx < self.nodes.len() && !self.alive[idx] {
                    self.nodes[idx] = Some(*program);
                    self.alive[idx] = true;
                    if let Some(plan) = self.faults.as_mut() {
                        plan.record_restart(self.now, node);
                    }
                    self.flush_fault_records();
                    self.dispatch(node, super::node::Program::on_start);
                }
            }
        }
        true
    }

    /// Run until virtual time `deadline`: every event with a timestamp at or
    /// before the deadline is processed, and the clock is advanced to the
    /// deadline even if the queue drains early.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(e) = self.queue.peek() {
            if e.time > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
        if let Some(plan) = self.faults.as_mut() {
            plan.observe(self.now);
        }
        self.flush_fault_records();
    }

    /// Run for `duration` of virtual time from the current clock.
    pub fn run_for(&mut self, duration: Duration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    /// Run until the event queue is empty or `max_time` is reached, returning
    /// the final virtual time.  Note that programs with periodic maintenance
    /// timers never drain their queue, so `max_time` is the practical bound.
    pub fn run_until_idle(&mut self, max_time: SimTime) -> SimTime {
        while let Some(e) = self.queue.peek() {
            if e.time > max_time {
                break;
            }
            self.step();
        }
        self.now
    }

    /// Total events processed so far (for diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial program used to exercise the simulator: every node greets a
    /// peer on start, replies to greetings, and reports replies as output.
    #[derive(Debug, Default)]
    struct Greeter {
        peer: Option<NodeAddr>,
        greetings_seen: u32,
    }

    #[derive(Debug, Clone)]
    enum GreeterMsg {
        Hello,
        Reply,
    }

    impl WireSize for GreeterMsg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    impl Program for Greeter {
        type Msg = GreeterMsg;
        type Timer = u32;
        type Out = String;

        fn on_start(&mut self, ctx: &mut ProgramContext<Self>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, GreeterMsg::Hello);
            }
            ctx.set_timer(1_000_000, 1);
        }

        fn on_message(&mut self, ctx: &mut ProgramContext<Self>, from: NodeAddr, msg: Self::Msg) {
            match msg {
                GreeterMsg::Hello => {
                    self.greetings_seen += 1;
                    ctx.send(from, GreeterMsg::Reply);
                }
                GreeterMsg::Reply => {
                    ctx.output(format!("reply from {from}"));
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut ProgramContext<Self>, timer: Self::Timer) {
            if timer == 1 {
                ctx.output("tick".to_string());
            }
        }
    }

    #[test]
    fn request_reply_round_trip() {
        let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::lan(1));
        let a = sim.add_node(Greeter::default());
        let b = sim.add_node(Greeter {
            peer: Some(a),
            ..Default::default()
        });
        sim.run_until(500_000);
        let outputs = sim.outputs();
        assert!(outputs
            .iter()
            .any(|o| o.node == b && o.value.contains(&format!("reply from {a}"))));
        assert_eq!(sim.node(a).unwrap().greetings_seen, 1);
        // Latency is nonzero: the reply cannot have arrived at time 0.
        assert!(outputs.iter().all(|o| o.time > 0));
    }

    #[test]
    fn timers_fire_at_the_right_time() {
        let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::lan(2));
        let a = sim.add_node(Greeter::default());
        sim.run_until(999_999);
        assert!(sim.outputs().iter().all(|o| o.value != "tick"));
        sim.run_until(1_000_001);
        assert!(sim
            .outputs()
            .iter()
            .any(|o| o.node == a && o.value == "tick"));
    }

    #[test]
    fn failed_nodes_drop_messages_and_timers() {
        let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::lan(3));
        let a = sim.add_node(Greeter::default());
        let b = sim.add_node(Greeter {
            peer: Some(a),
            ..Default::default()
        });
        // Fail node `a` before anything happens: b's Hello is never answered.
        sim.fail_node_at(a, 0);
        sim.run_until(2_000_000);
        assert!(!sim.is_alive(a));
        assert!(sim.is_alive(b));
        assert!(!sim
            .outputs()
            .iter()
            .any(|o| o.node == b && o.value.starts_with("reply")));
        // b still produced its own tick.
        assert!(sim
            .outputs()
            .iter()
            .any(|o| o.node == b && o.value == "tick"));
        assert_eq!(sim.node(a).unwrap().greetings_seen, 0);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::lan(4));
        let a = sim.add_node(Greeter::default());
        let b = sim.add_node(Greeter {
            peer: Some(a),
            ..Default::default()
        });
        sim.run_until(500_000);
        let stats = sim.stats();
        assert_eq!(stats.total_msgs, 2); // Hello + Reply
        assert!(stats.node(b).msgs_sent == 1 && stats.node(b).msgs_recv == 1);
        assert!(stats.node(a).bytes_recv > 0);
        assert_eq!(stats.total_bytes, 2 * (8 + 48) as u64);
    }

    /// A program whose single message is far larger than one MSS, standing
    /// in for a bulk `PutBatch` flush.
    #[derive(Debug, Default)]
    struct BulkSender {
        peer: Option<NodeAddr>,
    }

    #[derive(Debug, Clone)]
    struct JumboMsg;

    impl WireSize for JumboMsg {
        fn wire_size(&self) -> usize {
            10_000
        }
    }

    impl Program for BulkSender {
        type Msg = JumboMsg;
        type Timer = u32;
        type Out = ();

        fn on_start(&mut self, ctx: &mut ProgramContext<Self>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, JumboMsg);
            }
        }

        fn on_message(&mut self, _ctx: &mut ProgramContext<Self>, _from: NodeAddr, _msg: JumboMsg) {
        }

        fn on_timer(&mut self, _ctx: &mut ProgramContext<Self>, _timer: u32) {}
    }

    #[test]
    fn multi_mss_message_pays_per_fragment_headers() {
        // 10_000-byte payload over mss=1_400 → 8 fragments, each paying the
        // 48-byte header: the wire carries 10_000 + 8*48 bytes, not 10_048.
        let config = SimConfig::lan(8);
        assert_eq!(config.mss, 1_400);
        let mut sim: Simulator<BulkSender> = Simulator::new(config);
        let a = sim.add_node(BulkSender::default());
        let _b = sim.add_node(BulkSender { peer: Some(a) });
        sim.run_until(500_000);
        let frags = 10_000_u64.div_ceil(1_400);
        assert_eq!(sim.stats().total_msgs, 1);
        assert_eq!(sim.stats().total_bytes, 10_000 + frags * 48);

        // A jumbo-frame config (mss >= payload) charges exactly one header,
        // so fragmentation strictly increases the priced wire volume.
        let mut jumbo: Simulator<BulkSender> = Simulator::new(SimConfig {
            mss: 64 << 10,
            ..SimConfig::lan(8)
        });
        let a = jumbo.add_node(BulkSender::default());
        let _b = jumbo.add_node(BulkSender { peer: Some(a) });
        jumbo.run_until(500_000);
        assert_eq!(jumbo.stats().total_bytes, 10_000 + 48);
    }

    #[test]
    fn invoke_injects_external_events() {
        let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::lan(5));
        let a = sim.add_node(Greeter::default());
        let b = sim.add_node(Greeter::default());
        sim.run_until(10_000);
        // Externally instruct b to greet a.
        sim.invoke(b, |_p, ctx| ctx.send(a, GreeterMsg::Hello));
        sim.run_until(200_000);
        assert!(sim
            .outputs()
            .iter()
            .any(|o| o.node == b && o.value.starts_with("reply")));
    }

    #[test]
    fn add_node_at_defers_start() {
        let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::lan(6));
        let a = sim.add_node(Greeter::default());
        let _late = sim.add_node_at(
            Greeter {
                peer: Some(a),
                ..Default::default()
            },
            5_000_000,
        );
        sim.run_until(1_000_000);
        assert_eq!(sim.stats().total_msgs, 0, "late node has not started yet");
        sim.run_until(6_000_000);
        assert!(sim.stats().total_msgs >= 2);
    }

    #[test]
    fn total_loss_drops_every_message() {
        let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::lan(7));
        sim.set_fault_plan(FaultPlan::new(7).with_loss(0, 10_000_000, 1.0));
        let a = sim.add_node(Greeter::default());
        let b = sim.add_node(Greeter {
            peer: Some(a),
            ..Default::default()
        });
        sim.run_until(2_000_000);
        // The Hello was sent (and counted) but never delivered.
        assert_eq!(sim.stats().total_msgs, 1);
        assert_eq!(sim.node(a).unwrap().greetings_seen, 0);
        let plan = sim.fault_plan().unwrap();
        assert_eq!(plan.counts().losses, 1);
        assert!(matches!(plan.log()[0].kind, FaultKind::Loss { .. }));
        let _ = b;
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::lan(8));
        sim.set_fault_plan(FaultPlan::new(8).with_duplication(0, 10_000_000, 1.0));
        let a = sim.add_node(Greeter::default());
        let _b = sim.add_node(Greeter {
            peer: Some(a),
            ..Default::default()
        });
        sim.run_until(2_000_000);
        // Hello duplicated: a greets twice (replies are duplicated too).
        assert_eq!(sim.node(a).unwrap().greetings_seen, 2);
        assert!(sim.fault_plan().unwrap().counts().duplicates >= 1);
    }

    #[test]
    fn partition_blocks_and_heals() {
        let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::lan(9));
        let plan = FaultPlan::new(9).with_partition(0, 1_000_000, vec![NodeAddr(0)]);
        sim.set_fault_plan(plan);
        let a = sim.add_node(Greeter::default());
        let b = sim.add_node(Greeter {
            peer: Some(a),
            ..Default::default()
        });
        sim.run_until(500_000);
        assert_eq!(sim.node(a).unwrap().greetings_seen, 0, "cut blocks Hello");
        // After heal, a fresh Hello goes through.
        sim.run_until(1_100_000);
        sim.invoke(b, |_p, ctx| ctx.send(a, GreeterMsg::Hello));
        sim.run_until(2_000_000);
        assert_eq!(sim.node(a).unwrap().greetings_seen, 1);
        let counts = sim.fault_plan().unwrap().counts();
        assert_eq!(counts.partition_drops, 1);
        assert_eq!(counts.partitions_started, 1);
        assert_eq!(counts.partitions_healed, 1);
    }

    #[test]
    fn stalled_node_defers_then_catches_up() {
        let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::lan(10));
        sim.set_fault_plan(FaultPlan::new(10).with_stall(NodeAddr(0), 0, 3_000_000));
        let a = sim.add_node(Greeter::default());
        let _b = sim.add_node(Greeter {
            peer: Some(a),
            ..Default::default()
        });
        sim.run_until(2_999_999);
        assert_eq!(sim.node(a).unwrap().greetings_seen, 0, "stalled: deferred");
        assert!(sim.is_alive(a), "stalled is not dead");
        sim.run_until(4_000_000);
        assert_eq!(sim.node(a).unwrap().greetings_seen, 1, "burst after stall");
        // a's own 1s tick was also deferred to the stall end, not dropped.
        assert!(sim
            .outputs()
            .iter()
            .any(|o| o.node == a && o.value == "tick" && o.time >= 3_000_000));
    }

    #[test]
    fn restart_reoccupies_the_address() {
        let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::lan(11));
        sim.set_fault_plan(FaultPlan::new(11));
        let a = sim.add_node(Greeter::default());
        let b = sim.add_node(Greeter::default());
        sim.fail_node_at(a, 100_000);
        sim.restart_node_at(a, Greeter::default(), 2_000_000);
        sim.run_until(1_000_000);
        assert!(!sim.is_alive(a));
        sim.invoke(b, |_p, ctx| ctx.send(a, GreeterMsg::Hello));
        sim.run_until(1_500_000);
        assert_eq!(sim.node(a).unwrap().greetings_seen, 0, "dead nodes drop");
        sim.run_until(2_500_000);
        assert!(sim.is_alive(a), "restarted in place");
        sim.invoke(b, |_p, ctx| ctx.send(a, GreeterMsg::Hello));
        sim.run_until(3_000_000);
        assert_eq!(sim.node(a).unwrap().greetings_seen, 1);
        let counts = sim.fault_plan().unwrap().counts();
        assert_eq!((counts.crashes, counts.restarts), (1, 1));
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let run = |seed: u64| {
            let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::internet(seed));
            let plan = FaultPlan::new(seed)
                .with_loss(0, 8_000_000, 0.3)
                .with_duplication(0, 8_000_000, 0.2)
                .with_reorder(0, 8_000_000, 0.5, 20_000)
                .with_delay_spike(2_000_000, 4_000_000, None, 5_000, 1.0)
                .with_partition(3_000_000, 6_000_000, vec![NodeAddr(1), NodeAddr(2)])
                .with_stall(NodeAddr(3), 1_000_000, 2_000_000);
            sim.set_fault_plan(plan);
            let mut sink_seen = 0u64;
            // A sink must observe exactly the log, in order.
            let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let seen2 = seen.clone();
            sim.set_fault_sink(move |rec| seen2.borrow_mut().push(rec.clone()));
            let a = sim.add_node(Greeter::default());
            for _ in 0..8 {
                sim.add_node(Greeter {
                    peer: Some(a),
                    ..Default::default()
                });
            }
            for i in 0..9u32 {
                let peer = NodeAddr((i + 1) % 9);
                sim.invoke(NodeAddr(i), |_p, ctx| ctx.send(peer, GreeterMsg::Hello));
            }
            sim.run_until(10_000_000);
            sink_seen += seen.borrow().len() as u64;
            let log = sim.fault_plan().unwrap().log().to_vec();
            assert_eq!(seen.borrow().as_slice(), log.as_slice());
            (sim.stats().total_bytes, sim.outputs().len(), log, sink_seen)
        };
        let (b1, o1, l1, s1) = run(42);
        let (b2, o2, l2, s2) = run(42);
        assert_eq!((b1, o1, s1), (b2, o2, s2));
        assert_eq!(l1, l2, "fault logs replay byte-for-byte");
        assert!(!l1.is_empty());
    }

    #[test]
    fn storm_schedule_is_pre_drawn_and_sorted() {
        let victims = [NodeAddr(0), NodeAddr(1), NodeAddr(2)];
        let plan = FaultPlan::new(5)
            .with_restart_storm(1_000_000, 9_000_000, &victims, 4, 500_000, 1_500_000);
        let storm = plan.storm();
        assert_eq!(storm.len(), 4);
        assert!(storm.windows(2).all(|w| w[0].crash_at <= w[1].crash_at));
        for e in storm {
            assert!((1_000_000..9_000_000).contains(&e.crash_at));
            let up = e.restart_at.unwrap();
            assert!((500_000..1_500_000).contains(&(up - e.crash_at)));
        }
        let plan2 = FaultPlan::new(5)
            .with_restart_storm(1_000_000, 9_000_000, &victims, 4, 500_000, 1_500_000);
        assert_eq!(storm, plan2.storm(), "storms replay from the seed");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut sim: Simulator<Greeter> = Simulator::new(SimConfig::internet(seed));
            let a = sim.add_node(Greeter::default());
            for _ in 0..10 {
                sim.add_node(Greeter {
                    peer: Some(a),
                    ..Default::default()
                });
            }
            sim.run_until(10_000_000);
            (sim.stats().total_bytes, sim.outputs().len())
        };
        assert_eq!(run(42), run(42));
    }
}
