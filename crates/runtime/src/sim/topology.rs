//! Network topology models for the Simulation Environment.
//!
//! The paper's simulator (§3.1.4) supports two standard topology types —
//! *star* and *transit-stub* — and we implement both, plus a uniform
//! topology that is convenient for unit tests.  A topology answers two
//! questions about the virtual Internet:
//!
//! * the propagation latency between two node addresses, and
//! * the access-link ("last mile") bandwidth of each node, which is where
//!   p2p hosts see their bottleneck (§2.1.1).
//!
//! Per-node parameters are derived deterministically from the topology seed
//! and the node index, so nodes can join at any time without the topology
//! having to be resized.

use crate::node::NodeAddr;
use crate::rng::Rng64;
use crate::time::{Duration, MICROS_PER_MILLI};

/// Declarative description of the topology, part of [`crate::sim::SimConfig`].
#[derive(Debug, Clone)]
pub enum TopologyConfig {
    /// Every pair of nodes is separated by the same fixed latency and every
    /// node has the same access bandwidth.  Useful for tests where network
    /// variance is noise.
    Uniform {
        /// One-way latency between any two distinct nodes, microseconds.
        latency: Duration,
        /// Access bandwidth in bytes per second.
        bandwidth_bps: f64,
    },
    /// A star: every node hangs off a central hub through an access link with
    /// a per-node latency and bandwidth drawn from the given ranges.
    Star {
        /// Minimum access latency (one way, node to hub), microseconds.
        min_access_latency: Duration,
        /// Maximum access latency, microseconds.
        max_access_latency: Duration,
        /// Minimum access bandwidth, bytes per second.
        min_bandwidth_bps: f64,
        /// Maximum access bandwidth, bytes per second.
        max_bandwidth_bps: f64,
    },
    /// A two-level transit-stub Internet: nodes belong to stub domains, stub
    /// domains attach to transit domains, transit domains form a ring.
    TransitStub {
        /// Number of transit domains.
        transit_domains: usize,
        /// Stub domains attached to each transit domain.
        stubs_per_transit: usize,
        /// Latency between adjacent transit domains, microseconds.
        transit_transit_latency: Duration,
        /// Latency between a stub domain and its transit domain, microseconds.
        stub_transit_latency: Duration,
        /// Latency between two nodes in the same stub domain, microseconds.
        intra_stub_latency: Duration,
        /// Minimum access bandwidth, bytes per second.
        min_bandwidth_bps: f64,
        /// Maximum access bandwidth, bytes per second.
        max_bandwidth_bps: f64,
    },
}

impl TopologyConfig {
    /// A reasonable wide-area default: 4 transit domains, 3 stubs each,
    /// DSL/cable-class access links.  Used by most experiments.
    pub fn internet_like() -> Self {
        TopologyConfig::TransitStub {
            transit_domains: 4,
            stubs_per_transit: 3,
            transit_transit_latency: 30 * MICROS_PER_MILLI,
            stub_transit_latency: 10 * MICROS_PER_MILLI,
            intra_stub_latency: 2 * MICROS_PER_MILLI,
            min_bandwidth_bps: 128.0 * 1024.0,
            max_bandwidth_bps: 1024.0 * 1024.0,
        }
    }

    /// A fast LAN-like uniform topology for functional tests.
    pub fn lan() -> Self {
        TopologyConfig::Uniform {
            latency: MICROS_PER_MILLI,
            bandwidth_bps: 100.0 * 1024.0 * 1024.0,
        }
    }
}

/// Materialised topology: answers latency/bandwidth queries for node pairs.
#[derive(Debug, Clone)]
pub struct NetworkTopology {
    config: TopologyConfig,
    seed: u64,
}

impl NetworkTopology {
    /// Build a topology from its configuration and a seed.
    pub fn new(config: TopologyConfig, seed: u64) -> Self {
        NetworkTopology { config, seed }
    }

    fn node_rng(&self, node: NodeAddr, salt: u64) -> Rng64 {
        Rng64::new(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(node.0 as u64)
                .wrapping_add(salt.wrapping_mul(0x1000_0000_01B3)),
        )
    }

    /// One-way propagation latency between two nodes in microseconds.
    /// Latency from a node to itself is zero.
    pub fn latency(&self, from: NodeAddr, to: NodeAddr) -> Duration {
        if from == to {
            return 0;
        }
        match &self.config {
            TopologyConfig::Uniform { latency, .. } => *latency,
            TopologyConfig::Star {
                min_access_latency,
                max_access_latency,
                ..
            } => {
                let a = self.access_latency(from, *min_access_latency, *max_access_latency);
                let b = self.access_latency(to, *min_access_latency, *max_access_latency);
                a + b
            }
            TopologyConfig::TransitStub {
                transit_domains,
                stubs_per_transit,
                transit_transit_latency,
                stub_transit_latency,
                intra_stub_latency,
                ..
            } => {
                let spt = (*stubs_per_transit).max(1);
                let total_stubs = (transit_domains * spt).max(1);
                let stub_of = |n: NodeAddr| (n.0 as usize) % total_stubs;
                let transit_of = |stub: usize| stub / spt;
                let (sa, sb) = (stub_of(from), stub_of(to));
                if sa == sb {
                    return *intra_stub_latency;
                }
                let (ta, tb) = (transit_of(sa), transit_of(sb));
                if ta == tb {
                    // Up to the shared transit domain and back down.
                    return 2 * stub_transit_latency + intra_stub_latency / 2;
                }
                // Hop count around the transit ring (shortest direction).
                let n = *transit_domains;
                let d = ta.abs_diff(tb);
                let ring_hops = d.min(n - d).max(1) as u64;
                2 * stub_transit_latency + ring_hops * transit_transit_latency
            }
        }
    }

    /// Split `node_count` nodes into two sides along the topology's natural
    /// cut, for partition experiments: transit-stub topologies cut between
    /// transit domains (a realistic backbone failure), flat topologies use a
    /// seeded random bisection.  Deterministic for a given topology and seed.
    pub fn bisect(&self, node_count: usize) -> (Vec<NodeAddr>, Vec<NodeAddr>) {
        let mut side_a = Vec::new();
        let mut side_b = Vec::new();
        match &self.config {
            TopologyConfig::TransitStub {
                transit_domains,
                stubs_per_transit,
                ..
            } => {
                let td = (*transit_domains).max(1);
                let spt = (*stubs_per_transit).max(1);
                let total_stubs = (td * spt).max(1);
                let half = (td / 2).max(1);
                for i in 0..node_count {
                    let node = NodeAddr(i as u32);
                    let transit = ((i % total_stubs) / spt) % td;
                    if transit < half {
                        side_a.push(node);
                    } else {
                        side_b.push(node);
                    }
                }
            }
            _ => {
                let mut order: Vec<NodeAddr> =
                    (0..node_count).map(|i| NodeAddr(i as u32)).collect();
                let mut rng = self.node_rng(NodeAddr(0), 0x00B1_5EC7);
                rng.shuffle(&mut order);
                for (i, node) in order.into_iter().enumerate() {
                    if i < node_count / 2 {
                        side_a.push(node);
                    } else {
                        side_b.push(node);
                    }
                }
            }
        }
        // A bisection with an empty side is no partition at all; rebalance.
        if side_a.is_empty() || side_b.is_empty() {
            let mut all: Vec<NodeAddr> = side_a.into_iter().chain(side_b).collect();
            all.sort_unstable_by_key(|n| n.index());
            let mid = all.len() / 2;
            side_b = all.split_off(mid);
            side_a = all;
        }
        (side_a, side_b)
    }

    fn access_latency(&self, node: NodeAddr, lo: Duration, hi: Duration) -> Duration {
        if hi <= lo {
            return lo;
        }
        let mut rng = self.node_rng(node, 1);
        rng.range(lo, hi)
    }

    /// Access-link bandwidth of a node in bytes per second.
    pub fn bandwidth_bps(&self, node: NodeAddr) -> f64 {
        let (lo, hi) = match &self.config {
            TopologyConfig::Uniform { bandwidth_bps, .. } => (*bandwidth_bps, *bandwidth_bps),
            TopologyConfig::Star {
                min_bandwidth_bps,
                max_bandwidth_bps,
                ..
            }
            | TopologyConfig::TransitStub {
                min_bandwidth_bps,
                max_bandwidth_bps,
                ..
            } => (*min_bandwidth_bps, *max_bandwidth_bps),
        };
        if hi <= lo {
            return lo;
        }
        let mut rng = self.node_rng(node, 2);
        lo + rng.f64() * (hi - lo)
    }

    /// Transmission time for `bytes` over `node`'s access link, microseconds.
    pub fn transmit_time(&self, node: NodeAddr, bytes: usize) -> Duration {
        let bw = self.bandwidth_bps(node).max(1.0);
        ((bytes as f64 / bw) * 1_000_000.0).ceil() as Duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_latency_is_symmetric_and_zero_to_self() {
        let t = NetworkTopology::new(TopologyConfig::lan(), 1);
        let a = NodeAddr(0);
        let b = NodeAddr(5);
        assert_eq!(t.latency(a, a), 0);
        assert_eq!(t.latency(a, b), t.latency(b, a));
        assert_eq!(t.latency(a, b), MICROS_PER_MILLI);
    }

    #[test]
    fn star_latency_is_sum_of_access_latencies() {
        let cfg = TopologyConfig::Star {
            min_access_latency: 5_000,
            max_access_latency: 20_000,
            min_bandwidth_bps: 1e6,
            max_bandwidth_bps: 1e6,
        };
        let t = NetworkTopology::new(cfg, 7);
        let l_ab = t.latency(NodeAddr(1), NodeAddr(2));
        let l_ba = t.latency(NodeAddr(2), NodeAddr(1));
        assert_eq!(l_ab, l_ba);
        assert!((10_000..=40_000).contains(&l_ab), "latency {l_ab}");
        // Deterministic across topology instances with the same seed.
        let t2 = NetworkTopology::new(
            TopologyConfig::Star {
                min_access_latency: 5_000,
                max_access_latency: 20_000,
                min_bandwidth_bps: 1e6,
                max_bandwidth_bps: 1e6,
            },
            7,
        );
        assert_eq!(l_ab, t2.latency(NodeAddr(1), NodeAddr(2)));
    }

    #[test]
    fn transit_stub_distances_increase_with_domain_distance() {
        let t = NetworkTopology::new(TopologyConfig::internet_like(), 3);
        // Nodes 0 and 12 are in the same stub (12 stubs total).
        let same_stub = t.latency(NodeAddr(0), NodeAddr(12));
        // Nodes 0 and 1 are in different stubs.
        let diff_stub = t.latency(NodeAddr(0), NodeAddr(1));
        assert!(same_stub < diff_stub, "{same_stub} vs {diff_stub}");
    }

    #[test]
    fn bandwidth_within_configured_range() {
        let t = NetworkTopology::new(TopologyConfig::internet_like(), 11);
        for i in 0..50 {
            let bw = t.bandwidth_bps(NodeAddr(i));
            assert!(bw >= 128.0 * 1024.0 - 1.0);
            assert!(bw <= 1024.0 * 1024.0 + 1.0);
        }
    }

    #[test]
    fn transmit_time_scales_with_size() {
        let t = NetworkTopology::new(TopologyConfig::lan(), 5);
        let small = t.transmit_time(NodeAddr(0), 100);
        let big = t.transmit_time(NodeAddr(0), 100_000);
        assert!(big > small);
    }
}
