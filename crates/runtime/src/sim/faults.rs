//! Deterministic fault injection for the simulation environment.
//!
//! A [`FaultPlan`] is a *seeded schedule* of network and node faults that the
//! [`Simulator`](super::Simulator) consults on every send and every event
//! dispatch: probabilistic message loss, duplication and reordering windows,
//! per-link delay spikes, network partitions that heal, stalled
//! (alive-but-silent) nodes, and pre-drawn crash/restart storms.  Every random
//! decision comes from one [`Rng64`] stream owned by the plan, and every
//! schedule boundary is fixed at plan-build time, so two runs with the same
//! seed and the same plan replay **byte-for-byte** — the property the
//! equal-seed chaos trace test pins.
//!
//! Each fault the simulator actually applies is appended to the plan's
//! [`log`](FaultPlan::log) as a [`FaultRecord`].  The simulator forwards new
//! records to an optional *fault sink* callback, which the harness uses to
//! mirror injections into a node's telemetry hub (`fault.inject` /
//! `partition.heal` trace events) — and tests reconcile the telemetry stream
//! against the plan's own log.

use super::topology::NetworkTopology;
use crate::node::NodeAddr;
use crate::rng::Rng64;
use crate::time::{Duration, SimTime};

/// Half-open activity window `[start, end)` in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    start: SimTime,
    end: SimTime,
}

impl Span {
    fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

/// One fault the simulator applied, stamped with the virtual time it hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Virtual time at which the fault was injected.
    pub time: SimTime,
    /// What was injected.
    pub kind: FaultKind,
}

/// The kinds of fault the plan can inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// A message was dropped by the loss schedule.
    Loss { from: NodeAddr, to: NodeAddr },
    /// A message was delivered twice; the copy arrives `extra` later.
    Duplicate {
        from: NodeAddr,
        to: NodeAddr,
        extra: Duration,
    },
    /// A message was held back `extra` so later traffic can overtake it.
    Reorder {
        from: NodeAddr,
        to: NodeAddr,
        extra: Duration,
    },
    /// A per-link delay spike added `extra` to the delivery time.
    DelaySpike {
        from: NodeAddr,
        to: NodeAddr,
        extra: Duration,
    },
    /// A message crossed an active partition cut and was dropped.
    PartitionDrop { from: NodeAddr, to: NodeAddr },
    /// A scheduled partition became active.
    PartitionStart { id: u32 },
    /// A scheduled partition healed.
    PartitionHeal { id: u32 },
    /// A node fail-stopped (scheduled via `fail_node_at`).
    Crash { node: NodeAddr },
    /// A node restarted in place (scheduled via `restart_node_at`).
    Restart { node: NodeAddr },
    /// A node entered a stall: alive, but deferring every message and timer.
    StallStart { node: NodeAddr },
    /// A stalled node resumed; deferred events fire from here.
    StallEnd { node: NodeAddr },
}

impl FaultKind {
    /// Stable lowercase label for telemetry fields and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Loss { .. } => "loss",
            FaultKind::Duplicate { .. } => "duplicate",
            FaultKind::Reorder { .. } => "reorder",
            FaultKind::DelaySpike { .. } => "delay_spike",
            FaultKind::PartitionDrop { .. } => "partition_drop",
            FaultKind::PartitionStart { .. } => "partition_start",
            FaultKind::PartitionHeal { .. } => "partition_heal",
            FaultKind::Crash { .. } => "crash",
            FaultKind::Restart { .. } => "restart",
            FaultKind::StallStart { .. } => "stall_start",
            FaultKind::StallEnd { .. } => "stall_end",
        }
    }
}

/// Aggregate injection counts, handy for bench metrics and reconciliation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    pub losses: u64,
    pub duplicates: u64,
    pub reorders: u64,
    pub delay_spikes: u64,
    pub partition_drops: u64,
    pub partitions_started: u64,
    pub partitions_healed: u64,
    pub crashes: u64,
    pub restarts: u64,
    pub stalls: u64,
}

/// One pre-drawn crash (and optional restart) of a storm schedule.  The
/// simulator cannot construct a fresh program itself, so the harness reads
/// this schedule and arms `fail_node_at` / `restart_node_at` accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormEvent {
    pub node: NodeAddr,
    pub crash_at: SimTime,
    /// `None` means the node stays down for the rest of the run.
    pub restart_at: Option<SimTime>,
}

#[derive(Debug, Clone)]
struct RatePhase {
    at: Span,
    prob: f64,
}

#[derive(Debug, Clone)]
struct ReorderPhase {
    at: Span,
    prob: f64,
    max_extra: Duration,
}

#[derive(Debug, Clone)]
struct SpikePhase {
    at: Span,
    /// `None` applies the spike to every link.
    link: Option<(NodeAddr, NodeAddr)>,
    extra: Duration,
    /// Additional delay as a multiple of the link's base latency, so a spike
    /// scales with the topology (WAN links spike harder than LAN ones).
    latency_multiplier: f64,
}

#[derive(Debug, Clone)]
struct Partition {
    id: u32,
    at: Span,
    /// Sorted node list forming one side of the cut.
    side_a: Vec<NodeAddr>,
    started: bool,
    healed: bool,
}

#[derive(Debug, Clone)]
struct Stall {
    node: NodeAddr,
    at: Span,
    started: bool,
    ended: bool,
}

/// A seeded, replayable schedule of faults.  Build one with the `with_*`
/// methods and install it via `Simulator::set_fault_plan`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: Rng64,
    loss: Vec<RatePhase>,
    duplicate: Vec<RatePhase>,
    reorder: Vec<ReorderPhase>,
    spikes: Vec<SpikePhase>,
    partitions: Vec<Partition>,
    stalls: Vec<Stall>,
    storm: Vec<StormEvent>,
    log: Vec<FaultRecord>,
    counts: FaultCounts,
    cursor: usize,
}

impl FaultPlan {
    /// An empty plan drawing all probabilistic decisions from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rng: Rng64::new(seed),
            loss: Vec::new(),
            duplicate: Vec::new(),
            reorder: Vec::new(),
            spikes: Vec::new(),
            partitions: Vec::new(),
            stalls: Vec::new(),
            storm: Vec::new(),
            log: Vec::new(),
            counts: FaultCounts::default(),
            cursor: 0,
        }
    }

    /// Drop each message sent during `[start, end)` with probability `prob`.
    pub fn with_loss(mut self, start: SimTime, end: SimTime, prob: f64) -> Self {
        self.loss.push(RatePhase {
            at: Span { start, end },
            prob,
        });
        self
    }

    /// Deliver each message sent during `[start, end)` twice with
    /// probability `prob` (the copy arrives a little later).
    pub fn with_duplication(mut self, start: SimTime, end: SimTime, prob: f64) -> Self {
        self.duplicate.push(RatePhase {
            at: Span { start, end },
            prob,
        });
        self
    }

    /// Hold back each message sent during `[start, end)` with probability
    /// `prob` by up to `max_extra` µs, letting later traffic overtake it.
    pub fn with_reorder(
        mut self,
        start: SimTime,
        end: SimTime,
        prob: f64,
        max_extra: Duration,
    ) -> Self {
        self.reorder.push(ReorderPhase {
            at: Span { start, end },
            prob,
            max_extra,
        });
        self
    }

    /// Add a delay spike during `[start, end)`: `extra` µs plus
    /// `latency_multiplier` times the link's base latency, on one link
    /// (`Some((from, to))`) or every link (`None`).
    pub fn with_delay_spike(
        mut self,
        start: SimTime,
        end: SimTime,
        link: Option<(NodeAddr, NodeAddr)>,
        extra: Duration,
        latency_multiplier: f64,
    ) -> Self {
        self.spikes.push(SpikePhase {
            at: Span { start, end },
            link,
            extra,
            latency_multiplier,
        });
        self
    }

    /// Partition `side_a` from everyone else during `[start, heal)`.
    pub fn with_partition(
        mut self,
        start: SimTime,
        heal: SimTime,
        mut side_a: Vec<NodeAddr>,
    ) -> Self {
        side_a.sort_unstable_by_key(|n| n.index());
        side_a.dedup();
        let id = self.partitions.len() as u32;
        self.partitions.push(Partition {
            id,
            at: Span { start, end: heal },
            side_a,
            started: false,
            healed: false,
        });
        self
    }

    /// Stall `node` during `[start, end)`: it stays alive but every message
    /// and timer addressed to it is deferred until the stall ends.
    pub fn with_stall(mut self, node: NodeAddr, start: SimTime, end: SimTime) -> Self {
        self.stalls.push(Stall {
            node,
            at: Span { start, end },
            started: false,
            ended: false,
        });
        self
    }

    /// Add one explicit crash (and optional in-place restart) to the storm
    /// schedule.
    pub fn with_crash_restart(
        mut self,
        node: NodeAddr,
        crash_at: SimTime,
        restart_at: Option<SimTime>,
    ) -> Self {
        self.storm.push(StormEvent {
            node,
            crash_at,
            restart_at,
        });
        self.storm.sort_by_key(|e| (e.crash_at, e.node.index()));
        self
    }

    /// Pre-draw a crash/restart storm: `kills` victims chosen from `victims`
    /// crash at seeded times in `[start, end)` and restart after a seeded
    /// downtime in `[min_down, max_down)`.
    pub fn with_restart_storm(
        mut self,
        start: SimTime,
        end: SimTime,
        victims: &[NodeAddr],
        kills: usize,
        min_down: Duration,
        max_down: Duration,
    ) -> Self {
        assert!(end > start && !victims.is_empty());
        for _ in 0..kills {
            let node = *self.rng.choose(victims);
            let crash_at = start + self.rng.next_below(end - start);
            let down = min_down
                + self
                    .rng
                    .next_below(max_down.saturating_sub(min_down).max(1));
            self.storm.push(StormEvent {
                node,
                crash_at,
                restart_at: Some(crash_at + down),
            });
        }
        self.storm.sort_by_key(|e| (e.crash_at, e.node.index()));
        self
    }

    /// The pre-drawn crash/restart schedule, for the harness to arm.
    pub fn storm(&self) -> &[StormEvent] {
        &self.storm
    }

    /// Every fault injected so far, in injection order.
    pub fn log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// Aggregate counts over [`log`](Self::log).
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    fn record(&mut self, time: SimTime, kind: FaultKind) {
        match kind {
            FaultKind::Loss { .. } => self.counts.losses += 1,
            FaultKind::Duplicate { .. } => self.counts.duplicates += 1,
            FaultKind::Reorder { .. } => self.counts.reorders += 1,
            FaultKind::DelaySpike { .. } => self.counts.delay_spikes += 1,
            FaultKind::PartitionDrop { .. } => self.counts.partition_drops += 1,
            FaultKind::PartitionStart { .. } => self.counts.partitions_started += 1,
            FaultKind::PartitionHeal { .. } => self.counts.partitions_healed += 1,
            FaultKind::Crash { .. } => self.counts.crashes += 1,
            FaultKind::Restart { .. } => self.counts.restarts += 1,
            FaultKind::StallStart { .. } => self.counts.stalls += 1,
            FaultKind::StallEnd { .. } => {}
        }
        self.log.push(FaultRecord { time, kind });
    }

    /// Records appended since the last drain (the simulator forwards these to
    /// its fault sink).
    pub(super) fn drain_new(&mut self) -> Vec<FaultRecord> {
        let new = self.log[self.cursor..].to_vec();
        self.cursor = self.log.len();
        new
    }

    fn partition_separates(p: &Partition, from: NodeAddr, to: NodeAddr) -> bool {
        let a = p
            .side_a
            .binary_search_by_key(&from.index(), |n| n.index())
            .is_ok();
        let b = p
            .side_a
            .binary_search_by_key(&to.index(), |n| n.index())
            .is_ok();
        a != b
    }

    /// Whether an active partition currently separates `from` and `to`.
    pub fn is_partitioned(&self, now: SimTime, from: NodeAddr, to: NodeAddr) -> bool {
        self.partitions
            .iter()
            .any(|p| p.at.contains(now) && Self::partition_separates(p, from, to))
    }

    /// If `node` is stalled at `now`, the time the stall ends.
    pub fn stall_until(&self, node: NodeAddr, now: SimTime) -> Option<SimTime> {
        self.stalls
            .iter()
            .filter(|s| s.node == node && s.at.contains(now))
            .map(|s| s.at.end)
            .max()
    }

    /// Advance scheduled boundary records (partition start/heal, stall
    /// start/end) up to `now`.  Called by the simulator as the clock moves.
    pub(super) fn observe(&mut self, now: SimTime) {
        let mut due: Vec<(SimTime, FaultKind)> = Vec::new();
        for p in &mut self.partitions {
            if !p.started && now >= p.at.start {
                p.started = true;
                due.push((p.at.start, FaultKind::PartitionStart { id: p.id }));
            }
            if !p.healed && now >= p.at.end {
                p.healed = true;
                due.push((p.at.end, FaultKind::PartitionHeal { id: p.id }));
            }
        }
        for s in &mut self.stalls {
            if !s.started && now >= s.at.start {
                s.started = true;
                due.push((s.at.start, FaultKind::StallStart { node: s.node }));
            }
            if !s.ended && now >= s.at.end {
                s.ended = true;
                due.push((s.at.end, FaultKind::StallEnd { node: s.node }));
            }
        }
        due.sort_by_key(|(t, _)| *t);
        for (t, kind) in due {
            self.record(t, kind);
        }
    }

    /// Record a fail-stop the simulator just applied.
    pub(super) fn record_crash(&mut self, now: SimTime, node: NodeAddr) {
        self.record(now, FaultKind::Crash { node });
    }

    /// Record an in-place restart the simulator just applied.
    pub(super) fn record_restart(&mut self, now: SimTime, node: NodeAddr) {
        self.record(now, FaultKind::Restart { node });
    }

    /// Decide the fate of one message: the returned vector holds one entry of
    /// *extra delay* per copy to deliver — empty means the message is dropped.
    /// Loopback sends are never touched.
    pub(super) fn on_send(
        &mut self,
        now: SimTime,
        from: NodeAddr,
        to: NodeAddr,
        topo: &NetworkTopology,
    ) -> Vec<Duration> {
        if from == to {
            return vec![0];
        }
        if self.is_partitioned(now, from, to) {
            self.record(now, FaultKind::PartitionDrop { from, to });
            return Vec::new();
        }
        for i in 0..self.loss.len() {
            if self.loss[i].at.contains(now) {
                let p = self.loss[i].prob;
                if self.rng.chance(p) {
                    self.record(now, FaultKind::Loss { from, to });
                    return Vec::new();
                }
            }
        }
        let mut extra: Duration = 0;
        for i in 0..self.spikes.len() {
            let s = &self.spikes[i];
            let applies = s.at.contains(now) && s.link.is_none_or(|(f, t)| f == from && t == to);
            if applies {
                let add = s.extra + (s.latency_multiplier * topo.latency(from, to) as f64) as u64;
                extra += add;
                self.record(
                    now,
                    FaultKind::DelaySpike {
                        from,
                        to,
                        extra: add,
                    },
                );
            }
        }
        for i in 0..self.reorder.len() {
            if self.reorder[i].at.contains(now) {
                let (p, max_extra) = (self.reorder[i].prob, self.reorder[i].max_extra);
                if self.rng.chance(p) {
                    let add = 1 + self.rng.next_below(max_extra.max(1));
                    extra += add;
                    self.record(
                        now,
                        FaultKind::Reorder {
                            from,
                            to,
                            extra: add,
                        },
                    );
                }
            }
        }
        let mut copies = vec![extra];
        for i in 0..self.duplicate.len() {
            if self.duplicate[i].at.contains(now) {
                let p = self.duplicate[i].prob;
                if self.rng.chance(p) {
                    let add = extra + 1 + self.rng.next_below(5_000);
                    copies.push(add);
                    self.record(
                        now,
                        FaultKind::Duplicate {
                            from,
                            to,
                            extra: add,
                        },
                    );
                }
            }
        }
        copies
    }
}
