//! Congestion models for the Simulation Environment.
//!
//! The paper's simulator supports three congestion models (§3.1.4): *no
//! congestion*, *FIFO queuing* and *fair queuing*.  A congestion model
//! decides *when* a message handed to the network at time `t` is delivered,
//! given its size, the access-link bandwidths of the endpoints and the
//! propagation latency between them.
//!
//! The models operate at message granularity, like the paper's simulator:
//! each simulated "packet" is an entire application message.
//!
//! * [`CongestionKind::None`] — delivery after propagation latency plus a
//!   single transmission time; links never queue.
//! * [`CongestionKind::Fifo`] — each node's outbound and inbound access
//!   links serve messages one at a time in arrival order; a burst of large
//!   messages delays everything behind it.
//! * [`CongestionKind::FairQueue`] — the outbound link is shared between
//!   concurrently active destination flows in a processor-sharing
//!   approximation, so a short message to one destination is not stuck
//!   behind a long burst to another.

use crate::node::NodeAddr;
use crate::sim::topology::NetworkTopology;
use crate::time::{Duration, SimTime};
use std::collections::HashMap;

/// Which congestion model to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionKind {
    /// No queuing anywhere; messages only experience latency + transmission.
    None,
    /// FIFO queuing on each node's outbound and inbound access links.
    Fifo,
    /// Fair (processor-sharing) queuing on the outbound access link,
    /// FIFO on the inbound link.
    FairQueue,
}

/// Mutable queuing state maintained by the simulator across messages.
#[derive(Debug, Clone)]
pub struct CongestionState {
    kind: CongestionKind,
    /// FIFO: time until which a node's outbound link is busy.
    out_busy: HashMap<NodeAddr, SimTime>,
    /// FIFO: time until which a node's inbound link is busy.
    in_busy: HashMap<NodeAddr, SimTime>,
    /// Fair queuing: per-source map of destination flow -> finish time.
    flows: HashMap<NodeAddr, HashMap<NodeAddr, SimTime>>,
}

impl CongestionState {
    /// Create queuing state for the given model.
    pub fn new(kind: CongestionKind) -> Self {
        CongestionState {
            kind,
            out_busy: HashMap::new(),
            in_busy: HashMap::new(),
            flows: HashMap::new(),
        }
    }

    /// The model being simulated.
    pub fn kind(&self) -> CongestionKind {
        self.kind
    }

    /// Compute the delivery (arrival) time of a message of `bytes` bytes sent
    /// from `from` at time `now` to `to`, updating link state.
    pub fn delivery_time(
        &mut self,
        now: SimTime,
        from: NodeAddr,
        to: NodeAddr,
        bytes: usize,
        topo: &NetworkTopology,
    ) -> SimTime {
        let latency = topo.latency(from, to);
        if from == to {
            // Local loopback: deliver on the next scheduler tick.
            return now + 1;
        }
        match self.kind {
            CongestionKind::None => {
                let tx = topo.transmit_time(from, bytes);
                now + tx + latency
            }
            CongestionKind::Fifo => {
                let tx_out = topo.transmit_time(from, bytes);
                let out_start = (*self.out_busy.get(&from).unwrap_or(&0)).max(now);
                let out_done = out_start + tx_out;
                self.out_busy.insert(from, out_done);

                let tx_in = topo.transmit_time(to, bytes);
                let reach_receiver = out_done + latency;
                let in_start = (*self.in_busy.get(&to).unwrap_or(&0)).max(reach_receiver);
                let in_done = in_start + tx_in;
                self.in_busy.insert(to, in_done);
                in_done
            }
            CongestionKind::FairQueue => {
                let per_src = self.flows.entry(from).or_default();
                // Flows still transmitting share the outbound link equally.
                per_src.retain(|_, finish| *finish > now);
                let active = (per_src.len() + usize::from(!per_src.contains_key(&to))).max(1);
                let tx_out = topo.transmit_time(from, bytes) * active as Duration;
                let flow_start = (*per_src.get(&to).unwrap_or(&0)).max(now);
                let flow_done = flow_start + tx_out;
                per_src.insert(to, flow_done);

                let tx_in = topo.transmit_time(to, bytes);
                let reach_receiver = flow_done + latency;
                let in_start = (*self.in_busy.get(&to).unwrap_or(&0)).max(reach_receiver);
                let in_done = in_start + tx_in;
                self.in_busy.insert(to, in_done);
                in_done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::topology::TopologyConfig;

    fn topo() -> NetworkTopology {
        // 1 ms latency, 1 MB/s access links: a 1000-byte message takes ~1 ms
        // to transmit.
        NetworkTopology::new(
            TopologyConfig::Uniform {
                latency: 1_000,
                bandwidth_bps: 1_000_000.0,
            },
            1,
        )
    }

    #[test]
    fn no_congestion_ignores_history() {
        let t = topo();
        let mut c = CongestionState::new(CongestionKind::None);
        let a = c.delivery_time(0, NodeAddr(1), NodeAddr(2), 1000, &t);
        let b = c.delivery_time(0, NodeAddr(1), NodeAddr(2), 1000, &t);
        assert_eq!(
            a, b,
            "no-congestion deliveries don't queue behind each other"
        );
        assert_eq!(a, 1000 + 1000); // tx + latency
    }

    #[test]
    fn fifo_serialises_back_to_back_sends() {
        let t = topo();
        let mut c = CongestionState::new(CongestionKind::Fifo);
        let first = c.delivery_time(0, NodeAddr(1), NodeAddr(2), 1000, &t);
        let second = c.delivery_time(0, NodeAddr(1), NodeAddr(2), 1000, &t);
        assert!(second > first, "second message must queue behind the first");
        assert!(second >= first + 1000);
    }

    #[test]
    fn fifo_different_sources_do_not_queue_on_out_link() {
        let t = topo();
        let mut c = CongestionState::new(CongestionKind::Fifo);
        let a = c.delivery_time(0, NodeAddr(1), NodeAddr(3), 1000, &t);
        let b = c.delivery_time(0, NodeAddr(2), NodeAddr(4), 1000, &t);
        assert_eq!(a, b);
    }

    #[test]
    fn fair_queue_interleaves_flows() {
        let t = topo();
        // FIFO: the short message to node 3 waits for the huge burst to 2.
        let mut fifo = CongestionState::new(CongestionKind::Fifo);
        fifo.delivery_time(0, NodeAddr(1), NodeAddr(2), 1_000_000, &t);
        let fifo_short = fifo.delivery_time(0, NodeAddr(1), NodeAddr(3), 500, &t);

        // Fair queuing: the short flow shares the link rather than waiting
        // for the entire burst to finish.
        let mut fq = CongestionState::new(CongestionKind::FairQueue);
        fq.delivery_time(0, NodeAddr(1), NodeAddr(2), 1_000_000, &t);
        let fq_short = fq.delivery_time(0, NodeAddr(1), NodeAddr(3), 500, &t);

        assert!(
            fq_short < fifo_short,
            "fair queuing should deliver the short message earlier ({fq_short} vs {fifo_short})"
        );
    }

    #[test]
    fn loopback_is_immediate() {
        let t = topo();
        for kind in [
            CongestionKind::None,
            CongestionKind::Fifo,
            CongestionKind::FairQueue,
        ] {
            let mut c = CongestionState::new(kind);
            assert_eq!(
                c.delivery_time(10, NodeAddr(5), NodeAddr(5), 10_000, &t),
                11
            );
        }
    }

    #[test]
    fn inbound_link_limits_fan_in() {
        let t = topo();
        let mut c = CongestionState::new(CongestionKind::Fifo);
        // Many senders converge on node 9; deliveries must serialise at the
        // receiver's inbound link even though every outbound link is idle.
        let mut last = 0;
        for i in 0..5 {
            let d = c.delivery_time(0, NodeAddr(100 + i), NodeAddr(9), 1000, &t);
            assert!(d >= last);
            last = d;
        }
        assert!(last >= 5 * 1000, "five 1ms transmissions must serialise");
    }
}
