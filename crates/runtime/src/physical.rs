//! The Physical Runtime Environment (Figure 3 of the paper).
//!
//! In the real deployment each PIER node runs on its own machine with a
//! system clock, a main scheduler and an asynchronous I/O thread.  In this
//! reproduction the Physical Runtime Environment runs every node on its own
//! OS thread against the *real* clock, with an in-process channel per node
//! standing in for the UDP socket.  The important property is preserved:
//! the node program is byte-for-byte the same [`Program`] implementation the
//! discrete-event [`Simulator`](crate::sim::Simulator) executes, so behaviour
//! validated in simulation carries over (the paper's "native simulation"
//! argument, §3.1.2), which we verify in the `native_simulation` integration
//! test.
//!
//! The transport is reliable and ordered (an mpsc channel), which models a
//! well-behaved LAN; wide-area effects are the simulator's job.

use crate::metrics::NetStats;
use crate::node::{Action, Context, NodeAddr, Program, ProgramContext};
use crate::sim::SimOutput;
use crate::time::SimTime;
use crate::wire::WireSize;
use std::collections::BinaryHeap;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

enum Inbound<M> {
    Net { from: NodeAddr, msg: M },
    Stop,
}

struct TimerEntry<T> {
    fire_at: SimTime,
    seq: u64,
    timer: T,
}

impl<T> PartialEq for TimerEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.fire_at == other.fire_at && self.seq == other.seq
    }
}
impl<T> Eq for TimerEntry<T> {}
impl<T> PartialOrd for TimerEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for TimerEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap behaviour under BinaryHeap.
        other
            .fire_at
            .cmp(&self.fire_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The result of a completed physical run.
pub struct PhysicalRun<P: Program> {
    /// Client outputs produced by every node, in arrival order at the
    /// collector (times are microseconds since the run started).
    pub outputs: Vec<SimOutput<P::Out>>,
    /// Final program states, indexed by node address.
    pub programs: Vec<P>,
    /// Message/byte counters for the run.
    pub stats: NetStats,
}

/// Runs node programs on OS threads against the real clock.
pub struct PhysicalRuntime<P: Program> {
    programs: Vec<P>,
    header_overhead: usize,
}

impl<P: Program> Default for PhysicalRuntime<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Program> PhysicalRuntime<P> {
    /// Create an empty runtime.
    pub fn new() -> Self {
        PhysicalRuntime {
            programs: Vec::new(),
            header_overhead: 48,
        }
    }

    /// Register a node; it boots when [`run_for`](Self::run_for) is called.
    pub fn add_node(&mut self, program: P) -> NodeAddr {
        let addr = NodeAddr(self.programs.len() as u32);
        self.programs.push(program);
        addr
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.programs.len()
    }
}

impl<P> PhysicalRuntime<P>
where
    P: Program + Send + 'static,
    P::Msg: Send,
    P::Timer: Send,
    P::Out: Send,
{
    /// Boot every node, let the system run for `wall` of real time, then
    /// stop all nodes and collect their outputs and final states.
    pub fn run_for(self, wall: StdDuration) -> PhysicalRun<P> {
        let n = self.programs.len();
        let header_overhead = self.header_overhead;
        let epoch = Instant::now();
        let stats = Arc::new(Mutex::new(NetStats::new()));
        let (out_tx, out_rx) = mpsc::channel::<SimOutput<P::Out>>();

        // One inbox per node; the senders form the "network".
        let mut inboxes: Vec<Sender<Inbound<P::Msg>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Receiver<Inbound<P::Msg>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let network = Arc::new(inboxes);

        let mut handles: Vec<JoinHandle<(NodeAddr, P)>> = Vec::with_capacity(n);
        for (i, program) in self.programs.into_iter().enumerate() {
            let addr = NodeAddr(i as u32);
            let rx = receivers.remove(0);
            let network = Arc::clone(&network);
            let out_tx = out_tx.clone();
            let stats = Arc::clone(&stats);
            handles.push(std::thread::spawn(move || {
                node_thread(
                    addr,
                    program,
                    rx,
                    network,
                    out_tx,
                    stats,
                    epoch,
                    header_overhead,
                )
            }));
        }
        drop(out_tx);

        std::thread::sleep(wall);
        for tx in network.iter() {
            // A node that already exited has dropped its receiver; ignore.
            let _ = tx.send(Inbound::Stop);
        }

        let mut finished: Vec<(NodeAddr, P)> = handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        finished.sort_by_key(|(a, _)| *a);
        let programs = finished.into_iter().map(|(_, p)| p).collect();

        let outputs = out_rx.try_iter().collect();
        let stats = Arc::try_unwrap(stats).map_or_else(
            |arc| arc.lock().expect("stats poisoned").clone(),
            |m| m.into_inner().expect("stats poisoned"),
        );
        PhysicalRun {
            outputs,
            programs,
            stats,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn node_thread<P>(
    addr: NodeAddr,
    mut program: P,
    rx: Receiver<Inbound<P::Msg>>,
    network: Arc<Vec<Sender<Inbound<P::Msg>>>>,
    out_tx: Sender<SimOutput<P::Out>>,
    stats: Arc<Mutex<NetStats>>,
    epoch: Instant,
    header_overhead: usize,
) -> (NodeAddr, P)
where
    P: Program,
{
    let mut timers: BinaryHeap<TimerEntry<P::Timer>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let now_us = |epoch: &Instant| epoch.elapsed().as_micros() as SimTime;

    let apply = |program: &mut P,
                 timers: &mut BinaryHeap<TimerEntry<P::Timer>>,
                 seq: &mut u64,
                 f: &mut dyn FnMut(&mut P, &mut ProgramContext<P>)| {
        let now = now_us(&epoch);
        let mut ctx: ProgramContext<P> = Context::new(now, addr);
        f(program, &mut ctx);
        for action in ctx.into_actions() {
            match action {
                Action::Send { to, msg } => {
                    let bytes = msg.wire_size() + header_overhead;
                    stats
                        .lock()
                        .expect("stats poisoned")
                        .record_send(addr, to, bytes);
                    if let Some(tx) = network.get(to.index()) {
                        let _ = tx.send(Inbound::Net { from: addr, msg });
                    }
                }
                Action::SetTimer { delay, timer } => {
                    *seq += 1;
                    timers.push(TimerEntry {
                        fire_at: now + delay,
                        seq: *seq,
                        timer,
                    });
                }
                Action::Output(value) => {
                    let _ = out_tx.send(SimOutput {
                        time: now,
                        node: addr,
                        value,
                    });
                }
            }
        }
    };

    apply(&mut program, &mut timers, &mut seq, &mut |p, ctx| {
        p.on_start(ctx);
    });

    loop {
        // Fire any due timers first.
        loop {
            let due = matches!(timers.peek(), Some(t) if t.fire_at <= now_us(&epoch));
            if !due {
                break;
            }
            let entry = timers.pop().expect("peeked");
            let timer = entry.timer;
            apply(&mut program, &mut timers, &mut seq, &mut |p, ctx| {
                p.on_timer(ctx, timer.clone());
            });
        }
        let wait = match timers.peek() {
            Some(t) => {
                let now = now_us(&epoch);
                StdDuration::from_micros(t.fire_at.saturating_sub(now).max(100))
            }
            None => StdDuration::from_millis(20),
        };
        match rx.recv_timeout(wait) {
            Ok(Inbound::Net { from, msg }) => {
                apply(&mut program, &mut timers, &mut seq, &mut |p, ctx| {
                    p.on_message(ctx, from, msg.clone());
                });
            }
            Ok(Inbound::Stop) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    (addr, program)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong program: node 0 pings its peer every 5 ms, the peer echoes,
    /// and node 0 reports each echo.
    #[derive(Debug, Default)]
    struct PingPong {
        peer: Option<NodeAddr>,
        echoes: u32,
    }

    #[derive(Debug, Clone)]
    enum PpMsg {
        Ping,
        Pong,
    }
    impl WireSize for PpMsg {
        fn wire_size(&self) -> usize {
            4
        }
    }

    impl Program for PingPong {
        type Msg = PpMsg;
        type Timer = ();
        type Out = u32;

        fn on_start(&mut self, ctx: &mut ProgramContext<Self>) {
            if self.peer.is_some() {
                ctx.set_timer(5_000, ());
            }
        }

        fn on_message(&mut self, ctx: &mut ProgramContext<Self>, from: NodeAddr, msg: Self::Msg) {
            match msg {
                PpMsg::Ping => ctx.send(from, PpMsg::Pong),
                PpMsg::Pong => {
                    self.echoes += 1;
                    ctx.output(self.echoes);
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut ProgramContext<Self>, _timer: ()) {
            if let Some(peer) = self.peer {
                ctx.send(peer, PpMsg::Ping);
                ctx.set_timer(5_000, ());
            }
        }
    }

    #[test]
    fn physical_runtime_runs_the_same_programs() {
        let mut rt: PhysicalRuntime<PingPong> = PhysicalRuntime::new();
        let echoer = rt.add_node(PingPong::default());
        let _pinger = rt.add_node(PingPong {
            peer: Some(echoer),
            echoes: 0,
        });
        let run = rt.run_for(StdDuration::from_millis(120));
        assert!(
            !run.outputs.is_empty(),
            "pinger should have reported at least one echo"
        );
        assert!(run.programs[1].echoes >= 1);
        assert!(run.stats.total_msgs >= 2);
        // Outputs carry increasing echo counts.
        let counts: Vec<u32> = run
            .outputs
            .iter()
            .filter(|o| o.node == NodeAddr(1))
            .map(|o| o.value)
            .collect();
        for w in counts.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
