//! A tiny, dependency-free, deterministic re-implementation of the subset of
//! the `proptest` crate this workspace uses.
//!
//! The build environment has no access to a crate registry, so the real
//! `proptest` cannot be vendored.  Rather than losing the workspace's
//! property tests, this shim provides the same surface the tests are written
//! against — the [`proptest!`] macro, `prop_assert*` macros, integer/float
//! range strategies, `any::<T>()`, tuple strategies, a small regex-class
//! string strategy and the `collection::{vec, btree_set}` combinators —
//! backed by a seeded SplitMix64 generator so every run explores the same
//! (well-spread) sample of the input space.
//!
//! Differences from the real crate: no shrinking (failures report the case
//! number and seed instead) and sampling is plain uniform rather than
//! coverage-guided.  For the invariants tested here that trade-off is fine.

use std::collections::BTreeSet;
use std::ops::Range;

/// A failed or rejected test case, carried out of the test closure.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded generator; the same seed yields the same case sequence.
    pub fn new(seed: u64) -> Self {
        TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator (the shim's analogue of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// String strategy from a small regex subset: literal characters, one-level
/// character classes `[a-z0-9_]` and `{m,n}` repetition of the previous
/// unit.  Enough for patterns like `"[a-z]{1,12}"`.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        // The last generated "unit": either a literal or a class alphabet.
        let mut last_unit: Vec<char> = Vec::new();
        while i < chars.len() {
            match chars[i] {
                '[' => {
                    let mut alphabet = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            for c in lo..=hi {
                                alphabet.push(c);
                            }
                            i += 3;
                        } else {
                            alphabet.push(chars[i]);
                            i += 1;
                        }
                    }
                    i += 1; // skip ']'
                    if alphabet.is_empty() {
                        alphabet.push('?');
                    }
                    let c = alphabet[rng.below(alphabet.len() as u64) as usize];
                    out.push(c);
                    last_unit = alphabet;
                }
                '{' => {
                    let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                    let Some(close) = close else { break };
                    let body: String = chars[i + 1..close].iter().collect();
                    let (lo, hi) = match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse::<usize>().unwrap_or(0),
                            b.trim().parse::<usize>().unwrap_or(1),
                        ),
                        None => {
                            let n = body.trim().parse::<usize>().unwrap_or(1);
                            (n, n)
                        }
                    };
                    let n = lo + rng.below((hi.saturating_sub(lo) as u64) + 1) as usize;
                    // One repetition already emitted when the unit was read.
                    let emitted = 1usize;
                    if n == 0 {
                        out.pop();
                    } else if !last_unit.is_empty() {
                        for _ in emitted..n {
                            let c = last_unit[rng.below(last_unit.len() as u64) as usize];
                            out.push(c);
                        }
                    }
                    i = close + 1;
                }
                c => {
                    out.push(c);
                    last_unit = vec![c];
                    i += 1;
                }
            }
        }
        out
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a full-range uniform generator.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, well-spread values; full bit patterns would mostly be
            // astronomically large magnitudes and NaNs.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `proptest::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end.saturating_sub(self.len.start)).max(1);
            let n = self.len.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates shrink the set, as in
    /// the real crate.
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end.saturating_sub(self.len.start)).max(1);
            let n = self.len.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S: Strategy>(element: S, len: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, len }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Case-count override from the `PROPTEST_CASES` environment variable, read
/// once per test.  Lets CI run the same property suites at nightly depth
/// (e.g. `PROPTEST_CASES=1024`) without touching per-test configs; unset or
/// unparsable values leave the configured count in force.
pub fn env_case_override() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

/// FNV-1a over a test's name, used to give every test its own seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Reject the current case (skips to the next one).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Like `assert!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Like `assert_ne!`, but reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    (
        cfg = $cfg:expr;
        $(#[$attr:meta])*
        fn $name:ident($($params:tt)*) $body:block
    ) => {
        $(#[$attr])*
        fn $name() {
            let mut config: $crate::ProptestConfig = $cfg;
            if let ::core::option::Option::Some(cases) = $crate::env_case_override() {
                config.cases = cases;
            }
            let seed = $crate::seed_from_name(stringify!($name));
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..config.cases {
                $crate::__proptest_bind!(rng, $($params)*);
                let result: ::core::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {case} (seed {seed:#x}): {e}",
                        stringify!($name)
                    );
                }
            }
        }
    };
}

// Samples every parameter's strategy in order, binding each to a local so
// the test body (run in an immediately-invoked closure) sees typed values.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name: $ty =
            $crate::Strategy::sample(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        #[allow(unused_mut)]
        let mut $name: $ty =
            $crate::Strategy::sample(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
}

/// The `proptest! { ... }` block: expands each contained `#[test] fn` into a
/// plain test that runs the body over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )*
    ) => {
        $(
            $crate::__proptest_case! {
                cfg = $cfg;
                $(#[$attr])*
                fn $name($($params)*) $body
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )*
    ) => {
        $(
            $crate::__proptest_case! {
                cfg = $crate::ProptestConfig::default();
                $(#[$attr])*
                fn $name($($params)*) $body
            }
        )*
    };
}

// Keep BTreeSet in scope for doc examples / future strategies.
#[allow(unused_imports)]
use BTreeSet as _BTreeSetUsed;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_set_lengths_respect_ranges(
            v in prop::collection::vec(0u64..10, 2..6),
            s in prop::collection::btree_set(0u64..1000, 0..8),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(s.len() < 8);
        }

        #[test]
        fn typed_params_sample_any(a: u64, b: u64) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn regex_subset_generates_matching_strings(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
