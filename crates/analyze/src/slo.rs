//! [`SloAdmission`]: the admission-control layer over the static cost model.
//!
//! The proxy consults this before disseminating a plan.  Each tenant's
//! *predicted* spend — rows per window per node, state bytes per node,
//! `PutBatch` entries per flush, root fan-in — accumulates against its
//! [`SloBudget`] while its queries stand, and a new plan is:
//!
//! * **admitted** when its predicted cost fits the remaining budget,
//! * **shed to sampling** when a sampling modulus exists that scales the
//!   rate-proportional costs into the remaining budget (standing windowed
//!   plans only, and never share-eligible ones — a sampled member would
//!   distort the group's shared store),
//! * **rejected** otherwise, or whenever the verdict is
//!   [`Boundedness::Unbounded`] (or conditionally bounded while the
//!   tenant's budget forbids assumption-backed bounds).
//!
//! Share-group charging: under shared execution the group's aggregate cost
//! is charged to the member that *drives* it (the first admitted member);
//! follow-on members ride at marginal (zero) cost, and when the driver ends
//! the charge migrates to the next surviving member's tenant.

use crate::cost::{analyze, Boundedness, CostReport};
use pier_core::admission::{
    AdmissionControl, AdmissionDecision, AdmissionVerdict, SloBudget, SloPolicy,
};
use pier_core::plan::QueryPlan;
use pier_telemetry::Telemetry;
use std::collections::BTreeMap;

/// Largest sampling modulus shed-to-sampling will derive; a plan needing a
/// thinner stream than 1-in-1024 is rejected instead of admitted as noise.
const MAX_SAMPLE_EVERY: u64 = 1024;

/// A tenant's predicted spend across its standing queries (the unit-less
/// counterparts of the [`SloBudget`] ceilings).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Spend {
    rows: u64,
    state_bytes: u64,
    entries: u64,
    fan_in: u64,
}

impl Spend {
    fn of(report: &CostReport, sample_every: u64) -> Spend {
        let scale = sample_every.max(1);
        Spend {
            rows: report.rows_per_window_per_node.div_ceil(scale),
            state_bytes: report.state_bytes_per_node.div_ceil(scale),
            entries: report.entries_per_flush_per_node.div_ceil(scale),
            // Fan-in is topological: sampling does not reduce the number of
            // senders converging on the root.
            fan_in: report.root_fan_in,
        }
    }

    fn add(&mut self, other: Spend) {
        self.rows = self.rows.saturating_add(other.rows);
        self.state_bytes = self.state_bytes.saturating_add(other.state_bytes);
        self.entries = self.entries.saturating_add(other.entries);
        self.fan_in = self.fan_in.saturating_add(other.fan_in);
    }

    fn sub(&mut self, other: Spend) {
        self.rows = self.rows.saturating_sub(other.rows);
        self.state_bytes = self.state_bytes.saturating_sub(other.state_bytes);
        self.entries = self.entries.saturating_sub(other.entries);
        self.fan_in = self.fan_in.saturating_sub(other.fan_in);
    }

    fn fits(&self, extra: Spend, budget: &SloBudget) -> bool {
        self.rows.saturating_add(extra.rows) <= budget.max_rows_per_window_per_node
            && self.state_bytes.saturating_add(extra.state_bytes) <= budget.max_state_bytes_per_node
            && self.entries.saturating_add(extra.entries) <= budget.max_entries_per_flush
            && self.fan_in.saturating_add(extra.fan_in) <= budget.max_root_fan_in
    }
}

/// What one admitted query is currently charged, so `release` can refund it.
#[derive(Debug, Clone, Copy)]
struct Charge {
    tenant: u64,
    spend: Spend,
    fingerprint: Option<u64>,
}

/// State of one share group the admission layer knows about.
#[derive(Debug, Clone)]
struct GroupState {
    /// The group's full (undiscounted) spend, charged to the driver.
    full: Spend,
    /// Member query ids in admission order; the first is the driver.
    members: Vec<u64>,
}

/// The default [`AdmissionControl`] implementation: static analysis plus
/// per-tenant SLO budget accounting.  Construct through
/// [`admission_factory`] in [`pier_core::node::PierConfig::admission`].
#[derive(Debug, Default)]
pub struct SloAdmission {
    policy: SloPolicy,
    tel: Option<Telemetry>,
    spend: BTreeMap<u64, Spend>,
    charges: BTreeMap<u64, Charge>,
    groups: BTreeMap<u64, GroupState>,
}

/// Factory for [`pier_core::node::PierConfig::admission`].
pub fn admission_factory() -> Box<dyn AdmissionControl + Send> {
    Box::<SloAdmission>::default()
}

impl SloAdmission {
    /// Analyze a plan under the configured environment model without
    /// touching any budget (the read-only entry point for tools/benches).
    pub fn inspect(&self, plan: &QueryPlan) -> CostReport {
        analyze(plan, &self.policy.env)
    }

    /// The report wrapped in the decision envelope the executor surfaces.
    fn envelope(decision: &str, sample_every: u64, report: &CostReport) -> String {
        format!(
            "{{\"decision\":\"{decision}\",\"sample_every\":{sample_every},\"report\":{}}}",
            report.to_json()
        )
    }

    /// Smallest sampling modulus that scales the rate-proportional costs of
    /// `report` into the tenant's remaining budget, if one exists.
    fn sampling_rate(spent: &Spend, budget: &SloBudget, report: &CostReport) -> Option<u64> {
        // Fan-in does not scale with sampling: if it alone overflows, no
        // modulus helps.
        if spent.fan_in.saturating_add(report.root_fan_in) > budget.max_root_fan_in {
            return None;
        }
        let need = |cost: u64, ceiling: u64, used: u64| -> Option<u64> {
            let remaining = ceiling.saturating_sub(used);
            if remaining == 0 {
                return None;
            }
            Some(cost.div_ceil(remaining))
        };
        let s = need(
            report.rows_per_window_per_node,
            budget.max_rows_per_window_per_node,
            spent.rows,
        )?
        .max(need(
            report.state_bytes_per_node,
            budget.max_state_bytes_per_node,
            spent.state_bytes,
        )?)
        .max(need(
            report.entries_per_flush_per_node,
            budget.max_entries_per_flush,
            spent.entries,
        )?)
        .max(2);
        (s <= MAX_SAMPLE_EVERY).then_some(s)
    }
}

impl AdmissionControl for SloAdmission {
    fn configure(&mut self, policy: &SloPolicy) {
        self.policy = policy.clone();
    }

    fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = Some(tel.clone());
    }

    fn assess(&mut self, plan: &QueryPlan) -> AdmissionDecision {
        let report = analyze(plan, &self.policy.env);
        let budget = self.policy.budget_for(plan.tenant);

        // Unconditional structural rejections first.
        if let Boundedness::Unbounded { reason } = &report.boundedness {
            return AdmissionDecision {
                verdict: AdmissionVerdict::Reject {
                    reason: reason.clone(),
                },
                report: Self::envelope("reject", plan.sample_every.into(), &report),
            };
        }
        if !budget.allow_conditional {
            if let Boundedness::ConditionallyBounded { .. } = &report.boundedness {
                return AdmissionDecision {
                    verdict: AdmissionVerdict::Reject {
                        reason: "bound rests on environment assumptions and the tenant's \
                                 budget forbids assumption-backed bounds"
                            .to_string(),
                    },
                    report: Self::envelope("reject", plan.sample_every.into(), &report),
                };
            }
        }

        // Share-group marginal charging: a follow-on member of a group this
        // proxy already drives rides at marginal cost and is admitted as-is
        // (sampling a member would distort the shared store).
        let sharable = self.policy.shared_execution && report.share_eligible;
        if sharable {
            if let Some(fp) = report.fingerprint {
                if let Some(group) = self.groups.get_mut(&fp) {
                    group.members.push(plan.query_id);
                    self.charges.insert(
                        plan.query_id,
                        Charge {
                            tenant: plan.tenant,
                            spend: Spend::default(),
                            fingerprint: Some(fp),
                        },
                    );
                    return AdmissionDecision {
                        verdict: AdmissionVerdict::Admit,
                        report: Self::envelope("admit", 1, &report),
                    };
                }
            }
        }

        let cost = Spend::of(&report, 1);
        let spent = self.spend.entry(plan.tenant).or_default();
        if spent.fits(cost, &budget) {
            spent.add(cost);
            self.charges.insert(
                plan.query_id,
                Charge {
                    tenant: plan.tenant,
                    spend: cost,
                    fingerprint: sharable.then_some(report.fingerprint).flatten(),
                },
            );
            if sharable {
                if let Some(fp) = report.fingerprint {
                    self.groups.insert(
                        fp,
                        GroupState {
                            full: cost,
                            members: vec![plan.query_id],
                        },
                    );
                }
            }
            return AdmissionDecision {
                verdict: AdmissionVerdict::Admit,
                report: Self::envelope("admit", 1, &report),
            };
        }

        // Over budget: shed to sampling when allowed and the plan tolerates
        // it — a standing windowed, non-share-eligible plan.
        let standing_windowed = report.window_size_us > 0;
        if budget.shed_to_sampling && standing_windowed && !sharable {
            if let Some(s) = Self::sampling_rate(spent, &budget, &report) {
                let scaled = Spend::of(&report, s);
                if spent.fits(scaled, &budget) {
                    spent.add(scaled);
                    self.charges.insert(
                        plan.query_id,
                        Charge {
                            tenant: plan.tenant,
                            spend: scaled,
                            fingerprint: None,
                        },
                    );
                    return AdmissionDecision {
                        verdict: AdmissionVerdict::Shed {
                            sample_every: u32::try_from(s).unwrap_or(u32::MAX),
                        },
                        report: Self::envelope("shed", s, &report),
                    };
                }
            }
        }

        AdmissionDecision {
            verdict: AdmissionVerdict::Reject {
                reason: format!(
                    "tenant {} over SLO budget: predicted rows/window/node {} \
                     (spent {}/{}), state bytes {} (spent {}/{}), entries/flush {} \
                     (spent {}/{})",
                    plan.tenant,
                    report.rows_per_window_per_node,
                    spent.rows,
                    budget.max_rows_per_window_per_node,
                    report.state_bytes_per_node,
                    spent.state_bytes,
                    budget.max_state_bytes_per_node,
                    report.entries_per_flush_per_node,
                    spent.entries,
                    budget.max_entries_per_flush,
                ),
            },
            report: Self::envelope("reject", plan.sample_every.into(), &report),
        }
    }

    fn release(&mut self, query_id: u64) {
        let Some(charge) = self.charges.remove(&query_id) else {
            return;
        };
        if let Some(entry) = self.spend.get_mut(&charge.tenant) {
            entry.sub(charge.spend);
        }
        // Share-group driver handoff: when the driver ends while members
        // survive, the group's full cost migrates to the next member's
        // tenant (re-assessed bookkeeping, not re-dissemination).
        let Some(fp) = charge.fingerprint else {
            return;
        };
        let Some(group) = self.groups.get_mut(&fp) else {
            return;
        };
        group.members.retain(|&id| id != query_id);
        if group.members.is_empty() {
            self.groups.remove(&fp);
            return;
        }
        let was_driver = charge.spend != Spend::default();
        if was_driver {
            let full = group.full;
            let next = group.members[0];
            if let Some(next_charge) = self.charges.get_mut(&next) {
                next_charge.spend = full;
                next_charge.fingerprint = Some(fp);
                self.spend.entry(next_charge.tenant).or_default().add(full);
            }
        }
    }

    fn admitted(&self) -> usize {
        self.charges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_core::admission::EnvModel;
    use pier_core::sqlish;
    use pier_runtime::NodeAddr;

    fn windowed_plan(tenant: u64, pred: &str) -> QueryPlan {
        let sql = format!(
            "SELECT src, COUNT(*) FROM packets {pred} GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s"
        );
        let mut plan = sqlish::compile(&sql, NodeAddr(1), 30_000_000).expect("compiles");
        plan.tenant = tenant;
        plan.query_id = tenant * 100 + 1;
        plan
    }

    fn layer(policy: SloPolicy) -> SloAdmission {
        let mut l = SloAdmission::default();
        l.configure(&policy);
        l
    }

    #[test]
    fn admits_within_budget_and_releases() {
        let mut l = layer(SloPolicy::default());
        let plan = windowed_plan(1, "");
        let d = l.assess(&plan);
        assert!(matches!(d.verdict, AdmissionVerdict::Admit));
        assert!(d.report.contains("\"decision\":\"admit\""));
        assert_eq!(l.admitted(), 1);
        l.release(plan.query_id);
        assert_eq!(l.admitted(), 0);
        assert_eq!(
            l.spend.get(&1).copied().unwrap_or_default(),
            Spend::default()
        );
    }

    #[test]
    fn rejects_unbounded() {
        let mut l = layer(SloPolicy::default());
        let mut plan =
            sqlish::compile("SELECT file FROM files WHERE size > 10", NodeAddr(1), 1_000).unwrap();
        plan.continuous = true;
        let d = l.assess(&plan);
        assert!(matches!(d.verdict, AdmissionVerdict::Reject { .. }));
        assert!(d.report.contains("\"verdict\":\"unbounded\""));
        assert_eq!(l.admitted(), 0);
    }

    #[test]
    fn sheds_to_sampling_when_over_budget() {
        let mut policy = SloPolicy::default();
        // Rows/window/node for 2s window at 16 ev/s is 32: a ceiling of 8
        // forces 1-in-4 sampling.
        policy.default_budget.max_rows_per_window_per_node = 8;
        let mut l = layer(policy);
        let plan = windowed_plan(3, "");
        let d = l.assess(&plan);
        match d.verdict {
            AdmissionVerdict::Shed { sample_every } => assert!(sample_every >= 4),
            other => panic!("expected shed, got {other:?}"),
        }
        assert!(d.report.contains("\"decision\":\"shed\""));
    }

    #[test]
    fn rejects_when_sampling_cannot_fit() {
        let mut policy = SloPolicy::default();
        policy.default_budget.max_rows_per_window_per_node = 0;
        let mut l = layer(policy);
        let d = l.assess(&windowed_plan(4, ""));
        assert!(matches!(d.verdict, AdmissionVerdict::Reject { .. }));
    }

    #[test]
    fn tenants_are_isolated() {
        let mut policy = SloPolicy::default();
        policy.default_budget.max_rows_per_window_per_node = 40;
        let mut l = layer(policy);
        let mut first = windowed_plan(1, "");
        first.query_id = 11;
        let mut second_same_tenant = windowed_plan(1, "");
        second_same_tenant.query_id = 12;
        let mut other_tenant = windowed_plan(2, "");
        other_tenant.query_id = 21;
        assert!(matches!(l.assess(&first).verdict, AdmissionVerdict::Admit));
        // Tenant 1 is now over (32 + 32 > 40): shed or reject, not admit.
        assert!(!matches!(
            l.assess(&second_same_tenant).verdict,
            AdmissionVerdict::Admit
        ));
        // Tenant 2 is untouched.
        assert!(matches!(
            l.assess(&other_tenant).verdict,
            AdmissionVerdict::Admit
        ));
    }

    #[test]
    fn share_group_followers_ride_marginal_and_charge_migrates() {
        let mut policy = SloPolicy {
            shared_execution: true,
            ..SloPolicy::default()
        };
        // Budget fits exactly one full charge per tenant.
        policy.default_budget.max_rows_per_window_per_node = 40;
        let mut l = layer(policy);
        let mut driver = windowed_plan(1, "");
        driver.query_id = 1;
        let mut follower = windowed_plan(2, "");
        follower.query_id = 2;
        assert!(matches!(l.assess(&driver).verdict, AdmissionVerdict::Admit));
        // Identical share-eligible plan from another tenant: marginal admit.
        assert!(matches!(
            l.assess(&follower).verdict,
            AdmissionVerdict::Admit
        ));
        assert_eq!(
            l.spend.get(&2).copied().unwrap_or_default(),
            Spend::default()
        );
        // Driver ends: the full charge migrates to the follower's tenant.
        l.release(1);
        assert!(l.spend.get(&1).copied().unwrap_or_default() == Spend::default());
        assert!(l.spend.get(&2).copied().unwrap_or_default().rows > 0);
        l.release(2);
        assert_eq!(
            l.spend.get(&2).copied().unwrap_or_default(),
            Spend::default()
        );
        assert!(l.groups.is_empty());
    }

    #[test]
    fn share_eligible_plans_are_never_shed() {
        let mut policy = SloPolicy {
            shared_execution: true,
            ..SloPolicy::default()
        };
        policy.default_budget.max_rows_per_window_per_node = 8;
        let mut l = layer(policy);
        let d = l.assess(&windowed_plan(1, ""));
        assert!(matches!(d.verdict, AdmissionVerdict::Reject { .. }));
    }

    #[test]
    fn inspect_is_read_only() {
        let l = layer(SloPolicy {
            env: EnvModel::default(),
            ..SloPolicy::default()
        });
        let before = l.admitted();
        let _ = l.inspect(&windowed_plan(9, ""));
        assert_eq!(l.admitted(), before);
    }
}
