//! # pier-analyze — static plan cost/boundedness analysis
//!
//! PIQL (PAPERS.md) argues that for "success-tolerant" Internet-scale
//! applications, query cost must be a *predeclared contract*: only queries
//! whose operation count is provably bounded before execution are admitted.
//! This crate brings that discipline to PIER: [`analyze`] walks a compiled
//! [`QueryPlan`] — its opgraphs, sinks, compiled predicate atoms and (via
//! `pier-mqo`) share-group fingerprint — and derives, **without executing
//! anything**, a [`CostReport`]: rows touched per window per node, worst-case
//! `WindowStore` state bytes, `PutBatch` entries per flush, DHT hops, root
//! fan-in, and a [`Boundedness`] verdict.
//!
//! [`SloAdmission`] implements the executor's
//! [`pier_core::admission::AdmissionControl`] seam over those reports: each
//! tenant's predicted spend accumulates against its
//! [`SloBudget`](pier_core::admission::SloBudget), and a submitted plan is
//! admitted, degraded to a sampled plan (shed-to-sampling), or rejected with
//! the machine-readable report.  Share-eligible plans are charged to the
//! group member that *drives* the group — follow-on members ride at marginal
//! cost, and the charge migrates when the driver ends.
//!
//! Every estimate is an **upper bound** under the declared
//! [`EnvModel`](pier_core::admission::EnvModel): the admission soundness
//! suite (`tests/admission_soundness.rs` at the workspace root) checks the
//! static figures against measured telemetry counters for the netmon,
//! many-tenants and chaos workloads.  See `docs/ANALYSIS.md` for the cost
//! model and the report schema.

pub mod cost;
pub mod slo;

pub use cost::{analyze, Boundedness, CostReport};
pub use slo::{admission_factory, SloAdmission};

pub use pier_core::admission::{
    AdmissionControl, AdmissionDecision, AdmissionFactory, AdmissionVerdict, EnvModel, SloBudget,
    SloPolicy,
};
pub use pier_core::plan::QueryPlan;
