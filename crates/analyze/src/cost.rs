//! The static cost model: from a compiled plan to a [`CostReport`].
//!
//! Everything here is a *worst-case upper bound* under the declared
//! [`EnvModel`]: the analyzer never samples, never executes, and never
//! assumes a value distribution.  Predicate atoms are used only where they
//! yield bounds that hold for **any** distribution — an equality constraint
//! on a grouping column pins that column to one group; a selectivity guess
//! for an equality over a skewed stream would not be sound, so rows-touched
//! is bounded by the full stream rate.

use pier_core::admission::EnvModel;
use pier_core::expr::{CmpOp, Expr};
use pier_core::plan::{Dissemination, OpGraph, OperatorSpec, QueryPlan, SinkSpec};
use std::collections::BTreeSet;

/// Whether a query's resource usage is provably finite, and on what grounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Boundedness {
    /// Finite and *enforced*: the engine itself caps the figure (a window
    /// plus its [`pier_cq::CqBudget`], or a one-shot timeout over derived
    /// data).  `bound` is worst-case rows touched per window per node.
    Bounded {
        /// Worst-case rows touched per window per node.
        bound: u64,
    },
    /// Finite only under the [`EnvModel`] assumptions listed (table sizes,
    /// distinct-value counts, stream rates) — nothing in the engine enforces
    /// them.
    ConditionallyBounded {
        /// Bound on rows touched per node under the assumptions.
        bound: u64,
        /// The assumptions the bound rests on.
        assumptions: Vec<String>,
    },
    /// No finite bound exists: a standing query whose state or output grows
    /// with the stream.
    Unbounded {
        /// Why (e.g. "continuous join with no window on either side").
        reason: String,
    },
}

impl Boundedness {
    /// Stable lower-case tag used in the JSON report.
    pub fn tag(&self) -> &'static str {
        match self {
            Boundedness::Bounded { .. } => "bounded",
            Boundedness::ConditionallyBounded { .. } => "conditionally_bounded",
            Boundedness::Unbounded { .. } => "unbounded",
        }
    }
}

/// The static cost report for one query: every figure is a worst-case
/// prediction per the [`EnvModel`], derived before execution.  Serialized
/// with [`CostReport::to_json`] (schema in `docs/ANALYSIS.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Query id (0 when analyzed before the proxy assigned one).
    pub query_id: u64,
    /// Tenant the plan bills to.
    pub tenant: u64,
    /// The verdict.
    pub boundedness: Boundedness,
    /// Nodes the dissemination strategy installs the plan at.
    pub nodes_reached: u64,
    /// Messages one dissemination round costs.
    pub dissemination_msgs: u64,
    /// Overlay hops per DHT operation (the static one-hop ring).
    pub dht_hops: u64,
    /// Worst-case source rows touched per window per node (per run for a
    /// one-shot plan).
    pub rows_per_window_per_node: u64,
    /// Worst-case groups resident per window (equality-constrained group
    /// columns count one value each).
    pub groups_per_window: u64,
    /// Worst-case `WindowStore` bytes resident per node, both stores
    /// (ingest + root), all concurrently open windows.
    pub state_bytes_per_node: u64,
    /// Worst-case `PutBatch` entries shipped per flush per node (a closed
    /// window's group partials; the batched rehash path for joins).
    pub entries_per_flush_per_node: u64,
    /// Worst-case senders converging on the query's root/proxy per flush.
    pub root_fan_in: u64,
    /// Window length in microseconds (0 for non-windowed plans).
    pub window_size_us: u64,
    /// Window slide in microseconds (0 for non-windowed plans).
    pub window_slide_us: u64,
    /// Windows every event falls into (1 for non-windowed plans).
    pub windows_per_event: u64,
    /// The plan normalizes into a `pier-mqo` share group.
    pub share_eligible: bool,
    /// The share-group fingerprint, when eligible.
    pub fingerprint: Option<u64>,
    /// Assumptions the figures rest on (echoed from the verdict plus
    /// env-model facts, human-readable).
    pub assumptions: Vec<String>,
}

impl CostReport {
    /// The report as one JSON object (hand-rolled; the workspace carries no
    /// serde).  Keys are stable — CI and the soundness tests parse this.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        push_kv_u64(&mut out, "query_id", self.query_id);
        push_kv_u64(&mut out, "tenant", self.tenant);
        push_kv_str(&mut out, "verdict", self.boundedness.tag());
        match &self.boundedness {
            Boundedness::Bounded { bound } => push_kv_u64(&mut out, "bound", *bound),
            Boundedness::ConditionallyBounded { bound, .. } => {
                push_kv_u64(&mut out, "bound", *bound);
            }
            Boundedness::Unbounded { reason } => push_kv_str(&mut out, "reason", reason),
        }
        push_kv_u64(&mut out, "nodes_reached", self.nodes_reached);
        push_kv_u64(&mut out, "dissemination_msgs", self.dissemination_msgs);
        push_kv_u64(&mut out, "dht_hops", self.dht_hops);
        push_kv_u64(
            &mut out,
            "rows_per_window_per_node",
            self.rows_per_window_per_node,
        );
        push_kv_u64(&mut out, "groups_per_window", self.groups_per_window);
        push_kv_u64(&mut out, "state_bytes_per_node", self.state_bytes_per_node);
        push_kv_u64(
            &mut out,
            "entries_per_flush_per_node",
            self.entries_per_flush_per_node,
        );
        push_kv_u64(&mut out, "root_fan_in", self.root_fan_in);
        push_kv_u64(&mut out, "window_size_us", self.window_size_us);
        push_kv_u64(&mut out, "window_slide_us", self.window_slide_us);
        push_kv_u64(&mut out, "windows_per_event", self.windows_per_event);
        out.push_str("\"share_eligible\":");
        out.push_str(if self.share_eligible { "true" } else { "false" });
        out.push(',');
        if let Some(fp) = self.fingerprint {
            out.push_str(&format!("\"fingerprint\":\"{fp:016x}\","));
        }
        out.push_str("\"assumptions\":[");
        for (i, a) in self.assumptions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, a);
            out.push('"');
        }
        out.push_str("]}");
        out
    }
}

fn push_kv_u64(out: &mut String, key: &str, v: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
    out.push(',');
}

fn push_kv_str(out: &mut String, key: &str, v: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    escape_into(out, v);
    out.push_str("\",");
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Fixed overhead charged per resident hash-map entry (bucket + string
/// header), mirroring `WindowStore::approx_state_bytes`.
const ENTRY_OVERHEAD: u64 = 48;
/// Charged per open window (container headers, stats).
const WINDOW_OVERHEAD: u64 = 256;
/// Bytes charged per aggregate's partial state (`AggState` wire sizes top
/// out at 17 for AVG; 32 leaves headroom for MIN/MAX over strings).
const AGG_STATE_BYTES: u64 = 32;

/// Walk the top-level conjunction of `expr`, recording columns pinned by an
/// equality atom (`col = const` or `const = col`).  Only conjuncts count:
/// an equality under OR/NOT pins nothing.
fn eq_constrained_columns(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::And(l, r) => {
            eq_constrained_columns(l, out);
            eq_constrained_columns(r, out);
        }
        Expr::Cmp(CmpOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Column(c), Expr::Const(_)) | (Expr::Const(_), Expr::Column(c)) => {
                out.insert(c.clone());
            }
            _ => {}
        },
        _ => {}
    }
}

/// Columns pinned to a single value by every `Selection`/`Eddy` conjunct of
/// the opgraph (an eddy's predicates are commutative conjuncts by
/// construction).
fn pinned_columns(graph: &OpGraph) -> BTreeSet<String> {
    let mut pinned = BTreeSet::new();
    for op in &graph.ops {
        match op {
            OperatorSpec::Selection(p) => eq_constrained_columns(p, &mut pinned),
            OperatorSpec::Eddy { predicates, .. } => {
                for (_, p) in predicates {
                    eq_constrained_columns(p, &mut pinned);
                }
            }
            _ => {}
        }
    }
    pinned
}

/// True when the opgraph contains duplicate elimination (unbounded state
/// over an unbounded stream).
fn has_distinct(graph: &OpGraph) -> bool {
    graph
        .ops
        .iter()
        .any(|op| matches!(op, OperatorSpec::Distinct(_)))
}

/// Derive the static [`CostReport`] for `plan` under `env`.  Total, never
/// errors: every plan the executor accepts gets a verdict (unknown shapes
/// degrade to conservative figures, not panics).
pub fn analyze(plan: &QueryPlan, env: &EnvModel) -> CostReport {
    let (nodes_reached, dissemination_msgs) = match &plan.dissemination {
        Dissemination::Broadcast => (env.nodes.max(1), env.nodes.max(1)),
        Dissemination::ByKey { .. } => (1, 1),
        Dissemination::ByRange { bucket_keys, .. } => {
            let n = (bucket_keys.len() as u64).clamp(1, env.nodes.max(1));
            (n, bucket_keys.len() as u64)
        }
        Dissemination::Local => (1, 0),
    };

    let share = pier_mqo::fingerprint::normalize(plan);
    let share_eligible = share.is_some();
    let fingerprint = share.as_ref().map(|c| c.fingerprint);

    let mut assumptions = vec![
        format!("events_per_node_per_sec<={}", env.events_per_node_per_sec),
        format!("bytes_per_value<={}", env.bytes_per_value),
    ];

    // The plan's dominant sink decides the shape of the bound: a windowed
    // sink is engine-enforced finite, a one-shot scan is finite under the
    // table-size assumption, and anything standing without a window is not.
    let windowed = plan.windowed_sink().map(|(i, _)| i);
    let continuous = plan.continuous || plan.cq.is_some();

    let mut rows_per_window_per_node: u64 = 0;
    let mut groups_per_window: u64 = 1;
    let mut state_bytes_per_node: u64 = 0;
    let mut entries_per_flush_per_node: u64 = 0;
    let mut root_fan_in: u64 = 1;
    let mut window_size_us: u64 = 0;
    let mut window_slide_us: u64 = 0;
    let mut windows_per_event: u64 = 1;
    let mut unbounded_reason: Option<String> = None;
    let mut conditional = false;

    for graph in &plan.opgraphs {
        let pinned = pinned_columns(graph);
        match &graph.sink {
            SinkSpec::WindowedAgg {
                window,
                group_cols,
                aggs,
                dedup_cols,
                ..
            } => {
                let budget = plan.cq.map(|c| c.budget).unwrap_or_default();
                window_size_us = window.size;
                window_slide_us = window.slide;
                windows_per_event = window.windows_per_event().max(1);
                // Rows *touched* per window per node: the full stream rate
                // over the window — selection selectivity is distributional
                // and therefore not a sound discount.  Rows *retained* are
                // additionally capped by the enforced per-window budget.
                let raw_rows = window
                    .size
                    .div_ceil(1_000_000)
                    .saturating_mul(env.events_per_node_per_sec);
                let retained = raw_rows.min(budget.max_tuples_per_window);
                rows_per_window_per_node = rows_per_window_per_node.max(raw_rows);
                // Groups: every equality-pinned group column contributes one
                // value; a free column contributes at most the distinct-value
                // assumption; the enforced budget caps the product either way.
                let mut groups: u64 = 1;
                let mut distributional = false;
                for col in group_cols {
                    if !pinned.contains(col) {
                        groups = groups.saturating_mul(env.distinct_values.max(1));
                        distributional = true;
                    }
                }
                groups = groups
                    .min(retained)
                    .min(u64::from(budget.max_groups_per_window))
                    .max(1);
                if distributional {
                    assumptions.push(format!(
                        "free group columns capped by enforced max_groups_per_window={}",
                        budget.max_groups_per_window
                    ));
                }
                groups_per_window = groups_per_window.max(groups);
                // State: both stores (ingest + root), every concurrently
                // open window at the enforced cap, every group resident,
                // plus the window-scoped dedup set when configured.
                let open = u64::from(budget.max_open_windows).max(1);
                let group_bytes = ENTRY_OVERHEAD
                    + env
                        .bytes_per_value
                        .saturating_mul(group_cols.len() as u64 + 1)
                    + AGG_STATE_BYTES.saturating_mul(aggs.len().max(1) as u64);
                let dedup_bytes = if dedup_cols.is_empty() {
                    0
                } else {
                    retained.saturating_mul(
                        ENTRY_OVERHEAD + env.bytes_per_value * dedup_cols.len() as u64,
                    )
                };
                let per_window = groups.saturating_mul(group_bytes) + dedup_bytes + WINDOW_OVERHEAD;
                state_bytes_per_node =
                    state_bytes_per_node.max(2 * open.saturating_mul(per_window));
                // Each closed window ships its groups as one batch toward
                // the root; the root absorbs one such batch per sender.
                entries_per_flush_per_node = entries_per_flush_per_node.max(groups);
                root_fan_in = root_fan_in.max(nodes_reached);
            }
            SinkSpec::HierarchicalAgg {
                group_cols, aggs, ..
            } => {
                let rows = env.table_rows_per_node.max(1);
                rows_per_window_per_node = rows_per_window_per_node.max(rows);
                let mut groups: u64 = 1;
                for col in group_cols {
                    if !pinned.contains(col) {
                        groups = groups.saturating_mul(env.distinct_values.max(1));
                    }
                }
                groups = groups.min(rows).max(1);
                groups_per_window = groups_per_window.max(groups);
                let group_bytes = ENTRY_OVERHEAD
                    + env
                        .bytes_per_value
                        .saturating_mul(group_cols.len() as u64 + 1)
                    + AGG_STATE_BYTES.saturating_mul(aggs.len().max(1) as u64);
                state_bytes_per_node = state_bytes_per_node.max(groups.saturating_mul(group_bytes));
                entries_per_flush_per_node = entries_per_flush_per_node.max(groups);
                root_fan_in = root_fan_in.max(nodes_reached);
                conditional = true;
                assumptions.push(format!(
                    "one-shot scan of <={} stored rows per node",
                    env.table_rows_per_node
                ));
                assumptions.push(format!(
                    "free group columns assume <={} distinct values",
                    env.distinct_values
                ));
                if continuous {
                    unbounded_reason.get_or_insert_with(|| {
                        "standing aggregation with no window: group state and \
                         partial volume grow with the stream"
                            .to_string()
                    });
                }
            }
            SinkSpec::ToProxy | SinkSpec::Rehash { .. } => {
                let rows = env.table_rows_per_node.max(1);
                rows_per_window_per_node = rows_per_window_per_node.max(rows);
                // A join buffers both inputs in the symmetric-hash state; a
                // one-shot scan only streams through.
                if graph.join.is_some() {
                    state_bytes_per_node = state_bytes_per_node
                        .max(rows.saturating_mul(ENTRY_OVERHEAD + 4 * env.bytes_per_value));
                }
                if matches!(graph.sink, SinkSpec::Rehash { .. }) {
                    entries_per_flush_per_node = entries_per_flush_per_node.max(rows);
                } else {
                    root_fan_in = root_fan_in.max(nodes_reached);
                }
                conditional = true;
                assumptions.push(format!(
                    "one-shot scan of <={} stored rows per node",
                    env.table_rows_per_node
                ));
                if continuous {
                    let reason = if graph.join.is_some() {
                        "continuous join with no window on either side: \
                         symmetric-hash state grows with the stream"
                    } else if has_distinct(graph) {
                        "duplicate elimination over an unbounded stream: \
                         the seen-set grows with the stream"
                    } else {
                        "standing query with no window: output and operator \
                         state grow with the stream"
                    };
                    unbounded_reason.get_or_insert_with(|| reason.to_string());
                }
            }
        }
        // Distinct over a continuous stream is unbounded regardless of sink
        // unless a window scopes the seen-set.
        if continuous && windowed != Some(graph_index(plan, graph)) && has_distinct(graph) {
            unbounded_reason.get_or_insert_with(|| {
                "duplicate elimination over an unbounded stream: the seen-set \
                 grows with the stream"
                    .to_string()
            });
        }
    }

    // A standing plan with no windowed sink at all is unbounded even when
    // the loop above found no specific culprit (e.g. empty opgraph list
    // never happens, but a continuous ToProxy select does).
    if continuous && windowed.is_none() {
        unbounded_reason.get_or_insert_with(|| {
            "standing query with no window: output and operator state grow \
             with the stream"
                .to_string()
        });
    }

    // A windowed sink makes the plan engine-bounded: the window plus its
    // CqBudget cap rows, groups and open windows, so no standing-state
    // reason found above survives.
    if windowed.is_some() {
        unbounded_reason = None;
    }

    let boundedness = if let Some(reason) = unbounded_reason {
        Boundedness::Unbounded { reason }
    } else if windowed.is_some() && !conditional {
        Boundedness::Bounded {
            bound: rows_per_window_per_node,
        }
    } else {
        Boundedness::ConditionallyBounded {
            bound: rows_per_window_per_node,
            assumptions: assumptions.clone(),
        }
    };

    CostReport {
        query_id: plan.query_id,
        tenant: plan.tenant,
        boundedness,
        nodes_reached,
        dissemination_msgs,
        dht_hops: 1, // the static one-hop ring
        rows_per_window_per_node,
        groups_per_window,
        state_bytes_per_node,
        entries_per_flush_per_node,
        root_fan_in,
        window_size_us,
        window_slide_us,
        windows_per_event,
        share_eligible,
        fingerprint,
        assumptions,
    }
}

/// Index of `graph` within the plan (pointer identity fallback to 0).
fn graph_index(plan: &QueryPlan, graph: &OpGraph) -> usize {
    plan.opgraphs
        .iter()
        .position(|g| std::ptr::eq(g, graph))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_core::sqlish;
    use pier_runtime::NodeAddr;

    fn compile(sql: &str) -> QueryPlan {
        sqlish::compile(sql, NodeAddr(1), 30_000_000).expect("compiles")
    }

    #[test]
    fn windowed_group_count_is_bounded() {
        let plan = compile("SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 2s SLIDE 1s");
        let report = analyze(&plan, &EnvModel::default());
        assert!(matches!(report.boundedness, Boundedness::Bounded { .. }));
        assert!(report.rows_per_window_per_node > 0);
        assert!(report.groups_per_window >= 1);
        assert!(report.state_bytes_per_node > 0);
        assert!(report.share_eligible);
        assert!(report.fingerprint.is_some());
    }

    #[test]
    fn equality_pinned_group_column_counts_one_group() {
        let plan = compile(
            "SELECT src, COUNT(*) FROM packets WHERE src = 'a' GROUP BY src WINDOW 2s SLIDE 1s",
        );
        let report = analyze(&plan, &EnvModel::default());
        assert_eq!(report.groups_per_window, 1);
    }

    #[test]
    fn one_shot_aggregate_is_conditionally_bounded() {
        let plan = compile("SELECT src, COUNT(*) FROM events GROUP BY src TOP 10 BY count");
        let report = analyze(&plan, &EnvModel::default());
        match &report.boundedness {
            Boundedness::ConditionallyBounded { assumptions, .. } => {
                assert!(!assumptions.is_empty());
            }
            other => panic!("expected conditional, got {other:?}"),
        }
    }

    #[test]
    fn one_shot_select_is_conditionally_bounded_and_bykey_reaches_one_node() {
        let plan = compile("SELECT file FROM files WHERE keyword = 'rock'");
        let report = analyze(&plan, &EnvModel::default());
        assert!(matches!(
            report.boundedness,
            Boundedness::ConditionallyBounded { .. }
        ));
        assert_eq!(report.nodes_reached, 1);
    }

    #[test]
    fn continuous_plan_without_window_is_unbounded() {
        let mut plan = compile("SELECT file FROM files WHERE size > 10");
        plan.continuous = true;
        let report = analyze(&plan, &EnvModel::default());
        assert!(matches!(report.boundedness, Boundedness::Unbounded { .. }));
    }

    #[test]
    fn report_json_is_parseable_shape() {
        let plan = compile("SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 2s SLIDE 1s");
        let json = analyze(&plan, &EnvModel::default()).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"verdict\":\"bounded\""));
        assert!(json.contains("\"rows_per_window_per_node\":"));
        assert!(json.contains("\"fingerprint\":\""));
    }
}
