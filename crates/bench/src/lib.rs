//! Support library for the PIER benchmark harness (see `benches/`).
