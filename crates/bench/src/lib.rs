//! Support library for the PIER benchmark harness (see `benches/`).

/// Print one machine-readable metric line:
/// `{"bench": "...", "metric": "...", "value": ...}`.
///
/// Every bench binary emits its headline numbers through this so the perf
/// trajectory can be tracked across PRs by grepping bench output for lines
/// starting with `{"bench"` (see `BENCH_dht_ops.json` for a recorded
/// baseline).  Values are finite floats; metric names carry their unit as a
/// suffix (`_ns_per_op`, `_msgs`, `_secs`, …).
pub fn emit_metric(bench: &str, metric: &str, value: f64) {
    println!("{{\"bench\": \"{bench}\", \"metric\": \"{metric}\", \"value\": {value}}}");
}

/// Turn a free-form label ("flat mode", "kill 5, join 3") into a metric-name
/// segment: lowercase alphanumerics with single underscores.
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    out.trim_end_matches('_').to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn emit_metric_does_not_panic() {
        super::emit_metric("smoke", "noop_count", 1.0);
    }

    #[test]
    fn slug_flattens_labels() {
        assert_eq!(super::slug("churn (kill 5, join 3)"), "churn_kill_5_join_3");
        assert_eq!(super::slug("Fetch-Matches"), "fetch_matches");
    }
}
