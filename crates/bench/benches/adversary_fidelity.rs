//! EXP-I — result fidelity under an adversary (§4.1.1/§4.1.2): relative
//! result error and suppressed-source fraction for the undefended
//! aggregation tree vs the redundancy defenses, plus the spot-checking
//! detection-rate study.
//!
//! Run with `cargo bench -p pier-bench --bench adversary_fidelity`.

use pier_bench::{emit_metric, slug};
use pier_harness::robustness::{fidelity_sweep, spot_check_detection};
use pier_security::adversary::Malice;

fn main() {
    println!("# EXP-I — aggregation fidelity under a suppression adversary (200 members)");
    println!("# compromised  strategy             suppressed  rel_error  bytes");
    let fractions = [0.0, 0.05, 0.10, 0.20, 0.30];
    for row in fidelity_sweep(200, 10, &fractions, Malice::Suppress, 20, 77) {
        println!(
            "{:>11.0}%  {:<20} {:>9.3} {:>10.3} {:>8}",
            row.compromised_fraction * 100.0,
            row.strategy,
            row.suppressed_fraction,
            row.relative_error,
            row.bytes_shipped
        );
        if (row.compromised_fraction - 0.30).abs() < 1e-9 {
            emit_metric(
                "adversary_fidelity",
                &format!("rel_error_{}_30pct", slug(&row.strategy)),
                row.relative_error,
            );
        }
    }
    println!();
    println!("# EXP-I (poisoning variant): 10% compromised nodes inject 1000 bogus units each");
    for row in fidelity_sweep(200, 10, &[0.10], Malice::Poison { units: 1_000 }, 20, 77) {
        println!(
            "{:>11.0}%  {:<20} {:>9.3} {:>10.3} {:>8}",
            row.compromised_fraction * 100.0,
            row.strategy,
            row.suppressed_fraction,
            row.relative_error,
            row.bytes_shipped
        );
    }
    println!();
    println!("# EXP-I (spot checking): detection rate vs sample size, 20% of inputs suppressed");
    println!("# sample_size  detection_rate  predicted");
    for row in spot_check_detection(200, 0.20, &[1, 2, 4, 8, 16, 32], 200, 5) {
        println!(
            "{:>11} {:>15.2} {:>10.2}",
            row.sample_size, row.detection_rate, row.predicted_rate
        );
        if row.sample_size == 32 {
            emit_metric(
                "adversary_fidelity",
                "spot_check_detection_s32",
                row.detection_rate,
            );
        }
    }
}
