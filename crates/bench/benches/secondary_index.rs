//! EXP-J — secondary indexes (§3.3.3): an equality lookup on a
//! non-partitioning column answered by a broadcast scan of the base table vs
//! by the secondary-index semi-join (index partition → Fetch Matches into
//! the base table).
//!
//! Run with `cargo bench -p pier-bench --bench secondary_index`.

use pier_bench::{emit_metric, slug};
use pier_harness::indexes::secondary_index_lookup;

fn main() {
    println!("# EXP-J — secondary-index semi-join vs broadcast scan");
    println!("# nodes  strategy          messages  nodes_running_query  results");
    for nodes in [32, 64, 128] {
        for row in secondary_index_lookup(nodes, 300, 12, 21) {
            println!(
                "{:>6}  {:<16} {:>9} {:>19} {:>8}",
                row.nodes, row.strategy, row.messages, row.nodes_running_query, row.results
            );
            if nodes == 128 {
                emit_metric(
                    "secondary_index",
                    &format!("messages_{}_128", slug(&row.strategy)),
                    row.messages as f64,
                );
            }
        }
    }
}
