//! EXP-D — DHT routing scalability: mean and tail lookup hop counts as the
//! network grows (§3.2.2: per-operation overheads grow logarithmically).
//!
//! Run with `cargo bench -p pier-bench --bench dht_scalability`.

use pier_bench::emit_metric;
use pier_harness::experiments::dht_scalability;

fn main() {
    println!("# EXP-D — DHT lookup hop counts vs network size");
    println!("# nodes   mean_hops   p95_hops");
    for nodes in [16, 32, 64, 128, 256, 512, 1024] {
        let row = dht_scalability(nodes, 200, 13);
        println!(
            "{:>6}   {:>9.2}   {:>8.2}",
            row.nodes, row.mean_hops, row.p95_hops
        );
        if nodes == 1024 {
            emit_metric("dht_scalability", "mean_hops_1024", row.mean_hops);
            emit_metric("dht_scalability", "p95_hops_1024", row.p95_hops);
        }
    }
}
