//! EXP-A — join-strategy ablation (§3.3.4 and [32]): Symmetric Hash join via
//! DHT rehash vs Fetch Matches (distributed index) join: result counts,
//! bytes shipped, first-result latency.
//!
//! Run with `cargo bench -p pier-bench --bench join_strategies`.

use pier_bench::{emit_metric, slug};
use pier_harness::experiments::join_strategies;

fn main() {
    println!("# EXP-A — join strategies, 32 nodes");
    println!("# strategy          results      bytes    first_result_s");
    for row in join_strategies(32, 600, 17) {
        println!(
            "{:<18} {:>8} {:>10} {:>12}",
            row.strategy,
            row.results,
            row.bytes,
            row.first_result_secs
                .map_or_else(|| "-".into(), |s| format!("{s:.2}"))
        );
        emit_metric(
            "join_strategies",
            &format!("bytes_{}", slug(&row.strategy)),
            row.bytes as f64,
        );
        emit_metric(
            "join_strategies",
            &format!("results_{}", slug(&row.strategy)),
            row.results as f64,
        );
    }
}
