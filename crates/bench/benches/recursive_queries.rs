//! EXP-K — recursive reachability queries evaluated as rounds of distributed
//! index joins (§3.3.2, declarative-routing workload).
//!
//! Run with `cargo bench -p pier-bench --bench recursive_queries`.

use pier_bench::emit_metric;
use pier_harness::recursion::distributed_reachability;

fn main() {
    println!("# EXP-K — distributed reachability (semi-naive rounds of Fetch Matches joins)");
    println!("# pier_nodes  graph_nodes  edges  reached  rounds  messages  matches_reference");
    for (pier_nodes, graph_nodes, degree) in [(16, 30, 2), (32, 60, 2), (32, 60, 3)] {
        let r = distributed_reachability(pier_nodes, graph_nodes, degree, 5);
        println!(
            "{:>11} {:>12} {:>6} {:>8} {:>7} {:>9} {:>18}",
            r.nodes,
            graph_nodes,
            r.edges,
            r.reached_distributed,
            r.rounds,
            r.messages,
            r.matches_reference
        );
        emit_metric(
            "recursive_queries",
            &format!("messages_{pier_nodes}n_{graph_nodes}g_{degree}d"),
            r.messages as f64,
        );
    }
}
