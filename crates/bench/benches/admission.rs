//! Admission benchmark: the cost of a static admission decision and the
//! accuracy of shed-mode (sampled) results against full-rate ground truth.
//!
//! Two halves:
//!
//! * **Decision latency** — compile representative plans once, then time
//!   `analyze()` alone and the full `assess()`/`release()` round-trip of
//!   the SLO admission layer.  Admission runs synchronously on the submit
//!   path, so this is the per-query latency tax every standing query pays
//!   before dissemination.
//! * **Shed accuracy** — run `many_tenants` at full rate for ground truth,
//!   then again under per-tenant budgets that force 1-in-4 sampling; scale
//!   the sampled per-window counts back up by the modulus and report the
//!   mean relative error.  This is the price of the graceful-degradation
//!   path, measured, not assumed.

use std::time::Instant;

use pier_analyze::{admission_factory, analyze, EnvModel};
use pier_bench::emit_metric;
use pier_core::admission::SloPolicy;
use pier_core::{sqlish, Value};
use pier_harness::{many_tenants, ManyTenantsConfig};
use pier_runtime::NodeAddr;

/// Smoke mode (`PIER_BENCH_SMOKE=1`, used by CI) shrinks iteration counts
/// and the cluster while still emitting every metric line.
fn smoke() -> bool {
    std::env::var_os("PIER_BENCH_SMOKE").is_some()
}

fn main() {
    println!("# admission: static decision latency and shed-mode accuracy");

    // ---- decision latency -------------------------------------------
    let sqls = [
        // The netmon standing aggregate: full group fan-in.
        "SELECT src, COUNT(*) FROM packets GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s",
        // A pinned tenant query: one group, share-eligible.
        "SELECT src, COUNT(*) FROM packets WHERE src = '10.0.0.1' \
         GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s",
        // A one-shot filter scan: conditionally bounded.
        "SELECT src FROM packets WHERE len > 100",
    ];
    let plans: Vec<_> = sqls
        .iter()
        .enumerate()
        .map(|(i, sql)| {
            let mut p = sqlish::compile(sql, NodeAddr(0), 60_000_000).expect("query compiles");
            p.query_id = i as u64 + 1;
            p.tenant = i as u64;
            p
        })
        .collect();

    let iters: u64 = if smoke() { 2_000 } else { 50_000 };
    let env = EnvModel::default();
    let mut sink = 0u64;

    let t0 = Instant::now();
    for i in 0..iters {
        let r = analyze(&plans[(i % plans.len() as u64) as usize], &env);
        sink = sink.wrapping_add(r.state_bytes_per_node);
    }
    let analyze_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    let mut layer = admission_factory();
    layer.configure(&SloPolicy::default());
    let t0 = Instant::now();
    for i in 0..iters {
        let plan = &plans[(i % plans.len() as u64) as usize];
        let d = layer.assess(plan);
        sink = sink.wrapping_add(d.report.len() as u64);
        layer.release(plan.query_id);
    }
    let decision_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    println!(
        "admission_latency               analyze {analyze_ns:>8.1} ns   \
         assess+release {decision_ns:>8.1} ns   (sink {sink})"
    );
    emit_metric("admission", "analyze_ns_per_query", analyze_ns);
    emit_metric("admission", "decision_ns_per_query", decision_ns);

    // ---- shed-mode accuracy -----------------------------------------
    let (nodes, tenants, secs) = if smoke() { (6, 3, 12) } else { (8, 4, 20) };
    let mk = |budget_rows: Option<u64>| {
        let mut cfg = ManyTenantsConfig::new(nodes, tenants, secs, 17);
        cfg.sharing = false;
        cfg.pier.admission = Some(admission_factory);
        if let Some(rows) = budget_rows {
            cfg.pier.slo.default_budget.max_rows_per_window_per_node = rows;
        }
        cfg
    };
    let truth = many_tenants(&mk(None));
    // A ceiling of 8 rows/window/node against the declared 32 forces a
    // 1-in-4 sampling modulus on every tenant.
    let shed = many_tenants(&mk(Some(8)));

    let window_count = |rows: &[pier_core::Tuple]| -> i64 {
        rows.iter()
            .filter_map(|t| t.get("count").and_then(Value::as_i64))
            .sum()
    };
    let mut errs: Vec<f64> = Vec::new();
    let mut modulus = 0u32;
    for (full, sampled) in truth.tenants.iter().zip(&shed.tenants) {
        let m = sampled.admission.as_ref().map_or(1, |a| a.sample_every);
        assert!(m >= 2, "the tight budget must force sampling, got {m}");
        modulus = modulus.max(m);
        for (span, rows) in &full.windows {
            let true_count = window_count(rows);
            if true_count == 0 {
                continue;
            }
            let est = sampled
                .windows
                .get(span)
                .map_or(0, |rows| window_count(rows))
                * i64::from(m);
            errs.push((est - true_count).abs() as f64 / true_count as f64);
        }
    }
    assert!(
        !errs.is_empty(),
        "shed run must overlap ground-truth windows"
    );
    let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
    // Sampling is an estimator, not a guess: the scaled counts must stay in
    // the right ballpark even on the smoke cluster.
    assert!(
        mean_err < 0.75,
        "shed-mode mean relative error {mean_err:.3} out of range"
    );

    println!(
        "admission_shed                  modulus {modulus}   windows {}   \
         mean rel error {mean_err:>6.4}",
        errs.len()
    );
    emit_metric("admission", "shed_sample_every", f64::from(modulus));
    emit_metric("admission", "shed_windows_compared", errs.len() as f64);
    emit_metric("admission", "shed_mean_rel_error", mean_err);
}
