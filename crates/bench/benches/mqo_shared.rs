//! Multi-query sharing benchmark (`pier-mqo`): N constant-varied standing
//! queries executed shared vs independent.
//!
//! Two levels:
//!
//! 1. **Predicate-index micro-benchmark** — the per-chunk fan-out cost of
//!    64 constant-varied predicates: independent execution evaluates each
//!    member's compiled predicate over the chunk (64 column scans per
//!    chunk); the shared [`PredicateIndex`] answers all 64 members with one
//!    hash-kernel scan per referenced column.  The counting allocator
//!    additionally reports allocations per scanned row on the shared path.
//! 2. **`many_tenants` end-to-end** — 64 constant-varied continuous
//!    queries over a live simulated cluster, run through share groups and
//!    independently from the same seed: aggregate ingest throughput
//!    (rows per wall-clock second) and delivered network traffic.
//!
//! Emits the standard JSON metric lines; `BENCH_mqo_shared.json` records a
//! baseline (see `docs/BENCHMARKS.md`).  The ≥2x shared-vs-independent
//! throughput acceptance bar is asserted in-bench, so CI's smoke run fails
//! if sharing regresses below it.

// The counting allocator below is the one justified unsafe block in the
// workspace: it delegates to the system allocator verbatim and only bumps
// a relaxed counter, so the alloc/dealloc contracts are inherited.
#![allow(unsafe_code)]

use pier_bench::emit_metric;
use pier_core::{CompiledPredicate, Expr, Tuple, TupleBatch, Value};
use pier_harness::tenants::{many_tenants, ManyTenantsConfig};
use pier_mqo::PredicateIndex;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Smoke mode (`PIER_BENCH_SMOKE=1`, used by CI) shrinks iteration counts
/// and the cluster run while still emitting every metric line and running
/// every assertion — including the ≥2x sharing bar.
fn smoke() -> bool {
    std::env::var_os("PIER_BENCH_SMOKE").is_some()
}

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    println!("# multi-query sharing: 64 constant-varied queries, shared vs independent");
    let tenants = 64usize;

    // ---- predicate-index micro-benchmark --------------------------------
    let rows: Vec<Tuple> = (0..1024i64)
        .map(|i| {
            Tuple::new(
                "packets",
                vec![
                    (
                        "src",
                        Value::Str(format!("10.0.{}.{}", (i / 256) % 4, i % 256).into()),
                    ),
                    ("port", Value::Int(i % 1024)),
                    ("len", Value::Int(40 + i % 1400)),
                ],
            )
        })
        .collect();
    let batch = TupleBatch::new(rows);
    let chunk = &batch.chunks()[0];
    let predicates: Vec<Expr> = (0..tenants)
        .map(|t| {
            Expr::eq(
                "src",
                format!("10.0.{}.{}", (t / 256) % 4, t % 256).as_str(),
            )
        })
        .collect();

    // Independent: each member evaluates its own compiled predicate over
    // the chunk (what 64 per-query Selections cost per arriving chunk).
    let mut independent: Vec<CompiledPredicate> = predicates
        .iter()
        .map(|p| CompiledPredicate::new(p.clone()))
        .collect();
    let scans: u64 = if smoke() { 20 } else { 500 };
    let mut hits_independent = 0u64;
    let t0 = Instant::now();
    for _ in 0..scans {
        for member in &mut independent {
            let mask = member.for_schema(chunk.schema()).eval_column(chunk);
            hits_independent += mask.iter().filter(|b| **b).count() as u64;
        }
    }
    let rows_scanned = scans * chunk.rows() as u64;
    let independent_ns = t0.elapsed().as_nanos() as f64 / rows_scanned as f64;

    // Shared: one predicate-index scan answers every member.
    let mut index = PredicateIndex::new();
    for (t, p) in predicates.iter().enumerate() {
        index.insert(t as u64, p.clone());
    }
    index.eval_chunk(chunk); // warm the per-schema compilation
    let mut hits_shared = 0u64;
    let before = allocations();
    let t0 = Instant::now();
    for _ in 0..scans {
        index.eval_chunk(chunk);
        for t in 0..tenants {
            hits_shared += index.member_mask(t as u64).expect("member").count() as u64;
        }
    }
    let shared_ns = t0.elapsed().as_nanos() as f64 / rows_scanned as f64;
    let shared_allocs_per_row = (allocations() - before) as f64 / rows_scanned as f64;
    assert_eq!(
        hits_independent, hits_shared,
        "shared and independent fan-out must select the same rows"
    );
    let index_speedup = independent_ns / shared_ns;
    println!("predindex_fanout_independent         {independent_ns:>10.1} ns/row (64 members)");
    println!(
        "predindex_fanout_shared              {shared_ns:>10.1} ns/row   ({index_speedup:.2}x, {shared_allocs_per_row:.3} allocs/row)"
    );
    emit_metric(
        "mqo_shared",
        "predindex_independent_ns_per_row",
        independent_ns,
    );
    emit_metric("mqo_shared", "predindex_shared_ns_per_row", shared_ns);
    emit_metric("mqo_shared", "predindex_speedup", index_speedup);
    emit_metric(
        "mqo_shared",
        "predindex_shared_allocs_per_row",
        shared_allocs_per_row,
    );
    assert!(
        index_speedup >= 2.0,
        "the predicate index must beat independent evaluation ≥2x for \
         {tenants} members, got {index_speedup:.2}x"
    );
    assert!(
        shared_allocs_per_row < 0.5,
        "the shared scan must not allocate per row ({shared_allocs_per_row:.3} allocs/row)"
    );

    // ---- many_tenants end-to-end ---------------------------------------
    let (nodes, run_secs) = if smoke() { (6, 6) } else { (12, 15) };
    let mut cfg = ManyTenantsConfig::new(nodes, tenants, run_secs, 29);
    cfg.events_per_node_per_sec = if smoke() { 8 } else { 16 };
    cfg.sharing = true;
    let mut shared = many_tenants(&cfg);
    cfg.sharing = false;
    let mut independent = many_tenants(&cfg);
    assert_eq!(
        shared.events, independent.events,
        "both runs must stream the same workload"
    );
    assert!(
        shared.max_shared_groups >= 1,
        "the tenants must actually form a share group"
    );
    assert_eq!(
        (shared.residual_groups, shared.residual_members),
        (0, 0),
        "no share group may outlive its members"
    );
    let shared_rps = shared.rows_per_wall_sec();
    let independent_rps = independent.rows_per_wall_sec();
    let throughput_speedup = shared_rps / independent_rps.max(1e-9);
    let msgs_ratio = independent.total_msgs as f64 / shared.total_msgs.max(1) as f64;
    let bytes_ratio = independent.total_bytes as f64 / shared.total_bytes.max(1) as f64;
    println!(
        "tenants_shared                       {shared_rps:>10.0} rows/s wall  ({} events, {} msgs)",
        shared.events, shared.total_msgs
    );
    println!(
        "tenants_independent                  {independent_rps:>10.0} rows/s wall  ({} msgs)",
        independent.total_msgs
    );
    println!(
        "tenants_speedup                      {throughput_speedup:>10.2} x      (msgs {msgs_ratio:.2}x, bytes {bytes_ratio:.2}x)"
    );
    emit_metric("mqo_shared", "tenants_shared_rows_per_wall_sec", shared_rps);
    emit_metric(
        "mqo_shared",
        "tenants_independent_rows_per_wall_sec",
        independent_rps,
    );
    emit_metric(
        "mqo_shared",
        "tenants_throughput_speedup",
        throughput_speedup,
    );
    emit_metric("mqo_shared", "tenants_msgs_ratio", msgs_ratio);
    emit_metric("mqo_shared", "tenants_bytes_ratio", bytes_ratio);
    // Per-tenant result latency (window close → proxy delivery): the median
    // tenant's p50 and the worst tenant's p99, for both execution modes —
    // sharing must not trade throughput for delivery tail latency.
    for (mode, outcome) in [("shared", &mut shared), ("independent", &mut independent)] {
        let (p50, p99) = outcome
            .result_latency_summary_us()
            .expect("tenants received results");
        println!(
            "tenants_{mode}_result_latency        p50 {:>8.0} us   p99 {:>8.0} us",
            p50, p99
        );
        emit_metric(
            "mqo_shared",
            &format!("tenants_{mode}_result_latency_p50_us"),
            p50,
        );
        emit_metric(
            "mqo_shared",
            &format!("tenants_{mode}_result_latency_p99_us"),
            p99,
        );
    }
    // The acceptance bar is ≥2x at full scale; the smoke run is too short
    // for stable wall-clock ratios (measured ~2.6x), so CI asserts a softer
    // floor that still catches a sharing regression.
    let bar = if smoke() { 1.5 } else { 2.0 };
    assert!(
        throughput_speedup >= bar,
        "shared execution of {tenants} constant-varied queries must sustain \
         ≥{bar}x independent throughput, got {throughput_speedup:.2}x"
    );
}
