//! EXP-L — the continuous-query subsystem (`pier-cq`): sustained ingest
//! and per-window result latency for a standing sliding-window netmon
//! aggregate, in steady state and under churn.
//!
//! Run with `cargo bench -p pier-bench --bench cq_continuous`.

use pier_bench::{emit_metric, slug};
use pier_harness::continuous::{continuous_netmon, ContinuousNetmonConfig};

fn row(label: &str, cfg: &ContinuousNetmonConfig) {
    let out = continuous_netmon(cfg);
    // Delivery over the steady tail (skips ramp-up and healing windows).
    let steady: Vec<(u64, u64)> = out
        .generated
        .iter()
        .filter(|(&(s, e), _)| s >= 15_000_000 && e + 8_000_000 <= cfg.run_secs * 1_000_000)
        .map(|(&w, &g)| (out.total_for(w).max(0) as u64, g))
        .collect();
    let (del, gen): (u64, u64) = steady
        .iter()
        .fold((0, 0), |(d, g), (dw, gw)| (d + dw, g + gw));
    let delivery = if gen == 0 {
        0.0
    } else {
        del as f64 / gen as f64
    };
    println!(
        "{label:<26} {:>5} nodes  {:>8.0} tup/s  {:>4} windows  {:>6.2}s mean latency  {:>6.3} delivery",
        cfg.nodes,
        out.tuples_per_sec,
        out.windows.len(),
        out.mean_window_latency_secs,
        delivery,
    );
    let tag = format!("{}_{}n", slug(label), cfg.nodes);
    emit_metric(
        "cq_continuous",
        &format!("tuples_per_sec_{tag}"),
        out.tuples_per_sec,
    );
    emit_metric(
        "cq_continuous",
        &format!("mean_window_latency_secs_{tag}"),
        out.mean_window_latency_secs,
    );
    emit_metric("cq_continuous", &format!("delivery_{tag}"), delivery);
}

fn main() {
    println!("# EXP-L — continuous netmon: sustained tuples/sec and per-window latency");
    for nodes in [10, 25, 50] {
        let mut cfg = ContinuousNetmonConfig::steady(nodes, 40, 11);
        cfg.events_per_node_per_sec = 16;
        row("steady", &cfg);
    }
    // The same steady workload with batching disabled — pins what the
    // coalesced `TupleBatch`/`PutBatch` path buys the window pipeline (the
    // batched run must not deliver fewer windows, and moves fewer messages;
    // the batching-equivalence tests assert the result multisets match).
    let mut unbatched = ContinuousNetmonConfig::steady(25, 40, 11);
    unbatched.events_per_node_per_sec = 16;
    unbatched.pier.batching = false;
    row("steady unbatched", &unbatched);
    let mut cfg = ContinuousNetmonConfig::steady(25, 40, 13);
    cfg.events_per_node_per_sec = 16;
    cfg.churn = Some((18, 5, 3));
    row("churn (kill 5, join 3)", &cfg);
}
