//! FIG2 — reproduce Figure 2 of the paper: the top-10 sources of firewall
//! log events across the deployment, computed by a single distributed
//! aggregation query with hierarchical (in-network) combining.
//!
//! Run with `cargo bench -p pier-bench --bench fig2_netmon`.

use pier_bench::emit_metric;
use pier_harness::experiments::fig2_netmon;

fn main() {
    let nodes = 350; // the paper's PlanetLab deployment size for this figure
    let result = fig2_netmon(nodes, 60_000, 10, 7);
    println!("# Figure 2 — top 10 sources of firewall events ({nodes} nodes)");
    println!("# rank  reported_source      reported_count   true_source          true_count");
    for (i, ((rs, rc), (ts, tc))) in result
        .reported
        .iter()
        .zip(result.ground_truth.iter())
        .enumerate()
    {
        println!("{:4}  {:<20} {:>10}   {:<20} {:>10}", i + 1, rs, rc, ts, tc);
    }
    println!(
        "# overlap with ground truth: {}/{}",
        result.overlap,
        result.ground_truth.len()
    );
    assert!(
        result.overlap >= 7,
        "top-10 should largely match ground truth"
    );
    emit_metric("fig2_netmon", "top10_overlap", result.overlap as f64);
}
