//! FIG1 — reproduce Figure 1 of the paper: CDF of first-result latency for
//! PIER file-sharing search on rare keywords vs a Gnutella-style flooding
//! baseline (all queries and rare queries).
//!
//! Run with `cargo bench -p pier-bench --bench fig1_filesharing`.

use pier_bench::emit_metric;
use pier_harness::experiments::fig1_filesharing;

fn main() {
    let nodes = 50; // the paper's PlanetLab deployment size for this figure
    let result = fig1_filesharing(nodes, 3_000, 120, 42);
    println!("# Figure 1 — CDF of first-result latency ({nodes} nodes, synthetic Zipf corpus)");
    println!("# columns: latency_s  pier_rare  gnutella_all  gnutella_rare  (fraction of queries answered)");
    for ((x, pier), (ga, gr)) in result
        .pier_rare
        .iter()
        .zip(result.gnutella_all.iter().zip(result.gnutella_rare.iter()))
    {
        println!("{:6.1}  {:8.3}  {:8.3}  {:8.3}", x, pier, ga.1, gr.1);
    }
    println!(
        "# no-answer rate: PIER rare = {:.1}%, Gnutella rare = {:.1}%",
        result.pier_rare_no_answer * 100.0,
        result.gnutella_rare_no_answer * 100.0
    );
    assert!(
        result.pier_rare_no_answer <= result.gnutella_rare_no_answer,
        "PIER must answer at least as many rare queries as flooding"
    );
    emit_metric(
        "fig1_filesharing",
        "pier_rare_no_answer_pct",
        result.pier_rare_no_answer * 100.0,
    );
    emit_metric(
        "fig1_filesharing",
        "gnutella_rare_no_answer_pct",
        result.gnutella_rare_no_answer * 100.0,
    );
}
