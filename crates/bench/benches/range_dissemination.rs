//! EXP-G — range-predicate dissemination (§3.3.3 "Range Index Substrate"):
//! a range scan answered by broadcasting to every node vs by shipping the
//! opgraph only to the PHT-style buckets overlapping the range.
//!
//! Run with `cargo bench -p pier-bench --bench range_dissemination`.

use pier_bench::{emit_metric, slug};
use pier_harness::indexes::range_dissemination;

fn main() {
    println!("# EXP-G — range-index vs broadcast dissemination");
    println!("# nodes  range%  strategy       buckets  messages  nodes_running_query  results");
    for nodes in [32, 64, 128] {
        for fraction in [0.05, 0.20] {
            for row in range_dissemination(nodes, 400, fraction, 13) {
                println!(
                    "{:>6}  {:>5.0}%  {:<13} {:>7} {:>9} {:>19} {:>8}",
                    row.nodes,
                    row.range_fraction * 100.0,
                    row.strategy,
                    row.buckets,
                    row.messages,
                    row.nodes_running_query,
                    row.results
                );
                if nodes == 128 {
                    emit_metric(
                        "range_dissemination",
                        &format!(
                            "messages_{}_128_{}pct",
                            slug(&row.strategy),
                            (fraction * 100.0) as u32
                        ),
                        row.messages as f64,
                    );
                }
            }
        }
    }
}
