//! Chaos benchmark: the robustness gauntlet end to end.
//!
//! Runs the `chaos` workload — continuous netmon plus shared mqo tenants
//! through seeded loss, partition and restart-storm phases — twice with the
//! same seed, and asserts the acceptance bar:
//!
//! * mean relative netmon error through the 5%-loss + partition phase stays
//!   under the configured bound,
//! * the post-heal recovery time is measurable (and emitted),
//! * a killed-and-restarted node rejoins with *warm* windows rehydrated
//!   from its durable segment log (zero recompute of retained panes),
//! * both equal-seed runs produce **byte-identical** telemetry traces.
//!
//! When `PIER_TRACE_OUT` names a file, the netmon proxy's trace (faults
//! mirrored in) is written there as JSONL; CI validates each line against
//! the event schema documented in `docs/OBSERVABILITY.md`.

use pier_bench::emit_metric;
use pier_harness::{run_chaos, ChaosConfig};

/// Smoke mode (`PIER_BENCH_SMOKE=1`, used by CI) shrinks the cluster while
/// still running every phase, metric line and assertion.
fn smoke() -> bool {
    std::env::var_os("PIER_BENCH_SMOKE").is_some()
}

fn main() {
    println!("# chaos: netmon + shared tenants through loss, partition and restart storm");
    let nodes = if smoke() { 14 } else { 20 };
    let seed = std::env::var("PIER_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let cfg = ChaosConfig::standard(nodes, seed);
    let out = run_chaos(&cfg);

    let degraded_err = out.mean_rel_error(out.spans.degraded);
    let baseline_err = out.mean_rel_error(out.spans.baseline);
    let recovery = out.recovery_secs(cfg.recovered_below);
    println!(
        "chaos_error                     baseline {:>6.4}   degraded {:>6.4}  (bound {:.2})",
        baseline_err, degraded_err, cfg.error_bound
    );
    println!(
        "chaos_recovery                  {:>6.2} s after heal  (threshold {:.2})",
        recovery.unwrap_or(f64::NAN),
        cfg.recovered_below
    );
    println!(
        "chaos_faults                    {} losses, {} partition drops, {} crashes, {} restarts",
        out.fault_counts.losses,
        out.fault_counts.partition_drops,
        out.fault_counts.crashes,
        out.fault_counts.restarts
    );
    println!(
        "chaos_warm_restart              {} windows rehydrated on nodes {:?}",
        out.rehydrated_windows, out.restarted
    );
    emit_metric("chaos", "events", out.events as f64);
    emit_metric("chaos", "windows", out.windows.len() as f64);
    emit_metric("chaos", "baseline_rel_error", baseline_err);
    emit_metric("chaos", "degraded_rel_error", degraded_err);
    emit_metric("chaos", "recovery_secs", recovery.unwrap_or(-1.0));
    emit_metric("chaos", "rehydrated_windows", out.rehydrated_windows as f64);
    emit_metric("chaos", "tenant_coverage", out.tenant_coverage);
    emit_metric("chaos", "losses", out.fault_counts.losses as f64);
    emit_metric(
        "chaos",
        "partition_drops",
        out.fault_counts.partition_drops as f64,
    );
    emit_metric("chaos", "crashes", out.fault_counts.crashes as f64);
    emit_metric("chaos", "restarts", out.fault_counts.restarts as f64);
    emit_metric("chaos", "total_msgs", out.total_msgs as f64);
    let trace_events = out.trace.lines().count() as f64;
    emit_metric("chaos", "trace_events_node0", trace_events);

    if let Some(path) = std::env::var_os("PIER_TRACE_OUT") {
        std::fs::write(&path, &out.trace).expect("write trace JSONL");
        println!("trace written to {}", path.to_string_lossy());
    }

    // Acceptance bar.
    assert!(
        baseline_err < 0.01,
        "baseline phase must be clean, got {baseline_err}"
    );
    assert!(
        degraded_err < cfg.error_bound,
        "degraded-phase error {degraded_err} exceeds bound {}",
        cfg.error_bound
    );
    assert!(
        recovery.is_some(),
        "no post-heal window recovered below {}",
        cfg.recovered_below
    );
    assert!(
        out.rehydrated_windows > 0,
        "a restarted node must rejoin with warm windows from its segment log"
    );
    assert!(
        out.fault_counts.losses > 0 && out.fault_counts.partition_drops > 0,
        "the degraded phase must actually inject faults"
    );
    assert_eq!(
        out.fault_counts.restarts as usize,
        out.restarted.len(),
        "every armed restart must have fired"
    );
    assert!(
        out.tenant_coverage > 0.5,
        "tenants must keep receiving windows through the gauntlet, got {}",
        out.tenant_coverage
    );

    // Determinism: an equal-seed rerun replays the exact same faults and
    // produces a byte-identical telemetry trace.
    let again = run_chaos(&cfg);
    if out.trace != again.trace {
        // Dump both traces so a failure can be diffed line by line.
        let dir = std::env::temp_dir();
        std::fs::write(dir.join("chaos_trace_a.jsonl"), &out.trace).ok();
        std::fs::write(dir.join("chaos_trace_b.jsonl"), &again.trace).ok();
        eprintln!("trace divergence dumped to {}", dir.display());
    }
    assert_eq!(
        out.trace, again.trace,
        "equal-seed chaos runs must produce byte-identical traces"
    );
    // The merged all-nodes export inherits the same byte-level determinism.
    assert_eq!(
        out.merged_trace, again.merged_trace,
        "equal-seed chaos runs must produce byte-identical merged traces"
    );
    assert_eq!(out.fault_counts, again.fault_counts);
    emit_metric("chaos", "trace_deterministic", 1.0);
}
