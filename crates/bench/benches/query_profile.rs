//! EXPLAIN ANALYZE benchmark: the distributed-tracing layer end to end.
//!
//! Runs the continuous netmon workload under `EXPLAIN ANALYZE` (tracing
//! forced on, every node's span ring merged into one stably ordered
//! stream) and asserts the acceptance bars in-bench:
//!
//! * the measured profile **reconciles** — per-stage rows/bytes/fan-in
//!   never exceed the static `pier-analyze` `CostReport` bounds;
//! * the critical path is non-trivial and ends at the proxy's
//!   `result.emit`;
//! * equal seeds export **byte-identical** merged span JSONL;
//! * the tracing hot path costs ≤ 1% on the ingest batch scan (paired
//!   min-ratio, same protocol as the telemetry overhead bar in
//!   `dht_ops`).
//!
//! When `PIER_SPANS_OUT` names a file, the merged all-nodes span export is
//! written there as JSONL (CI validates each line against the span schema
//! in `docs/OBSERVABILITY.md`); `PIER_CHROME_OUT` writes the Chrome
//! `trace_event` JSON profile.

use pier_bench::emit_metric;
use pier_core::{
    CmpOp, Expr, LocalOperator, Pipeline, Projection, Selection, Telemetry, Tuple, TupleBatch,
    Value,
};
use pier_harness::{explain_analyze_netmon, ContinuousNetmonConfig};
use std::time::Instant;

/// Smoke mode (`PIER_BENCH_SMOKE=1`, used by CI) shrinks the cluster and
/// run length while still emitting every metric line and assertion.
fn smoke() -> bool {
    std::env::var_os("PIER_BENCH_SMOKE").is_some()
}

fn main() {
    println!("# query profile: EXPLAIN ANALYZE over continuous netmon");
    let (nodes, run_secs) = if smoke() { (8, 10) } else { (16, 24) };
    let mut cfg = ContinuousNetmonConfig::steady(nodes, run_secs, 53);
    // A predicate puts a Selection stage in the pipeline so the profile's
    // operator table (fed by the `op.*` meters) has rows to show.
    cfg.sql = "SELECT src, COUNT(*) FROM packets WHERE port > 0 \
               GROUP BY src WINDOW 2s SLIDE 1s EVERY 5s"
        .to_string();
    let profiled = explain_analyze_netmon(&cfg);
    print!("{}", profiled.explain);

    let p = &profiled.profile;
    emit_metric("query_profile", "spans_total", p.total_spans as f64);
    emit_metric(
        "query_profile",
        "windows_observed",
        p.windows_observed as f64,
    );
    emit_metric(
        "query_profile",
        "result_latency_us",
        p.result_latency_us as f64,
    );
    emit_metric(
        "query_profile",
        "critical_path_hops",
        p.critical_path.len() as f64,
    );
    emit_metric(
        "query_profile",
        "flush_entries_per_window",
        p.max_flush_entries_per_window as f64,
    );
    emit_metric(
        "query_profile",
        "reconcile_violations",
        profiled.violations.len() as f64,
    );
    emit_metric(
        "query_profile",
        "trace_dropped",
        profiled.trace_dropped as f64,
    );

    assert!(
        profiled.violations.is_empty(),
        "measured profile must stay under the static CostReport bounds: {:?}",
        profiled.violations
    );
    assert_eq!(profiled.trace_dropped, 0, "span export must be complete");
    assert!(p.total_spans > 0 && p.windows_observed > 0);
    assert!(
        p.critical_path.len() >= 2
            && p.critical_path.last().map(|h| h.stage) == Some("result.emit"),
        "critical path must end at the proxy's result.emit: {:?}",
        p.critical_path
    );
    assert!(
        !p.operators.is_empty(),
        "pipeline meters must fill the operator table"
    );

    if let Some(path) = std::env::var_os("PIER_SPANS_OUT") {
        std::fs::write(&path, &profiled.span_jsonl).expect("write span JSONL");
        println!("merged spans written to {}", path.to_string_lossy());
    }
    if let Some(path) = std::env::var_os("PIER_CHROME_OUT") {
        std::fs::write(&path, &profiled.chrome_json).expect("write Chrome trace");
        println!("chrome profile written to {}", path.to_string_lossy());
    }

    // Equal seeds must export byte-identical merged span JSONL — rerun the
    // identical configuration and compare the artifacts.
    let replay = explain_analyze_netmon(&cfg);
    assert_eq!(
        profiled.span_jsonl, replay.span_jsonl,
        "equal seeds must export byte-identical merged span JSONL"
    );
    assert_eq!(profiled.chrome_json, replay.chrome_json);
    emit_metric(
        "query_profile",
        "span_export_bytes",
        profiled.span_jsonl.len() as f64,
    );
    println!(
        "query_profile_replay                  byte-identical ({} span bytes)",
        profiled.span_jsonl.len()
    );

    // Tracing overhead on the ingest hot path: a traced ingest adds one
    // span-ring append per arriving batch on top of the metered pipeline
    // scan.  Both arms run with telemetry *enabled* (isolating the span
    // cost from the already-bounded meter cost) and the asserted statistic
    // is the minimum paired ratio, exactly like the telemetry bar in
    // `dht_ops`: noise only inflates rounds, so one clean pair proves the
    // true cost, while a real regression shows up in every pair.
    let rows: Vec<Tuple> = (0..1024i64)
        .map(|i| {
            Tuple::new(
                "packets",
                vec![
                    (
                        "src",
                        Value::Str(format!("10.0.{}.{}", i % 4, i % 256).into()),
                    ),
                    ("port", Value::Int(i % 1024)),
                    ("len", Value::Int(40 + i % 1400)),
                ],
            )
        })
        .collect();
    let batch = TupleBatch::new(rows.clone());
    let pred = Expr::cmp(CmpOp::Ge, Expr::col("port"), Expr::lit(256i64));
    let mk = || {
        Pipeline::new(vec![
            Box::new(Selection::new(pred.clone())) as Box<dyn LocalOperator + Send>,
            Box::new(Projection::new(vec!["src".into(), "len".into()])),
        ])
    };
    let scans: u64 = 200;
    let measure = |tel: &Telemetry, traced: bool| -> f64 {
        let mut p = mk();
        p.set_telemetry(tel);
        let t0 = Instant::now();
        let mut survivors = 0u64;
        for i in 0..scans {
            let out = p.push_batch(&batch);
            survivors += out.len() as u64;
            if traced {
                // What a sampled query's ingest adds per batch: one
                // instantaneous span into the bounded ring.
                tel.record_span(
                    i,
                    i,
                    0xDEAD_BEEF,
                    i + 1,
                    0xDEAD_BEEF,
                    42,
                    "ingest",
                    batch.len() as u64,
                    0,
                    0,
                );
            }
        }
        assert!(survivors > 0, "the scan must keep survivors");
        t0.elapsed().as_nanos() as f64 / (scans * rows.len() as u64) as f64
    };
    let plain = Telemetry::attached();
    let traced = Telemetry::attached();
    let mut best_plain = f64::INFINITY;
    let mut best_traced = f64::INFINITY;
    let mut overhead = f64::INFINITY;
    for round in 0..15 {
        let (a, b) = if round % 2 == 0 {
            let a = measure(&plain, false);
            (a, measure(&traced, true))
        } else {
            let b = measure(&traced, true);
            (measure(&plain, false), b)
        };
        best_plain = best_plain.min(a);
        best_traced = best_traced.min(b);
        overhead = overhead.min((b + 0.05) / (a + 0.05));
    }
    // True overhead cannot be negative: a sub-1.0 paired ratio is pure
    // measurement noise, so clamp before reporting/asserting.
    let overhead = overhead.max(1.0);
    println!(
        "ingest_batch_scan_tracing            {best_traced:>10.1} ns/row   ({overhead:.3}x of {best_plain:.1})"
    );
    emit_metric(
        "query_profile",
        "ingest_batch_scan_tracing_ns_per_row",
        best_traced,
    );
    emit_metric(
        "query_profile",
        "ingest_batch_scan_tracing_overhead",
        overhead,
    );
    assert!(
        overhead <= 1.01,
        "enabled tracing must cost <= 1% on the ingest batch scan \
         (best paired ratio {overhead:.4}x; traced {best_traced:.2} ns/row \
         vs plain {best_plain:.2} ns/row)"
    );
    let recorded = traced.with(|h| h.spans().count()).unwrap_or(0);
    assert!(
        recorded > 0,
        "the traced arm must actually record spans into the ring"
    );
}
