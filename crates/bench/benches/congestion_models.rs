//! EXP-F — congestion-model comparison (§3.1.4): completion latency of the
//! Figure-2 aggregation query under the simulator's three congestion models.
//!
//! Run with `cargo bench -p pier-bench --bench congestion_models`.

use pier_bench::{emit_metric, slug};
use pier_harness::experiments::congestion_models;

fn main() {
    println!("# EXP-F — congestion models (100 nodes, 20k events)");
    println!("# model        last_result_s   results");
    for row in congestion_models(100, 20_000, 19) {
        println!(
            "{:<12} {:>13.2} {:>9}",
            row.model, row.last_result_secs, row.results
        );
        emit_metric(
            "congestion_models",
            &format!("last_result_secs_{}", slug(&row.model)),
            row.last_result_secs,
        );
    }
}
