//! Micro-benchmarks for the overlay and query-processor hot paths
//! (Figures 5/6 machinery): ring routing decisions, object-manager puts,
//! tuple hashing, the symmetric-hash-join inner loop, zero-copy tuple
//! cloning and the columnar batch scan.
//!
//! Uses a plain wall-clock harness (the build environment has no crate
//! registry, so criterion is unavailable) plus a counting global allocator
//! so allocation-freedom claims are *measured*, not asserted.  Run with
//! `cargo bench -p pier-bench --bench dht_ops`.  Every series additionally
//! prints a machine-readable JSON line; `BENCH_dht_ops.json` records a
//! baseline run for cross-PR comparison (see `docs/BENCHMARKS.md`).

// The counting allocator below is a justified unsafe site: it delegates to
// the system allocator verbatim and only bumps a relaxed counter, so the
// alloc/dealloc contracts are inherited.
#![allow(unsafe_code)]

use pier_bench::emit_metric;
use pier_core::{
    CmpOp, Expr, JoinSide, LocalOperator, Pipeline, Projection, Selection, SymmetricHashJoin,
    Telemetry, Tuple, TupleBatch, Value,
};
use pier_dht::{make_ring_refs, ObjectManager, ObjectName, Router, RouterConfig};
use pier_runtime::WireSize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Smoke mode (`PIER_BENCH_SMOKE=1`, used by CI) shrinks every iteration
/// count so the bench finishes in well under a second while still emitting
/// every metric line and running every correctness/allocation assertion.
fn smoke() -> bool {
    std::env::var_os("PIER_BENCH_SMOKE").is_some()
}

/// A pass-through allocator that counts allocations, so the bench can pin
/// "Tuple::clone is allocation-free" as a number (0.0) in the baseline.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn bench(name: &str, mut iteration: impl FnMut(u64)) -> f64 {
    let (warmup, iters): (u64, u64) = if smoke() {
        (100, 2_000)
    } else {
        (10_000, 200_000)
    };
    for i in 0..warmup {
        iteration(i);
    }
    let start = Instant::now();
    for i in 0..iters {
        iteration(warmup + i);
    }
    let elapsed = start.elapsed();
    let ns_per_op = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<36} {ns_per_op:>10.1} ns/op   ({iters} iters)");
    emit_metric("dht_ops", &format!("{name}_ns_per_op"), ns_per_op);
    ns_per_op
}

fn main() {
    println!("# micro-benchmarks: overlay + query-processor hot paths");

    let refs = make_ring_refs(1024, 7);
    let router = Router::with_static_ring(refs[0], &refs, RouterConfig::default());
    bench("router_next_hop_1024_nodes", |i| {
        let target = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        std::hint::black_box(router.next_hop(pier_dht::Id(target), 0));
    });

    // Keys are pre-generated: the loop must time the ObjectManager, not the
    // allocator behind `format!`.  Suffixes cycle so the store reaches a
    // steady state (overwrites) instead of growing without bound, which
    // would make `get` clone ever-larger result sets.
    let keys: Vec<String> = (0..1000).map(|i| format!("k{i}")).collect();
    let mut om: ObjectManager<u64> = ObjectManager::new(u64::MAX);
    bench("object_manager_put_get", |i| {
        let key = &keys[(i % 1000) as usize];
        om.put(
            ObjectName::new("t", key.clone(), (i / 1000) % 4),
            i,
            1_000_000,
            i,
        );
        std::hint::black_box(om.get("t", key, i).len());
    });

    let tuple = Tuple::new(
        "events",
        vec![
            ("src", Value::Str("10.1.2.3".into())),
            ("port", Value::Int(443)),
        ],
    );
    let cols = vec!["src".to_string(), "port".to_string()];
    bench("tuple_partition_key", |_| {
        std::hint::black_box(tuple.partition_key(&cols));
    });

    // Zero-copy values: cloning a tuple (schema + values both behind Arcs,
    // string/bytes payloads shared) must be allocation-free.  Measured, not
    // asserted: the counting allocator reports allocations per clone.
    let heavy = Tuple::new(
        "events",
        vec![
            ("src", Value::str("10.200.30.40")),
            ("payload", Value::bytes(vec![0u8; 256])),
            ("port", Value::Int(443)),
        ],
    );
    let clones: u64 = if smoke() { 2_000 } else { 200_000 };
    let before = allocations();
    let t0 = Instant::now();
    for _ in 0..clones {
        std::hint::black_box(heavy.clone());
    }
    let clone_ns = t0.elapsed().as_nanos() as f64 / clones as f64;
    let clone_allocs = (allocations() - before) as f64 / clones as f64;
    println!(
        "tuple_clone                          {clone_ns:>10.1} ns/op   ({clone_allocs:.3} allocs/op)"
    );
    emit_metric("dht_ops", "tuple_clone_ns_per_op", clone_ns);
    emit_metric("dht_ops", "tuple_clone_allocs_per_op", clone_allocs);

    // Symmetric-hash-join push.  The production entry point is chunk-native
    // (`push_chunk_batch`): the executor hands the join DHT-arrival-sized
    // chunks, probe rows are matched per stored chunk and the output is
    // *gathered* into joined typed chunks — no per-row tuple is ever built.
    // `symmetric_hash_join_push` therefore times the chunk path per pushed
    // row; the single-tuple escape hatch (`push_side`, which wraps each
    // tuple in a one-row chunk) is reported separately so its cost stays
    // visible.
    let key = vec!["b".to_string()];
    let mut join = SymmetricHashJoin::new(key.clone(), key.clone(), "rs");
    let per_tuple_join_ns = bench("symmetric_hash_join_push_tuple", |i| {
        let i = i as i64;
        let (side, t) = if i % 2 == 0 {
            (
                JoinSide::Left,
                Tuple::new("r", vec![("a", Value::Int(i)), ("b", Value::Int(i % 64))]),
            )
        } else {
            (
                JoinSide::Right,
                Tuple::new("s", vec![("b", Value::Int(i % 64)), ("c", Value::Int(i))]),
            )
        };
        std::hint::black_box(join.push_side(side, t).len());
    });

    // Pre-built 64-row probe chunks (the default `batch_max_tuples`), with
    // the same key distribution and left/right alternation as the per-tuple
    // loop — left rows carry even key residues and right rows odd ones, so
    // both paths measure the steady-state probe+insert cost without an
    // ever-growing result set.  The join is restarted every 512 pushes to
    // keep state at the same order of magnitude as the per-tuple loop's.
    const JOIN_CHUNK_ROWS: i64 = 64;
    let join_chunks: Vec<(JoinSide, pier_core::tuple::ColumnChunk)> = (0..64i64)
        .map(|c| {
            let base = c * JOIN_CHUNK_ROWS;
            let (side, rows): (JoinSide, Vec<Tuple>) = if c % 2 == 0 {
                (
                    JoinSide::Left,
                    (base..base + JOIN_CHUNK_ROWS)
                        .map(|i| {
                            let i = i * 2;
                            Tuple::new("r", vec![("a", Value::Int(i)), ("b", Value::Int(i % 64))])
                        })
                        .collect(),
                )
            } else {
                (
                    JoinSide::Right,
                    (base..base + JOIN_CHUNK_ROWS)
                        .map(|i| {
                            let i = i * 2 + 1;
                            Tuple::new("s", vec![("b", Value::Int(i % 64)), ("c", Value::Int(i))])
                        })
                        .collect(),
                )
            };
            let batch = TupleBatch::new(rows);
            (side, batch.chunks()[0].clone())
        })
        .collect();
    let mut chunk_join = SymmetricHashJoin::new(key.clone(), key, "rs");
    let join_before = allocations();
    let chunk_join_ns = bench("symmetric_hash_join_push_chunk", |i| {
        if i % 512 == 0 {
            let k = vec!["b".to_string()];
            chunk_join = SymmetricHashJoin::new(k.clone(), k, "rs");
        }
        let (side, chunk) = &join_chunks[(i % join_chunks.len() as u64) as usize];
        std::hint::black_box(chunk_join.push_chunk_batch(*side, chunk).len());
    }) / JOIN_CHUNK_ROWS as f64;
    let join_iters: u64 = if smoke() {
        100 + 2_000
    } else {
        10_000 + 200_000
    };
    let join_allocs_per_row =
        (allocations() - join_before) as f64 / (join_iters * JOIN_CHUNK_ROWS as u64) as f64;
    let join_speedup = per_tuple_join_ns / chunk_join_ns;
    println!(
        "symmetric_hash_join_push             {chunk_join_ns:>10.1} ns/row   ({join_speedup:.2}x, {join_allocs_per_row:.3} allocs/row)"
    );
    emit_metric(
        "dht_ops",
        "symmetric_hash_join_push_ns_per_op",
        chunk_join_ns,
    );
    emit_metric("dht_ops", "symmetric_hash_join_push_speedup", join_speedup);
    emit_metric(
        "dht_ops",
        "symmetric_hash_join_push_allocs_per_row",
        join_allocs_per_row,
    );
    assert!(
        join_speedup >= 2.0,
        "chunk-native gather join must beat the per-tuple path by >= 2x \
         ({chunk_join_ns:.1} ns/row vs {per_tuple_join_ns:.1} ns/op)"
    );
    // The gather path's only steady-state allocations are the per-push
    // output columns and table growth, amortised over the chunk.
    assert!(
        join_allocs_per_row < 4.0,
        "gather join must not materialise per-row tuples \
         ({join_allocs_per_row:.3} allocs/row)"
    );
    if !smoke() {
        // Recorded baseline before the typed-buffer/gather work
        // (BENCH_dht_ops.json at commit 60eb186): 369.47 ns per pushed row.
        // The acceptance bar for this change is >= 2x on full local runs;
        // smoke runs skip the absolute comparison because CI hardware is
        // not the baseline machine.
        assert!(
            chunk_join_ns <= 369.47 / 2.0,
            "symmetric_hash_join_push must improve >= 2x over the recorded \
             369.47 ns/op baseline (measured {chunk_join_ns:.1} ns/row)"
        );
    }

    // Columnar batch scan vs row-major per-tuple dispatch: evaluate one
    // selection predicate over a 1024-row batch.  The row-major baseline
    // walks materialised tuples through the interpreted `Expr::matches`
    // (per-row name resolution); the columnar path compiles the predicate
    // against the chunk schema once and scans the columns by index.
    let rows: Vec<Tuple> = (0..1024i64)
        .map(|i| {
            Tuple::new(
                "events",
                vec![
                    (
                        "src",
                        Value::Str(format!("10.0.{}.{}", i % 4, i % 256).into()),
                    ),
                    ("port", Value::Int(i % 1024)),
                    ("len", Value::Int(40 + i % 1400)),
                ],
            )
        })
        .collect();
    let batch = TupleBatch::new(rows.clone());
    let pred = Expr::all(vec![
        Expr::cmp(CmpOp::Ge, Expr::col("port"), Expr::lit(256i64)),
        Expr::cmp(CmpOp::Lt, Expr::col("len"), Expr::lit(1200i64)),
    ]);
    let scans: u64 = if smoke() { 50 } else { 2_000 };
    let t0 = Instant::now();
    let mut hits_row = 0u64;
    for _ in 0..scans {
        for t in &rows {
            if pred.matches(t) {
                hits_row += 1;
            }
        }
    }
    let row_major_ns = t0.elapsed().as_nanos() as f64 / (scans * rows.len() as u64) as f64;
    let chunk = &batch.chunks()[0];
    let compiled = pred.compile(chunk.schema());
    let t0 = Instant::now();
    let mut hits_col = 0u64;
    for _ in 0..scans {
        for r in 0..chunk.rows() {
            if compiled.matches_row(chunk, r) {
                hits_col += 1;
            }
        }
    }
    let columnar_ns = t0.elapsed().as_nanos() as f64 / (scans * rows.len() as u64) as f64;
    assert_eq!(hits_row, hits_col, "both scans must agree");
    let speedup = row_major_ns / columnar_ns;
    println!("batch_scan_row_major                 {row_major_ns:>10.1} ns/row");
    println!("batch_scan_columnar                  {columnar_ns:>10.1} ns/row   ({speedup:.2}x)");
    emit_metric("dht_ops", "batch_scan_row_major_ns_per_row", row_major_ns);
    emit_metric("dht_ops", "batch_scan_columnar_ns_per_row", columnar_ns);
    emit_metric("dht_ops", "batch_scan_columnar_speedup", speedup);

    // Chunk-to-chunk pipeline scan: selection → projection over the same
    // 1024-row single-schema batch.  The per-tuple baseline drives
    // `Pipeline::push` row by row (each stage allocating per-row vectors and
    // output tuples); the chunked path hands the whole batch through
    // `Pipeline::push_batch`, where the selection emits one filtered chunk
    // per input chunk and the projection gathers whole columns.  The
    // counting allocator *measures* the headline claim — the chunked
    // survivor path materialises zero per-row tuples, so its allocations per
    // row are a small constant divided by the batch size.
    let mk = || {
        Pipeline::new(vec![
            Box::new(Selection::new(pred.clone())) as Box<dyn LocalOperator + Send>,
            Box::new(Projection::new(vec!["src".into(), "len".into()])),
        ])
    };
    let mut per_tuple = mk();
    let t0 = Instant::now();
    let mut survivors_per_tuple = 0u64;
    for _ in 0..scans {
        for t in &rows {
            survivors_per_tuple += per_tuple.push(t.clone()).len() as u64;
        }
    }
    let pipeline_row_ns = t0.elapsed().as_nanos() as f64 / (scans * rows.len() as u64) as f64;
    let mut chunked = mk();
    let before = allocations();
    let t0 = Instant::now();
    let mut survivors_chunked = 0u64;
    for _ in 0..scans {
        survivors_chunked += chunked.push_batch(&batch).len() as u64;
    }
    let pipeline_batch_ns = t0.elapsed().as_nanos() as f64 / (scans * rows.len() as u64) as f64;
    let pipeline_allocs_per_row =
        (allocations() - before) as f64 / (scans * rows.len() as u64) as f64;
    assert_eq!(
        survivors_per_tuple, survivors_chunked,
        "both pipeline paths must agree on the survivor count"
    );
    assert!(
        pipeline_allocs_per_row < 0.25,
        "chunked survivor path must not materialise per-row tuples \
         ({pipeline_allocs_per_row:.3} allocs/row)"
    );
    let pipeline_speedup = pipeline_row_ns / pipeline_batch_ns;
    println!("pipeline_batch_scan_per_tuple        {pipeline_row_ns:>10.1} ns/row");
    println!(
        "pipeline_batch_scan                  {pipeline_batch_ns:>10.1} ns/row   ({pipeline_speedup:.2}x, {pipeline_allocs_per_row:.3} allocs/row)"
    );
    emit_metric(
        "dht_ops",
        "pipeline_batch_scan_per_tuple_ns_per_row",
        pipeline_row_ns,
    );
    emit_metric(
        "dht_ops",
        "pipeline_batch_scan_ns_per_row",
        pipeline_batch_ns,
    );
    emit_metric("dht_ops", "pipeline_batch_scan_speedup", pipeline_speedup);
    emit_metric(
        "dht_ops",
        "pipeline_batch_scan_allocs_per_row",
        pipeline_allocs_per_row,
    );
    assert!(
        pipeline_speedup >= 2.0,
        "chunked pipeline must beat per-tuple dispatch by >= 2x \
         ({pipeline_batch_ns:.1} vs {pipeline_row_ns:.1} ns/row)"
    );
    if !smoke() {
        // Recorded baseline before the typed-buffer work (BENCH_dht_ops.json
        // at commit 60eb186): 85.51 ns/row.  Full local runs must hold the
        // >= 2x acceptance bar; smoke runs skip the absolute comparison
        // because CI hardware is not the baseline machine.
        assert!(
            pipeline_batch_ns <= 85.51 / 2.0,
            "pipeline_batch_scan must improve >= 2x over the recorded \
             85.51 ns/row baseline (measured {pipeline_batch_ns:.1} ns/row)"
        );
    }

    // Telemetry overhead on the chunked hot path: the per-operator meters
    // amortise a handful of counter updates over each 1024-row batch, so an
    // *enabled* hub must stay within 1% of the disabled baseline.  The
    // comparison uses its own iteration count (independent of smoke mode —
    // a 1% bar needs rounds long enough that sub-ns/row noise averages
    // out) and measures the two variants back-to-back in paired rounds,
    // alternating which variant goes first.  The asserted statistic is the
    // *minimum paired ratio*: environment noise (frequency scaling, a
    // scheduler preemption) can only inflate individual rounds, so a real
    // regression shows up in every pair while a clean environment needs
    // only one undisturbed pair to prove the true cost is under the bar.
    // The 0.1 ns constant absorbs timer quantisation.
    let tel_scans: u64 = 200;
    let measure = |tel: &Telemetry| -> f64 {
        let mut p = mk();
        p.set_telemetry(tel);
        let t0 = Instant::now();
        let mut survivors = 0u64;
        for _ in 0..tel_scans {
            survivors += p.push_batch(&batch).len() as u64;
        }
        assert_eq!(
            survivors,
            survivors_chunked / scans * tel_scans,
            "instrumented path must agree"
        );
        t0.elapsed().as_nanos() as f64 / (tel_scans * rows.len() as u64) as f64
    };
    let disabled = Telemetry::disabled();
    let enabled = Telemetry::attached();
    let mut best_disabled = f64::INFINITY;
    let mut best_enabled = f64::INFINITY;
    let mut overhead = f64::INFINITY;
    for round in 0..15 {
        let (d, e) = if round % 2 == 0 {
            let d = measure(&disabled);
            (d, measure(&enabled))
        } else {
            let e = measure(&enabled);
            (measure(&disabled), e)
        };
        best_disabled = best_disabled.min(d);
        best_enabled = best_enabled.min(e);
        overhead = overhead.min((e + 0.05) / (d + 0.05));
    }
    // True overhead cannot be negative: a sub-1.0 paired ratio is pure
    // measurement noise, so clamp before reporting/asserting.
    let overhead = overhead.max(1.0);
    println!(
        "pipeline_batch_scan_telemetry        {best_enabled:>10.1} ns/row   ({overhead:.3}x of {best_disabled:.1})"
    );
    emit_metric(
        "dht_ops",
        "pipeline_batch_scan_telemetry_ns_per_row",
        best_enabled,
    );
    emit_metric(
        "dht_ops",
        "pipeline_batch_scan_telemetry_overhead",
        overhead,
    );
    assert!(
        overhead <= 1.01,
        "enabled telemetry must cost <= 1% on pipeline_batch_scan \
         (best paired ratio {overhead:.4}x; enabled {best_enabled:.2} ns/row \
         vs disabled {best_disabled:.2} ns/row)"
    );
    assert!(
        enabled.counter("op.selection.rows_in") > 0,
        "the enabled run must actually record operator counters"
    );

    // Wire accounting of a 32-tuple batch vs the same tuples shipped
    // individually (the schema-amortisation the columnar batching buys).
    let batch = TupleBatch::new(
        (0..32)
            .map(|i| {
                Tuple::new(
                    "events",
                    vec![
                        ("src", Value::Str(format!("10.0.0.{i}").into())),
                        ("port", Value::Int(i)),
                    ],
                )
            })
            .collect(),
    );
    let unbatched: usize = batch.iter().map(|t| t.wire_size()).sum();
    let ratio = unbatched as f64 / batch.wire_size() as f64;
    println!("tuple_batch_wire_32                  {ratio:>10.2} x smaller");
    emit_metric("dht_ops", "tuple_batch_wire_ratio_32", ratio);
}
