//! Micro-benchmarks for the overlay and query-processor hot paths
//! (Figures 5/6 machinery): ring routing decisions, object-manager puts,
//! tuple hashing and the symmetric-hash-join inner loop.
//!
//! Uses a plain wall-clock harness (the build environment has no crate
//! registry, so criterion is unavailable).  Run with
//! `cargo bench -p pier-bench --bench dht_ops`.  Every series additionally
//! prints a machine-readable JSON line; `BENCH_dht_ops.json` records a
//! baseline run for cross-PR comparison.

use pier_bench::emit_metric;
use pier_core::{JoinSide, SymmetricHashJoin, Tuple, TupleBatch, Value};
use pier_dht::{make_ring_refs, ObjectManager, ObjectName, Router, RouterConfig};
use pier_runtime::WireSize;
use std::time::Instant;

fn bench(name: &str, mut iteration: impl FnMut(u64)) -> f64 {
    const WARMUP: u64 = 10_000;
    const ITERS: u64 = 200_000;
    for i in 0..WARMUP {
        iteration(i);
    }
    let start = Instant::now();
    for i in 0..ITERS {
        iteration(WARMUP + i);
    }
    let elapsed = start.elapsed();
    let ns_per_op = elapsed.as_nanos() as f64 / ITERS as f64;
    println!("{name:<36} {ns_per_op:>10.1} ns/op   ({ITERS} iters)");
    emit_metric("dht_ops", &format!("{name}_ns_per_op"), ns_per_op);
    ns_per_op
}

fn main() {
    println!("# micro-benchmarks: overlay + query-processor hot paths");

    let refs = make_ring_refs(1024, 7);
    let router = Router::with_static_ring(refs[0], &refs, RouterConfig::default());
    bench("router_next_hop_1024_nodes", |i| {
        let target = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        std::hint::black_box(router.next_hop(pier_dht::Id(target), 0));
    });

    // Keys are pre-generated: the loop must time the ObjectManager, not the
    // allocator behind `format!`.  Suffixes cycle so the store reaches a
    // steady state (overwrites) instead of growing without bound, which
    // would make `get` clone ever-larger result sets.
    let keys: Vec<String> = (0..1000).map(|i| format!("k{i}")).collect();
    let mut om: ObjectManager<u64> = ObjectManager::new(u64::MAX);
    bench("object_manager_put_get", |i| {
        let key = &keys[(i % 1000) as usize];
        om.put(
            ObjectName::new("t", key.clone(), (i / 1000) % 4),
            i,
            1_000_000,
            i,
        );
        std::hint::black_box(om.get("t", key, i).len());
    });

    let tuple = Tuple::new(
        "events",
        vec![
            ("src", Value::Str("10.1.2.3".into())),
            ("port", Value::Int(443)),
        ],
    );
    let cols = vec!["src".to_string(), "port".to_string()];
    bench("tuple_partition_key", |_| {
        std::hint::black_box(tuple.partition_key(&cols));
    });

    let key = vec!["b".to_string()];
    let mut join = SymmetricHashJoin::new(key.clone(), key, "rs");
    bench("symmetric_hash_join_push", |i| {
        let i = i as i64;
        let (side, t) = if i % 2 == 0 {
            (
                JoinSide::Left,
                Tuple::new("r", vec![("a", Value::Int(i)), ("b", Value::Int(i % 64))]),
            )
        } else {
            (
                JoinSide::Right,
                Tuple::new("s", vec![("b", Value::Int(i % 64)), ("c", Value::Int(i))]),
            )
        };
        std::hint::black_box(join.push_side(side, t).len());
    });

    // Wire accounting of a 32-tuple batch vs the same tuples shipped
    // individually (the schema-amortisation the batching change buys).
    let batch = TupleBatch::new(
        (0..32)
            .map(|i| {
                Tuple::new(
                    "events",
                    vec![
                        ("src", Value::Str(format!("10.0.0.{i}"))),
                        ("port", Value::Int(i)),
                    ],
                )
            })
            .collect(),
    );
    let unbatched: usize = batch.tuples().iter().map(WireSize::wire_size).sum();
    let ratio = unbatched as f64 / batch.wire_size() as f64;
    println!("tuple_batch_wire_32                  {ratio:>10.2} x smaller");
    emit_metric("dht_ops", "tuple_batch_wire_ratio_32", ratio);
}
