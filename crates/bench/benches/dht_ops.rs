//! Criterion micro-benchmarks for the overlay and query-processor hot paths
//! (Figures 5/6 machinery): ring routing decisions, object-manager puts,
//! tuple hashing and the symmetric-hash-join inner loop.

use criterion::{criterion_group, criterion_main, Criterion};
use pier_core::{JoinSide, SymmetricHashJoin, Tuple, Value};
use pier_dht::{make_ring_refs, ObjectName, ObjectManager, Router, RouterConfig};

fn bench_routing(c: &mut Criterion) {
    let refs = make_ring_refs(1024, 7);
    let router = Router::with_static_ring(refs[0], &refs, RouterConfig::default());
    let mut i = 0u64;
    c.bench_function("router_next_hop_1024_nodes", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            std::hint::black_box(router.next_hop(pier_dht::Id(i), 0))
        })
    });
}

fn bench_object_manager(c: &mut Criterion) {
    c.bench_function("object_manager_put_get", |b| {
        let mut om: ObjectManager<u64> = ObjectManager::new(u64::MAX);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let name = ObjectName::new("t", format!("k{}", i % 1000), i);
            om.put(name, i, 1_000_000, i);
            std::hint::black_box(om.get("t", &format!("k{}", i % 1000), i).len())
        })
    });
}

fn bench_tuple_partition_key(c: &mut Criterion) {
    let tuple = Tuple::new(
        "events",
        vec![
            ("src", Value::Str("10.1.2.3".into())),
            ("port", Value::Int(443)),
        ],
    );
    let cols = vec!["src".to_string(), "port".to_string()];
    c.bench_function("tuple_partition_key", |b| {
        b.iter(|| std::hint::black_box(tuple.partition_key(&cols)))
    });
}

fn bench_symmetric_hash_join(c: &mut Criterion) {
    c.bench_function("symmetric_hash_join_push", |b| {
        let key = vec!["b".to_string()];
        let mut join = SymmetricHashJoin::new(key.clone(), key, "rs");
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            let left = Tuple::new("r", vec![("a", Value::Int(i)), ("b", Value::Int(i % 64))]);
            let right = Tuple::new("s", vec![("b", Value::Int(i % 64)), ("c", Value::Int(i))]);
            let side = if i % 2 == 0 { JoinSide::Left } else { JoinSide::Right };
            let t = if i % 2 == 0 { left } else { right };
            std::hint::black_box(join.push_side(side, t).len())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_routing, bench_object_manager, bench_tuple_partition_key, bench_symmetric_hash_join
);
criterion_main!(benches);
