//! EXP-E — churn resilience: query recall after failing a fraction of the
//! network (soft state and routing resilience, §2.1.1, §3.2.3).
//!
//! Run with `cargo bench -p pier-bench --bench churn`.

use pier_bench::emit_metric;
use pier_harness::experiments::churn;

fn main() {
    println!("# EXP-E — recall under node failures (100 nodes, 200 published rows)");
    println!("# failed_fraction   recall");
    for failed in [0.0, 0.05, 0.1, 0.2, 0.3] {
        let row = churn(100, 200, failed, 31);
        println!("{:>16.2}   {:>6.3}", row.failed_fraction, row.recall);
        emit_metric(
            "churn",
            &format!("recall_at_{}pct_failed", (failed * 100.0) as u32),
            row.recall,
        );
    }
}
