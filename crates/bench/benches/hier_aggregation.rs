//! EXP-B — hierarchical vs flat (direct-to-root) aggregation: the maximum
//! per-node in-bandwidth hot spot and total traffic (§3.3.4).
//!
//! Run with `cargo bench -p pier-bench --bench hier_aggregation`.

use pier_bench::{emit_metric, slug};
use pier_harness::experiments::hierarchical_aggregation;

fn main() {
    println!("# EXP-B — hierarchical vs flat aggregation");
    println!("# nodes  mode           max_in_bytes   total_bytes   groups");
    for nodes in [25, 50, 100, 200] {
        for row in hierarchical_aggregation(nodes, 40, 23) {
            println!(
                "{:>6}  {:<13} {:>12} {:>12} {:>8}",
                row.nodes, row.mode, row.max_in_bytes, row.total_bytes, row.groups_reported
            );
            if nodes == 200 {
                emit_metric(
                    "hier_aggregation",
                    &format!("max_in_bytes_{}_200", slug(&row.mode)),
                    row.max_in_bytes as f64,
                );
                emit_metric(
                    "hier_aggregation",
                    &format!("total_bytes_{}_200", slug(&row.mode)),
                    row.total_bytes as f64,
                );
            }
        }
    }
}
