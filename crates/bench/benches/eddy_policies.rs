//! EXP-H — adaptive query processing with eddies (§4.2.2): operator
//! invocations for the same conjunctive filter query under static good/bad
//! orders and eddy routing policies.
//!
//! Run with `cargo bench -p pier-bench --bench eddy_policies`.

use pier_bench::{emit_metric, slug};
use pier_harness::adaptivity::eddy_policies;

fn main() {
    println!("# EXP-H — eddy routing policies over a 3-predicate filter query");
    println!("# strategy                  tuples  invocations  results");
    for row in eddy_policies(50_000, 29) {
        println!(
            "{:<26} {:>7} {:>12} {:>8}",
            row.strategy, row.tuples, row.invocations, row.results
        );
        emit_metric(
            "eddy_policies",
            &format!("invocations_{}", slug(&row.strategy)),
            row.invocations as f64,
        );
    }
}
