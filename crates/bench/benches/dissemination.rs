//! EXP-C — query dissemination: messages used by the broadcast tree vs the
//! equality index (§3.3.3), for identical answers.
//!
//! Run with `cargo bench -p pier-bench --bench dissemination`.

use pier_bench::{emit_metric, slug};
use pier_harness::experiments::dissemination;

fn main() {
    println!("# EXP-C — query dissemination strategies");
    println!("# nodes  strategy          messages  results");
    for nodes in [16, 64, 128, 256] {
        for row in dissemination(nodes, 5) {
            println!(
                "{:>6}  {:<16} {:>9} {:>8}",
                row.nodes, row.strategy, row.messages, row.results
            );
            if nodes == 256 {
                emit_metric(
                    "dissemination",
                    &format!("messages_{}_256", slug(&row.strategy)),
                    row.messages as f64,
                );
            }
        }
    }
}
