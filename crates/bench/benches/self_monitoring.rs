//! Self-monitoring telemetry benchmark: the dogfood loop end to end.
//!
//! Runs the `self_monitoring` workload — every node publishes its
//! telemetry hub into the `system.metrics` DHT namespace and two standing
//! sqlish queries (per-node windowed `MAX(bytes_recv)` and
//! `MAX(lookup_p99_us)`) monitor the cluster through PIER itself — and
//! asserts the acceptance bar: the monitoring queries return live values
//! for *every* node.  Emits the standard JSON metric lines.
//!
//! When `PIER_TRACE_OUT` names a file, node 0's structured event trace is
//! written there as JSONL; CI validates each line against the event schema
//! documented in `docs/OBSERVABILITY.md`.  `PIER_TRACE_MERGED_OUT` writes
//! the merged all-nodes trace (stably ordered, byte-reproducible under
//! equal seeds), and `PIER_SPANS_OUT` the merged all-nodes span export.

use pier_bench::emit_metric;
use pier_harness::{self_monitoring, SelfMonitoringConfig};

/// Smoke mode (`PIER_BENCH_SMOKE=1`, used by CI) shrinks the cluster and
/// run length while still emitting every metric line and assertion.
fn smoke() -> bool {
    std::env::var_os("PIER_BENCH_SMOKE").is_some()
}

fn main() {
    println!("# self-monitoring: standing queries over system.metrics");
    let (nodes, run_secs) = if smoke() { (8, 12) } else { (24, 30) };
    let cfg = SelfMonitoringConfig::new(nodes, run_secs, 11);
    let out = self_monitoring(&cfg);

    let windows = out.bytes_recv.len() as f64;
    let reporting = out.nodes_reporting() as f64;
    println!(
        "self_monitoring                      {:>10.0} publishes  ({} windows, {}/{} nodes reporting)",
        out.publishes,
        out.bytes_recv.len(),
        out.nodes_reporting(),
        nodes
    );
    println!(
        "self_monitoring_peaks                  bytes_recv {:>10.0}   lookup_p99 {:>8.0} us",
        out.peak_bytes_recv(),
        out.peak_lookup_p99()
    );
    emit_metric("self_monitoring", "metrics_publishes", out.publishes as f64);
    emit_metric("self_monitoring", "bytes_recv_windows", windows);
    emit_metric("self_monitoring", "nodes_reporting", reporting);
    emit_metric("self_monitoring", "peak_bytes_recv", out.peak_bytes_recv());
    emit_metric(
        "self_monitoring",
        "peak_lookup_p99_us",
        out.peak_lookup_p99(),
    );
    let trace_events = out.trace_jsonl.lines().count() as f64;
    emit_metric("self_monitoring", "trace_events_node0", trace_events);
    let merged_events = out.merged_trace_jsonl.lines().count() as f64;
    emit_metric("self_monitoring", "trace_events_all_nodes", merged_events);
    emit_metric("self_monitoring", "trace_dropped", out.trace_dropped as f64);

    if let Some(path) = std::env::var_os("PIER_TRACE_OUT") {
        std::fs::write(&path, &out.trace_jsonl).expect("write trace JSONL");
        println!("trace written to {}", path.to_string_lossy());
    }
    if let Some(path) = std::env::var_os("PIER_TRACE_MERGED_OUT") {
        std::fs::write(&path, &out.merged_trace_jsonl).expect("write merged trace JSONL");
        println!("merged trace written to {}", path.to_string_lossy());
    }
    if let Some(path) = std::env::var_os("PIER_SPANS_OUT") {
        std::fs::write(&path, &out.merged_span_jsonl).expect("write merged span JSONL");
        println!("merged spans written to {}", path.to_string_lossy());
    }

    assert!(out.publishes > 0, "nodes must publish metrics tuples");
    assert_eq!(
        out.nodes_reporting(),
        nodes,
        "the monitoring query must observe every node"
    );
    assert!(
        out.peak_bytes_recv() > 0.0 && out.peak_lookup_p99() > 0.0,
        "monitored metrics must move during the run"
    );
    assert!(
        trace_events > 0.0,
        "node 0 must record trace events (query installs at minimum)"
    );
    assert!(
        merged_events >= trace_events,
        "the merged all-nodes export must contain at least node 0's events"
    );
}
