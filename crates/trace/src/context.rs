//! The wire-propagated trace context and the sampling configuration.

use pier_runtime::WireSize;

/// The per-message tracing header: enough to attach work observed at a
/// remote node to the right place in a query's span tree.
///
/// The context is 24 wire bytes **when present** and zero when absent —
/// [`DhtMessage`](../pier_dht/enum.DhtMessage.html) variants carry an
/// `Option<TraceContext>`, and `wire_size` charges nothing for `None`, so a
/// run with sampling off is bit-identical (results *and* message sizes) to
/// a build without tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace identifier, derived deterministically from the query id via
    /// [`trace_id_for`] (never random, never a wall clock).
    pub trace_id: u64,
    /// The sender-side span this message's work should parent to.
    pub span_id: u64,
    /// The query the work is charged to.
    pub query_id: u64,
}

impl TraceContext {
    /// Wire bytes a present context costs (3 × u64).
    pub const WIRE_BYTES: usize = 24;

    /// The root context for a sampled query: the trace's root span *is* the
    /// trace id, so any node can parent top-level work without additional
    /// wire state.
    pub fn root(query_id: u64) -> Self {
        let trace_id = trace_id_for(query_id);
        TraceContext {
            trace_id,
            span_id: trace_id,
            query_id,
        }
    }

    /// A child context: same trace and query, parented to `span_id` (a span
    /// the caller just recorded).
    pub fn child(&self, span_id: u64) -> Self {
        TraceContext { span_id, ..*self }
    }
}

impl WireSize for TraceContext {
    fn wire_size(&self) -> usize {
        TraceContext::WIRE_BYTES
    }
}

/// Derive a trace id from a query id (splitmix64 finalizer).  Deterministic
/// by construction: the same query id always yields the same trace id, so
/// equal-seed runs (which assign equal query ids) export identical traces.
pub fn trace_id_for(query_id: u64) -> u64 {
    let mut z = query_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-node tracing configuration, carried inside `PierConfig`.
///
/// Sampling is decided **once, at the proxy, when the query is submitted**:
/// the proxy draws one value from its seeded RNG and keeps the query iff
/// `roll % sample_every == 0`.  The decision is stamped into the plan and
/// disseminated with it, so every node agrees without re-rolling.
/// `sample_every == 0` disables tracing entirely — the RNG is not drawn, no
/// spans are recorded and no contexts travel, keeping untraced runs
/// bit-identical to pre-tracing builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Keep one in `sample_every` submitted queries (0 = tracing off).
    pub sample_every: u32,
    /// Publish recorded spans into the `system.spans` DHT namespace on the
    /// node's metrics-publish cadence (requires telemetry publishing).
    pub publish: bool,
}

impl TraceConfig {
    /// Tracing off (the default).
    pub fn off() -> Self {
        TraceConfig::default()
    }

    /// Trace every query, keep spans node-local.
    pub fn sample_all() -> Self {
        TraceConfig {
            sample_every: 1,
            publish: false,
        }
    }

    /// Trace every query and dogfood spans into `system.spans`.
    pub fn publishing() -> Self {
        TraceConfig {
            sample_every: 1,
            publish: true,
        }
    }

    /// Whether tracing is enabled at all.
    pub fn enabled(&self) -> bool {
        self.sample_every > 0
    }

    /// Apply the 1-in-N sampling rule to a seeded-RNG draw.
    pub fn keeps(&self, roll: u64) -> bool {
        self.sample_every > 0 && roll.is_multiple_of(u64::from(self.sample_every))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_is_deterministic_and_spreads() {
        assert_eq!(trace_id_for(42), trace_id_for(42));
        assert_ne!(trace_id_for(42), trace_id_for(43));
        assert_ne!(trace_id_for(0), 0);
    }

    #[test]
    fn root_context_parents_to_itself() {
        let ctx = TraceContext::root(7);
        assert_eq!(ctx.span_id, ctx.trace_id);
        assert_eq!(ctx.query_id, 7);
        let child = ctx.child(99);
        assert_eq!(child.trace_id, ctx.trace_id);
        assert_eq!(child.span_id, 99);
    }

    #[test]
    fn sampling_rule() {
        assert!(!TraceConfig::off().keeps(0));
        assert!(TraceConfig::sample_all().keeps(17));
        let one_in_four = TraceConfig {
            sample_every: 4,
            publish: false,
        };
        assert!(one_in_four.keeps(8));
        assert!(!one_in_four.keeps(9));
    }

    #[test]
    fn context_wire_size_is_fixed() {
        assert_eq!(TraceContext::root(1).wire_size(), 24);
    }
}
