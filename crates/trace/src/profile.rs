//! The EXPLAIN ANALYZE profile: measured spans folded per stage, the
//! critical path of result latency, and reconciliation against the static
//! cost bounds of `pier-analyze`.

use crate::merge::NodeSpan;
use pier_runtime::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// Aggregated measurements for one stage across every node and window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Spans recorded for the stage.
    pub spans: u64,
    /// Total rows across those spans.
    pub rows: u64,
    /// Total wire bytes across those spans.
    pub bytes: u64,
    /// Largest single-span row count (the figure static bounds cap).
    pub max_rows: u64,
    /// Largest single-span byte count.
    pub max_bytes: u64,
    /// Summed span durations (virtual µs; overlapping spans double-count —
    /// this is work, not wall time).
    pub busy_us: u64,
    /// Distinct nodes that recorded the stage.
    pub nodes: u64,
    /// Earliest span start.
    pub first_start: SimTime,
    /// Latest span end.
    pub last_end: SimTime,
}

/// Per-operator rows/chunks, harvested from the pipeline stage meters
/// (`op.<name>.rows_in` counters) rather than spans — per-row span
/// recording would blow the ≤1% overhead budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorStats {
    /// Rows entering the operator.
    pub rows_in: u64,
    /// Rows surviving the operator.
    pub rows_out: u64,
    /// Columnar chunks entering the operator (batch path only).
    pub chunks_in: u64,
}

/// One hop on the critical path from query dissemination to the final
/// result emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalHop {
    /// Node the hop executed on.
    pub node: u32,
    /// Stage tag.
    pub stage: &'static str,
    /// Hop start (virtual µs).
    pub start: SimTime,
    /// Hop end (virtual µs).
    pub end: SimTime,
    /// Rows the hop processed.
    pub rows: u64,
    /// Wire bytes the hop shipped.
    pub bytes: u64,
}

/// The static `CostReport` figures a measured profile must stay under.
/// `pier-analyze` produces these; keeping a local mirror struct avoids a
/// dependency cycle (analyze depends on core depends on this crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticBounds {
    /// Worst-case source rows touched per window per node.
    pub rows_per_window_per_node: u64,
    /// Worst-case `PutBatch` entries shipped per flush per node.
    pub entries_per_flush_per_node: u64,
    /// Worst-case senders converging on the query root per flush.
    pub root_fan_in: u64,
    /// Worst-case window state bytes resident per node.
    pub state_bytes_per_node: u64,
}

/// A query's measured execution profile, assembled from the merged
/// cluster-wide span stream.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// The profiled query.
    pub query_id: u64,
    /// Its trace id.
    pub trace_id: u64,
    /// Per-stage aggregates, in stage-name order.
    pub stages: BTreeMap<&'static str, StageStats>,
    /// Per-operator rows/chunks (filled by the harness from pipeline
    /// meters; empty when the run had no operator telemetry).
    pub operators: BTreeMap<String, OperatorStats>,
    /// The span chain ending at the last `result.emit`, root first.
    pub critical_path: Vec<CriticalHop>,
    /// Virtual time from the first critical-path hop's start to the last
    /// hop's end — where one result's latency actually went.
    pub result_latency_us: u64,
    /// Distinct windows observed (distinct `aux` stamps on window stages).
    pub windows_observed: u64,
    /// Spans attributed to the query, across all nodes.
    pub total_spans: u64,
    /// Largest per-node total of ingest-stage rows (used by
    /// [`QueryProfile::reconcile`]).
    pub max_node_ingest_rows: u64,
    /// Largest per-*window* entry count any single flush shipped: a flush
    /// tick can bundle several closed windows (its span's `aux` counts
    /// them), while the static bound is per closed window — so each flush
    /// span's rows are normalized by the windows it bundled.
    pub max_flush_entries_per_window: u64,
}

impl QueryProfile {
    /// Fold a merged span stream into a profile for `query_id`.  Spans
    /// charged to other queries are ignored, so one export can serve many
    /// profiles.
    pub fn build(query_id: u64, merged: &[NodeSpan]) -> Self {
        let mut profile = QueryProfile {
            query_id,
            ..QueryProfile::default()
        };
        let mut windows: BTreeSet<u64> = BTreeSet::new();
        let mut stage_nodes: BTreeMap<&'static str, BTreeSet<u32>> = BTreeMap::new();
        let mut ingest_rows_per_node: BTreeMap<u32, u64> = BTreeMap::new();
        let mut by_span_id: BTreeMap<u64, NodeSpan> = BTreeMap::new();
        let mut last: Option<NodeSpan> = None;
        for ns in merged {
            let s = &ns.span;
            if s.query_id != query_id {
                continue;
            }
            profile.trace_id = s.trace_id;
            profile.total_spans += 1;
            let st = profile.stages.entry(s.stage).or_default();
            if st.spans == 0 {
                st.first_start = s.start;
            }
            st.spans += 1;
            st.rows += s.rows;
            st.bytes += s.bytes;
            st.max_rows = st.max_rows.max(s.rows);
            st.max_bytes = st.max_bytes.max(s.bytes);
            st.busy_us += s.end - s.start;
            st.first_start = st.first_start.min(s.start);
            st.last_end = st.last_end.max(s.end);
            stage_nodes.entry(s.stage).or_default().insert(ns.node);
            // Only the emit span's aux is a window stamp (flush reuses aux
            // for its bundled-window count, other stages leave it 0).
            if s.stage == "window.emit" && s.aux != 0 {
                windows.insert(s.aux);
            }
            if s.stage == "window.flush" {
                profile.max_flush_entries_per_window = profile
                    .max_flush_entries_per_window
                    .max(s.rows.div_ceil(s.aux.max(1)));
            }
            if s.stage == "ingest" {
                *ingest_rows_per_node.entry(ns.node).or_default() += s.rows;
            }
            by_span_id.insert(s.span_id, *ns);
            if s.stage == "result.emit" {
                let better = last.is_none_or(|prev| {
                    (s.end, ns.node, s.ordinal) > (prev.span.end, prev.node, prev.span.ordinal)
                });
                if better {
                    last = Some(*ns);
                }
            }
        }
        for (stage, nodes) in stage_nodes {
            if let Some(st) = profile.stages.get_mut(stage) {
                st.nodes = nodes.len() as u64;
            }
        }
        profile.windows_observed = windows.len() as u64;
        profile.max_node_ingest_rows = ingest_rows_per_node.values().copied().max().unwrap_or(0);

        // Walk the parent chain from the final result emit back to the
        // trace root.  The bounded hop count guards against parent cycles
        // in a corrupted export.
        let mut path = Vec::new();
        let mut cursor = last;
        let mut hops = 0;
        while let Some(ns) = cursor {
            path.push(CriticalHop {
                node: ns.node,
                stage: ns.span.stage,
                start: ns.span.start,
                end: ns.span.end,
                rows: ns.span.rows,
                bytes: ns.span.bytes,
            });
            hops += 1;
            if ns.span.parent == ns.span.trace_id || ns.span.parent == 0 || hops > 64 {
                break;
            }
            cursor = by_span_id.get(&ns.span.parent).copied();
        }
        path.reverse();
        profile.result_latency_us = match (path.first(), path.last()) {
            (Some(first), Some(end)) => end.end.saturating_sub(first.start),
            _ => 0,
        };
        profile.critical_path = path;
        profile
    }

    /// Check the measured figures against the static bounds.  Returns one
    /// human-readable violation per exceeded bound (empty = reconciled:
    /// measured ≤ static everywhere).
    pub fn reconcile(&self, bounds: &StaticBounds) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(flush) = self.stages.get("window.flush") {
            // En-route combining lets a relay flush its whole subtree's
            // merged groups, so the sound per-node figure is the
            // per-sender bound times the fan-in — the same arithmetic the
            // admission-soundness suite applies to the cluster totals.
            let flush_bound = bounds
                .entries_per_flush_per_node
                .saturating_mul(bounds.root_fan_in.max(1));
            if self.max_flush_entries_per_window > flush_bound {
                violations.push(format!(
                    "window.flush shipped {} entries per closed window; static bound is {} ({} per sender x fan-in {})",
                    self.max_flush_entries_per_window,
                    flush_bound,
                    bounds.entries_per_flush_per_node,
                    bounds.root_fan_in.max(1)
                ));
            }
            if flush.max_bytes > bounds.state_bytes_per_node {
                violations.push(format!(
                    "window.flush shipped {} bytes in one flush; static state bound is {}",
                    flush.max_bytes, bounds.state_bytes_per_node
                ));
            }
            if flush.nodes > bounds.root_fan_in {
                violations.push(format!(
                    "{} nodes flushed toward the root; static fan-in bound is {}",
                    flush.nodes, bounds.root_fan_in
                ));
            }
        }
        if self.windows_observed > 0 {
            let per_window = self.max_node_ingest_rows.div_ceil(self.windows_observed);
            if per_window > bounds.rows_per_window_per_node {
                violations.push(format!(
                    "busiest node ingested {per_window} rows per window; static bound is {}",
                    bounds.rows_per_window_per_node
                ));
            }
        }
        violations
    }

    /// Render the profile as the `EXPLAIN ANALYZE` text summary: the
    /// per-stage table, the per-operator table and the critical path.
    /// Deterministic (stable orders, integer virtual time throughout).
    pub fn explain_analyze(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "EXPLAIN ANALYZE query {} (trace {:#018x}): {} spans, {} windows\n",
            self.query_id, self.trace_id, self.total_spans, self.windows_observed
        ));
        out.push_str("  stage            spans       rows      bytes   busy(us)  nodes\n");
        for (stage, st) in &self.stages {
            out.push_str(&format!(
                "  {:<16} {:>5} {:>10} {:>10} {:>10} {:>6}\n",
                stage, st.spans, st.rows, st.bytes, st.busy_us, st.nodes
            ));
        }
        if !self.operators.is_empty() {
            out.push_str("  operator            rows_in   rows_out  chunks_in\n");
            for (name, op) in &self.operators {
                out.push_str(&format!(
                    "  {:<18} {:>8} {:>10} {:>10}\n",
                    name, op.rows_in, op.rows_out, op.chunks_in
                ));
            }
        }
        out.push_str(&format!(
            "  critical path (result latency {} us):\n",
            self.result_latency_us
        ));
        for hop in &self.critical_path {
            out.push_str(&format!(
                "    node {:<3} {:<16} t={:>10}..{:<10} rows={} bytes={}\n",
                hop.node, hop.stage, hop.start, hop.end, hop.rows, hop.bytes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_telemetry::SpanRecord;

    fn ns(node: u32, span: SpanRecord) -> NodeSpan {
        NodeSpan { node, span }
    }

    fn span(
        start: u64,
        end: u64,
        span_id: u64,
        parent: u64,
        stage: &'static str,
        rows: u64,
    ) -> SpanRecord {
        SpanRecord {
            start,
            end,
            ordinal: span_id,
            trace_id: 77,
            span_id,
            parent,
            query_id: 42,
            stage,
            rows,
            bytes: rows * 32,
            // Mirror the recorder: emit stamps the window start, flush
            // counts the windows it bundled, everything else leaves 0.
            aux: match stage {
                "window.emit" => 1_000_000,
                "window.flush" => 1,
                _ => 0,
            },
        }
    }

    fn sample_spans() -> Vec<NodeSpan> {
        vec![
            // Root: the dissemination span's id IS the trace id.
            ns(0, span(0, 10, 77, 0, "query.disseminate", 1)),
            ns(1, span(5, 5, 101, 77, "ingest", 4)),
            ns(2, span(5, 5, 102, 77, "ingest", 6)),
            ns(1, span(100, 110, 103, 77, "window.flush", 3)),
            ns(0, span(120, 125, 104, 103, "window.combine", 3)),
            ns(0, span(130, 140, 105, 104, "window.emit", 2)),
            ns(0, span(150, 155, 106, 105, "result.emit", 2)),
        ]
    }

    #[test]
    fn build_folds_stages_and_walks_critical_path() {
        let p = QueryProfile::build(42, &sample_spans());
        assert_eq!(p.total_spans, 7);
        assert_eq!(p.stages["ingest"].rows, 10);
        assert_eq!(p.stages["ingest"].nodes, 2);
        assert_eq!(p.stages["window.flush"].max_rows, 3);
        assert_eq!(p.windows_observed, 1);
        assert_eq!(p.max_node_ingest_rows, 6);
        let stages: Vec<&str> = p.critical_path.iter().map(|h| h.stage).collect();
        assert_eq!(
            stages,
            vec![
                "window.flush",
                "window.combine",
                "window.emit",
                "result.emit"
            ]
        );
        assert_eq!(p.result_latency_us, 155 - 100);
        // Spans of other queries are ignored.
        let mut other = sample_spans();
        other.push(ns(
            3,
            SpanRecord {
                query_id: 9,
                ..other[0].span
            },
        ));
        assert_eq!(QueryProfile::build(42, &other).total_spans, 7);
    }

    #[test]
    fn reconcile_flags_each_exceeded_bound() {
        let p = QueryProfile::build(42, &sample_spans());
        let generous = StaticBounds {
            rows_per_window_per_node: 100,
            entries_per_flush_per_node: 10,
            root_fan_in: 8,
            state_bytes_per_node: 1 << 20,
        };
        assert!(p.reconcile(&generous).is_empty());
        let tight = StaticBounds {
            rows_per_window_per_node: 1,
            entries_per_flush_per_node: 1,
            root_fan_in: 0,
            state_bytes_per_node: 1,
        };
        let violations = p.reconcile(&tight);
        assert_eq!(violations.len(), 4, "{violations:?}");
    }

    #[test]
    fn explain_analyze_renders_every_section() {
        let mut p = QueryProfile::build(42, &sample_spans());
        p.operators.insert(
            "select".to_string(),
            OperatorStats {
                rows_in: 10,
                rows_out: 4,
                chunks_in: 2,
            },
        );
        let text = p.explain_analyze();
        assert!(text.contains("EXPLAIN ANALYZE query 42"));
        assert!(text.contains("window.flush"));
        assert!(text.contains("select"));
        assert!(text.contains("critical path (result latency 55 us)"));
        assert_eq!(text, p.explain_analyze(), "rendering must be stable");
    }
}
