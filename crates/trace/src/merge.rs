//! Deterministic multi-node export merging.
//!
//! Each node's hub keeps its own span and event rings.  For a cluster-wide
//! export the per-node streams are merged under a **total** order — virtual
//! time first, then node address, then the node-local ordinal — so the
//! merged file is stable across runs (equal seeds ⇒ byte-identical output)
//! and independent of the collection order.  The same merger backs the
//! span export, the all-nodes `PIER_TRACE_OUT` event export and the Chrome
//! `trace_event` profile.

use pier_telemetry::{SpanRecord, TraceEvent};

/// A span tagged with the node that recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpan {
    /// Recording node's address.
    pub node: u32,
    /// The span.
    pub span: SpanRecord,
}

/// Merge per-node span collections into one totally ordered stream:
/// `(start, node, ordinal)` ascending.
pub fn merge_spans(per_node: &[(u32, Vec<SpanRecord>)]) -> Vec<NodeSpan> {
    let mut merged: Vec<NodeSpan> = per_node
        .iter()
        .flat_map(|(node, spans)| {
            spans.iter().map(|s| NodeSpan {
                node: *node,
                span: *s,
            })
        })
        .collect();
    merged.sort_by_key(|ns| (ns.span.start, ns.node, ns.span.ordinal));
    merged
}

/// The merged span stream as JSONL.  Each line is the span's own JSON with
/// a leading `"node"` key injected, so per-node and merged exports share
/// one schema apart from that key.
pub fn merged_span_jsonl(merged: &[NodeSpan]) -> String {
    let mut out = String::new();
    for ns in merged {
        let body = ns.span.to_json();
        out.push_str("{\"node\":");
        out.push_str(&ns.node.to_string());
        out.push(',');
        out.push_str(&body[1..]);
        out.push('\n');
    }
    out
}

/// Merge per-node structured event traces into one stably ordered JSONL
/// export — the all-nodes form of `PIER_TRACE_OUT` (node 0 only before
/// this crate).  Order: `(time, node, ordinal)` ascending; each line gains
/// a leading `"node"` key.
pub fn merged_trace_jsonl(per_node: &[(u32, Vec<TraceEvent>)]) -> String {
    let mut merged: Vec<(u32, &TraceEvent)> = per_node
        .iter()
        .flat_map(|(node, evs)| evs.iter().map(|e| (*node, e)))
        .collect();
    merged.sort_by_key(|(node, ev)| (ev.time, *node, ev.ordinal));
    let mut out = String::new();
    for (node, ev) in merged {
        let body = ev.to_json();
        out.push_str("{\"node\":");
        out.push_str(&node.to_string());
        out.push(',');
        out.push_str(&body[1..]);
        out.push('\n');
    }
    out
}

/// Render a merged span stream as a Chrome `trace_event` JSON document
/// (the "JSON Array Format" chrome://tracing and Perfetto load).  Each
/// span becomes one complete event (`ph:"X"`): `pid` is the node, `tid`
/// the query, `ts`/`dur` are virtual microseconds.
pub fn chrome_trace_json(merged: &[NodeSpan]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, ns) in merged.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let s = &ns.span;
        out.push_str("{\"name\":\"");
        out.push_str(s.stage);
        out.push_str("\",\"cat\":\"pier\",\"ph\":\"X\",\"ts\":");
        out.push_str(&s.start.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&(s.end - s.start).to_string());
        out.push_str(",\"pid\":");
        out.push_str(&ns.node.to_string());
        out.push_str(",\"tid\":");
        out.push_str(&s.query_id.to_string());
        out.push_str(",\"args\":{\"trace\":");
        out.push_str(&s.trace_id.to_string());
        out.push_str(",\"span\":");
        out.push_str(&s.span_id.to_string());
        out.push_str(",\"parent\":");
        out.push_str(&s.parent.to_string());
        out.push_str(",\"rows\":");
        out.push_str(&s.rows.to_string());
        out.push_str(",\"bytes\":");
        out.push_str(&s.bytes.to_string());
        out.push_str(",\"aux\":");
        out.push_str(&s.aux.to_string());
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: u64, ordinal: u64, span_id: u64) -> SpanRecord {
        SpanRecord {
            start,
            end: start + 5,
            ordinal,
            trace_id: 9,
            span_id,
            parent: 9,
            query_id: 42,
            stage: "ingest",
            rows: 1,
            bytes: 0,
            aux: 0,
        }
    }

    #[test]
    fn merge_orders_by_time_then_node_then_ordinal() {
        let per_node = vec![
            (1u32, vec![span(10, 0, 100), span(30, 1, 101)]),
            (0u32, vec![span(10, 0, 200), span(20, 1, 201)]),
        ];
        let merged = merge_spans(&per_node);
        let order: Vec<(u64, u32)> = merged.iter().map(|ns| (ns.span.start, ns.node)).collect();
        assert_eq!(order, vec![(10, 0), (10, 1), (20, 0), (30, 1)]);
        // Collection order must not matter.
        let swapped = vec![per_node[1].clone(), per_node[0].clone()];
        assert_eq!(merged, merge_spans(&swapped));
    }

    #[test]
    fn merged_jsonl_injects_node_key() {
        let merged = merge_spans(&[(3u32, vec![span(10, 0, 100)])]);
        let line = merged_span_jsonl(&merged);
        assert!(line.starts_with("{\"node\":3,\"start\":10,"), "{line}");
        assert!(line.ends_with("}\n"));
    }

    #[test]
    fn merged_trace_jsonl_is_collection_order_independent() {
        let ev = |time, ordinal| TraceEvent {
            time,
            ordinal,
            kind: "query_install",
            fields: vec![("query", "42".to_string())],
        };
        let a = vec![(0u32, vec![ev(5, 0)]), (1u32, vec![ev(5, 0), ev(9, 1)])];
        let b = vec![a[1].clone(), a[0].clone()];
        assert_eq!(merged_trace_jsonl(&a), merged_trace_jsonl(&b));
        assert!(merged_trace_jsonl(&a).starts_with("{\"node\":0,\"time\":5,"));
    }

    #[test]
    fn chrome_export_is_one_complete_event_per_span() {
        let merged = merge_spans(&[(0u32, vec![span(10, 0, 100), span(20, 1, 101)])]);
        let doc = chrome_trace_json(&merged);
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert_eq!(doc.matches("\"ph\":\"X\"").count(), 2);
        assert!(doc.contains("\"ts\":10,\"dur\":5,\"pid\":0,\"tid\":42"));
        assert!(doc.ends_with("]}"));
    }
}
