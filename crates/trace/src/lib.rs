//! # pier-trace — sampled distributed tracing and EXPLAIN ANALYZE profiles
//!
//! PIER's observability story is recursive: the system monitors itself by
//! running queries over its own introspection state (`system.metrics`,
//! PR 6) and bounds queries *before* they run with a static cost report
//! (`pier-analyze`, PR 9).  What neither layer answers is *where a specific
//! query's result latency actually went* across nodes.  This crate closes
//! that loop with classic distributed tracing, adapted to the workspace's
//! determinism rules:
//!
//! * A [`TraceContext`] — query id, trace id, parent span id — piggybacks
//!   on DHT messages (`PutRequest`/`PutBatch`/`Routed`/`GetRequest`) and on
//!   `WindowResults`, so one tuple's journey (dissemination → ingest →
//!   operator stages → window flush → root upcall → result emit) links into
//!   a single cross-node span tree.  An absent context costs **zero wire
//!   bytes**: with sampling off, message sizes are bit-identical to an
//!   untraced build.
//! * The **sampling decision is deterministic**: taken once at the proxy
//!   from the node's seeded RNG (1-in-`sample_every`), stamped into the
//!   plan, and carried with it — never a wall clock, never re-rolled
//!   downstream.  Equal seeds therefore produce byte-identical span
//!   exports (pinned by `tests/span_profile.rs`).
//! * Spans land in the node's `pier-telemetry` hub (a bounded ring beside
//!   the event trace, same ≤1% enabled-overhead budget) and are dogfooded
//!   into the `system.spans` DHT namespace so ordinary sqlish standing
//!   queries can compute per-query stage latency breakdowns through PIER
//!   itself.
//! * [`QueryProfile`] reconciles the *measured* spans against the *static*
//!   `CostReport` bounds ([`StaticBounds`], measured ≤ static asserted),
//!   computes the per-stage critical path of result latency, and renders
//!   the `EXPLAIN ANALYZE` summary plus a Chrome `trace_event` JSON export
//!   for flamegraph viewing.
//!
//! See `docs/OBSERVABILITY.md` for the span schema, the stage catalogue and
//! the sampling rules.

mod context;
mod merge;
mod profile;

pub use context::{trace_id_for, TraceConfig, TraceContext};
pub use merge::{chrome_trace_json, merge_spans, merged_span_jsonl, merged_trace_jsonl, NodeSpan};
pub use profile::{CriticalHop, OperatorStats, QueryProfile, StageStats, StaticBounds};
